/**
 * @file
 * TAGE — TAgged GEometric-history-length branch predictor
 * [Seznec & Michaud 2006], the modern successor to the paper's gshare
 * baseline.
 *
 * A bimodal base table backs N tagged tables whose history lengths form
 * a geometric series. Each tagged entry holds a partial tag, a signed
 * prediction counter, and a "useful" counter. The *provider* is the
 * matching entry with the longest history; the *alternate* prediction
 * comes from the next-longest match (or the base table). A saturating
 * use_alt_on_na counter learns whether newly allocated provider entries
 * should be overridden by the alternate prediction, and the useful
 * counters are periodically aged (halved) so stale entries can be
 * reclaimed by allocation.
 *
 * TAGE matters to this repo because its provider counter magnitude and
 * provider-vs-alternate agreement are a *built-in* confidence signal
 * (exposed by confidence/tage_confidence.h) that the paper's CIR
 * estimators can be compared against head-to-head.
 */

#ifndef CONFSIM_PREDICTOR_TAGE_H
#define CONFSIM_PREDICTOR_TAGE_H

#include <cstdint>
#include <vector>

#include "predictor/branch_predictor.h"
#include "predictor/history_register.h"
#include "util/fixed_vector_table.h"
#include "util/saturating_counter.h"

namespace confsim {

/** Geometry and policy knobs for TagePredictor. */
struct TageConfig
{
    /** Base bimodal table entries (power of two). */
    std::size_t bimodalEntries = std::size_t{1} << 12;

    /** Entries per tagged table (power of two). */
    std::size_t taggedEntries = std::size_t{1} << 10;

    /** Partial-tag width in bits (1..16). */
    unsigned tagBits = 9;

    /** Tagged-table prediction counter width; taken iff value is in
     *  the upper half. 3 bits in the reference design. */
    unsigned counterBits = 3;

    /** Useful-counter width (2 bits in the reference design). */
    unsigned usefulBits = 2;

    /**
     * Per-table global-history depths, strictly increasing, each
     * <= 64 so the whole history fits one register. The reference
     * series is geometric (ratio ~2.2).
     */
    std::vector<unsigned> historyLengths = {5, 11, 24, 52};

    /** use_alt_on_na counter width. */
    unsigned useAltBits = 4;

    /**
     * Updates between useful-counter agings; every agingPeriod-th
     * update halves every u counter. 0 disables aging.
     */
    std::uint64_t agingPeriod = 262'144;

    /** The default paper-scale configuration. */
    static TageConfig makeDefault() { return TageConfig{}; }

    /** A small geometry for unit/differential tests. */
    static TageConfig makeSmall();
};

/** Everything TAGE knows about one prediction, for confidence
 *  estimation and white-box tests. */
struct TagePrediction
{
    bool taken = false;         //!< final predicted direction
    bool providerTaken = false; //!< provider component's direction
    bool altTaken = false;      //!< alternate prediction's direction
    int providerTable = -1;     //!< tagged table index, -1 = bimodal
    int altTable = -1;          //!< alternate's table, -1 = bimodal
    std::uint32_t providerCtr = 0;   //!< provider counter raw value
    std::uint64_t providerStrength = 0; //!< distance from weak boundary
    bool newlyAllocated = false; //!< provider entry looks newly allocated
    bool usedAlt = false;        //!< use_alt_on_na overrode the provider
};

/** One tagged-table entry (exposed for white-box property tests). */
struct TageEntry
{
    std::uint16_t tag = 0;
    std::uint8_t ctr = 0; //!< unsigned encoding; taken iff upper half
    std::uint8_t u = 0;   //!< useful counter
};

/** TAgged GEometric-history predictor with native confidence hooks. */
class TagePredictor : public BranchPredictor
{
  public:
    explicit TagePredictor(TageConfig config = TageConfig::makeDefault());

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

    /** Full provider/alternate breakdown of the prediction for @p pc. */
    TagePrediction predictDetail(std::uint64_t pc) const;

    /** @return the number of confidence-strength levels the provider
     *  counter distinguishes: 2^(counterBits-1). */
    std::uint64_t strengthLevels() const;

    // --- white-box introspection (property tests) -------------------
    const TageConfig &config() const { return config_; }
    std::size_t numTables() const { return tables_.size(); }
    const TageEntry &entryAt(std::size_t table, std::uint64_t index) const;
    std::uint64_t indexOf(std::size_t table, std::uint64_t pc) const;
    std::uint16_t tagOf(std::size_t table, std::uint64_t pc) const;
    std::uint32_t useAltValue() const { return useAltOnNa_.value(); }
    std::uint64_t updateCount() const { return updates_; }
    std::uint64_t historyValue() const { return history_.value(); }

  private:
    bool ctrTaken(std::uint8_t ctr) const;
    std::uint64_t ctrStrength(std::uint8_t ctr) const;
    std::uint64_t bimodalIndex(std::uint64_t pc) const;
    void ageUsefulCounters();

    TageConfig config_;
    FixedVectorTable<SaturatingCounter> bimodal_;
    std::vector<std::vector<TageEntry>> tables_;
    HistoryRegister history_;
    SaturatingCounter useAltOnNa_;
    std::uint64_t updates_ = 0;
    std::uint8_t ctrMax_;
    std::uint8_t uMax_;
};

} // namespace confsim

#endif // CONFSIM_PREDICTOR_TAGE_H
