/**
 * @file
 * Generalized two-level adaptive branch predictor [Yeh & Patt 1991].
 *
 * A first-level history structure (one global BHR, or a table of per-set
 * local BHRs) selects a pattern, which indexes a second-level pattern
 * history table (PHT) of saturating counters (one global PHT, or per-set
 * PHTs). The combinations covered:
 *  - GAg: global history, global PHT
 *  - GAp: global history, per-address PHTs
 *  - PAg: per-address history, global PHT
 *  - PAp: per-address history, per-address PHTs
 *
 * Included as substrate richness: the paper situates CIR-table confidence
 * mechanisms as "first cousins of dynamic branch predictors" [13], and
 * the hybrid-selector application wants diverse constituents.
 */

#ifndef CONFSIM_PREDICTOR_TWO_LEVEL_H
#define CONFSIM_PREDICTOR_TWO_LEVEL_H

#include <vector>

#include "predictor/branch_predictor.h"
#include "util/fixed_vector_table.h"
#include "util/saturating_counter.h"
#include "util/shift_register.h"

namespace confsim {

/** Yeh-Patt scheme selector. */
enum class TwoLevelScheme
{
    GAg, //!< global history register, single PHT
    GAp, //!< global history register, PC-selected PHT
    PAg, //!< per-address history table, single PHT
    PAp, //!< per-address history table, PC-selected PHT
};

/** @return a short scheme name ("GAg", ...). */
const char *toString(TwoLevelScheme scheme);

/** Configurable two-level adaptive predictor. */
class TwoLevelPredictor : public BranchPredictor
{
  public:
    /**
     * @param scheme Which Yeh-Patt variant.
     * @param history_bits Branch history register depth (PHT index width).
     * @param bhr_entries Number of level-1 history registers (ignored for
     *        GAg/GAp which use a single global register).
     * @param pht_sets Number of level-2 PHTs (ignored for GAg/PAg which
     *        use one).
     * @param counter_bits PHT counter width.
     */
    TwoLevelPredictor(TwoLevelScheme scheme, unsigned history_bits,
                      std::size_t bhr_entries = 1024,
                      std::size_t pht_sets = 16,
                      unsigned counter_bits = 2);

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

  private:
    const ShiftRegister &historyFor(std::uint64_t pc) const;
    ShiftRegister &historyFor(std::uint64_t pc);
    std::size_t phtSetFor(std::uint64_t pc) const;
    const SaturatingCounter &counterFor(std::uint64_t pc) const;
    SaturatingCounter &counterFor(std::uint64_t pc);

    TwoLevelScheme scheme_;
    unsigned historyBits_;
    unsigned counterBits_;
    /// Level 1: one register (global) or a table (per-address).
    std::vector<ShiftRegister> histories_;
    /// Level 2: one or more PHTs of saturating counters.
    std::vector<FixedVectorTable<SaturatingCounter>> phts_;
};

} // namespace confsim

#endif // CONFSIM_PREDICTOR_TWO_LEVEL_H
