/**
 * @file
 * The branch predictor interface.
 *
 * Predictors are used sequentially: for each dynamic conditional branch
 * the driver calls predict(pc), compares with the resolved outcome, then
 * calls update(pc, taken). predict() must not mutate state, so calling it
 * multiple times for the same branch (as composite predictors do) is
 * safe; all state changes happen in update().
 */

#ifndef CONFSIM_PREDICTOR_BRANCH_PREDICTOR_H
#define CONFSIM_PREDICTOR_BRANCH_PREDICTOR_H

#include <cstdint>
#include <string>

#include "ckpt/serializable.h"

namespace confsim {

/**
 * Abstract conditional branch direction predictor.
 *
 * Also Serializable: every concrete predictor implements
 * saveState()/loadState() so mid-run simulation state can be
 * checkpointed and resumed bit-exactly (see src/ckpt/).
 */
class BranchPredictor : public Serializable
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict the direction of the branch at @p pc.
     *
     * @return true for predicted-taken.
     */
    virtual bool predict(std::uint64_t pc) const = 0;

    /**
     * Train with the resolved outcome. Must be called exactly once per
     * dynamic branch, after predict().
     *
     * @param pc Branch address.
     * @param taken Resolved direction.
     */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    /** @return total prediction-structure storage in bits. */
    virtual std::uint64_t storageBits() const = 0;

    /** @return a short human-readable identifier, e.g. "gshare-64K". */
    virtual std::string name() const = 0;

    /** Restore the initial (power-on) state. */
    virtual void reset() = 0;
};

} // namespace confsim

#endif // CONFSIM_PREDICTOR_BRANCH_PREDICTOR_H
