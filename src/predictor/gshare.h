/**
 * @file
 * The gshare predictor [McFarling 1993] — the paper's underlying
 * predictor (Section 1.2).
 *
 * A table of 2^m two-bit saturating counters is indexed with the
 * exclusive-OR of PC bits [m+1 : 2] and the most recent h global branch
 * outcomes (h <= m). The paper's two configurations:
 *  - large: m = 16, h = 16 (PC bits 17..2 XOR 16-bit BHR), 3.85%
 *    composite misprediction rate on IBS;
 *  - small: m = 12, h = 12 (PC bits 13..2 XOR 12-bit BHR), 8.6%.
 * Counters initialize to "weakly taken".
 */

#ifndef CONFSIM_PREDICTOR_GSHARE_H
#define CONFSIM_PREDICTOR_GSHARE_H

#include "predictor/branch_predictor.h"
#include "predictor/history_register.h"
#include "util/fixed_vector_table.h"
#include "util/saturating_counter.h"

namespace confsim {

/** Global-history XOR PC indexed two-bit counter predictor. */
class GsharePredictor : public BranchPredictor
{
  public:
    /**
     * @param num_entries Counter table size (power of two), 2^m.
     * @param history_bits Global history depth h; must be <= m.
     * @param counter_bits Counter width (2 in the paper).
     */
    GsharePredictor(std::size_t num_entries, unsigned history_bits,
                    unsigned counter_bits = 2);

    /** Convenience factory for the paper's 64K-entry configuration. */
    static GsharePredictor makeLargePaperConfig();

    /** Convenience factory for the paper's 4K-entry configuration. */
    static GsharePredictor makeSmallPaperConfig();

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

    /** @return the predictor's internal global history value. */
    std::uint64_t historyValue() const { return history_.value(); }

    /** @return the history depth in bits. */
    unsigned historyBits() const { return history_.width(); }

  private:
    std::uint64_t indexOf(std::uint64_t pc) const;

    FixedVectorTable<SaturatingCounter> table_;
    HistoryRegister history_;
    unsigned counterBits_;
};

} // namespace confsim

#endif // CONFSIM_PREDICTOR_GSHARE_H
