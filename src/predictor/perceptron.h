/**
 * @file
 * Perceptron branch predictor [Jiménez & Lin 2001].
 *
 * A table of weight vectors is indexed by PC; the prediction is the
 * sign of the dot product of the selected weights with the global
 * history (outcomes mapped to ±1) plus a bias weight. Training bumps
 * each weight toward agreement with the outcome, but only when the
 * prediction was wrong or the dot product's magnitude — the *margin* —
 * was at most the threshold theta. Jiménez's tuned theta is
 * floor(1.93 h + 14) for history length h.
 *
 * The margin is a natural multi-level confidence signal: |margin| far
 * above theta means the weights agree emphatically, while a margin
 * near zero flags a coin-flip. confidence/perceptron_margin.h exposes
 * this to the paper's coverage/PVN methodology.
 */

#ifndef CONFSIM_PREDICTOR_PERCEPTRON_H
#define CONFSIM_PREDICTOR_PERCEPTRON_H

#include <cstdint>
#include <vector>

#include "predictor/branch_predictor.h"
#include "predictor/history_register.h"

namespace confsim {

/** Geometry knobs for PerceptronPredictor. */
struct PerceptronConfig
{
    /** Weight-vector rows (power of two). */
    std::size_t numRows = std::size_t{1} << 9;

    /** Global-history depth, 1..64. */
    unsigned historyBits = 24;

    /** Per-weight width; weights clamp to the signed range of this
     *  many bits (8 bits -> [-128, 127]). */
    unsigned weightBits = 8;

    /** The default paper-scale configuration. */
    static PerceptronConfig makeDefault() { return PerceptronConfig{}; }

    /** A small geometry for unit/differential tests. */
    static PerceptronConfig makeSmall();

    /** Jiménez's tuned training threshold: floor(1.93 h + 14). */
    std::int64_t theta() const
    {
        return static_cast<std::int64_t>(1.93 * historyBits + 14.0);
    }
};

/** PC-indexed weight-table predictor with margin confidence hooks. */
class PerceptronPredictor : public BranchPredictor
{
  public:
    explicit PerceptronPredictor(
        PerceptronConfig config = PerceptronConfig::makeDefault());

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

    /** The signed dot product for @p pc under the current history;
     *  the prediction is marginOf(pc) >= 0. */
    std::int64_t marginOf(std::uint64_t pc) const;

    /** The training threshold theta. */
    std::int64_t theta() const { return config_.theta(); }

    /** True iff update(pc, taken) would adjust the weights now:
     *  mispredict, or |margin| <= theta. */
    bool wouldTrain(std::uint64_t pc, bool taken) const;

    // --- white-box introspection (property tests) -------------------
    const PerceptronConfig &config() const { return config_; }
    std::int32_t weightAt(std::uint64_t row, unsigned i) const;
    std::uint64_t rowOf(std::uint64_t pc) const;
    std::uint64_t historyValue() const { return history_.value(); }

  private:
    std::int32_t clampWeight(std::int64_t w) const;

    PerceptronConfig config_;
    /** Flattened rows of (bias + historyBits) weights each. */
    std::vector<std::int32_t> weights_;
    HistoryRegister history_;
    std::int32_t weightMax_;
    std::int32_t weightMin_;
};

} // namespace confsim

#endif // CONFSIM_PREDICTOR_PERCEPTRON_H
