/**
 * @file
 * The agree predictor [Sprangle, Chappell, Alsup & Patt, ISCA 1997].
 *
 * Instead of predicting taken/not-taken, the history-indexed counters
 * predict whether the branch will AGREE with a per-branch bias bit
 * (set to the branch's direction the first time it executes). Since
 * most branches agree with their bias most of the time, two branches
 * aliasing to the same counter usually push it the same way —
 * destructive interference becomes neutral or constructive.
 *
 * Included because interference is the central theme of the paper's
 * Section 5.3 small-table study: the agree transform is the classic
 * predictor-side answer to the same aliasing problem the confidence
 * tables face (cf. the tagged associative CT in confidence/).
 */

#ifndef CONFSIM_PREDICTOR_AGREE_H
#define CONFSIM_PREDICTOR_AGREE_H

#include <unordered_map>

#include "predictor/branch_predictor.h"
#include "predictor/history_register.h"
#include "util/fixed_vector_table.h"
#include "util/saturating_counter.h"

namespace confsim {

/** Bias-bit + agree-counter predictor over a gshare-style index. */
class AgreePredictor : public BranchPredictor
{
  public:
    /**
     * @param num_entries Agree-counter table size (power of two).
     * @param history_bits Global history depth (<= index width).
     * @param counter_bits Agree counter width.
     */
    AgreePredictor(std::size_t num_entries, unsigned history_bits,
                   unsigned counter_bits = 2);

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

    /** @return the bias bit for @p pc (first-time default: taken). */
    bool biasOf(std::uint64_t pc) const;

  private:
    std::uint64_t indexOf(std::uint64_t pc) const;

    FixedVectorTable<SaturatingCounter> agreeTable_;
    HistoryRegister history_;
    unsigned counterBits_;
    /**
     * Per-static-branch bias bits, set at first execution. Real
     * hardware stores these alongside the instruction (BTB or i-cache
     * line); an unbounded map models that per-static-branch storage,
     * and storageBits() charges one bit per branch seen.
     */
    std::unordered_map<std::uint64_t, bool> bias_;
};

} // namespace confsim

#endif // CONFSIM_PREDICTOR_AGREE_H
