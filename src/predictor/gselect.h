/**
 * @file
 * The gselect predictor [McFarling 1993]: a 2-bit counter table
 * indexed by the CONCATENATION of low PC bits and global history bits
 * (where gshare XORs them). Included as the natural companion baseline
 * to gshare — the same concatenate-vs-XOR trade-off the confidence
 * index-scheme ablation studies (bench/ablation_index) exists at the
 * predictor level, and gselect/gshare make it measurable.
 */

#ifndef CONFSIM_PREDICTOR_GSELECT_H
#define CONFSIM_PREDICTOR_GSELECT_H

#include "predictor/branch_predictor.h"
#include "predictor/history_register.h"
#include "util/fixed_vector_table.h"
#include "util/saturating_counter.h"

namespace confsim {

/** Concatenated PC/history indexed two-bit counter predictor. */
class GselectPredictor : public BranchPredictor
{
  public:
    /**
     * @param num_entries Counter table size (power of two), 2^m.
     * @param history_bits Global history depth h (< m); the index is
     *        {history[h-1:0], pc[m-h+1:2]}.
     * @param counter_bits Counter width.
     */
    GselectPredictor(std::size_t num_entries, unsigned history_bits,
                     unsigned counter_bits = 2);

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

  private:
    std::uint64_t indexOf(std::uint64_t pc) const;

    FixedVectorTable<SaturatingCounter> table_;
    HistoryRegister history_;
    unsigned counterBits_;
};

} // namespace confsim

#endif // CONFSIM_PREDICTOR_GSELECT_H
