/**
 * @file
 * Bimodal (Smith) predictor: a PC-indexed table of 2-bit saturating
 * counters [Smith 1981]. Serves as the simple baseline and as one
 * constituent of the hybrid predictor.
 */

#ifndef CONFSIM_PREDICTOR_BIMODAL_H
#define CONFSIM_PREDICTOR_BIMODAL_H

#include "predictor/branch_predictor.h"
#include "util/fixed_vector_table.h"
#include "util/saturating_counter.h"

namespace confsim {

/** PC-indexed saturating-counter predictor. */
class BimodalPredictor : public BranchPredictor
{
  public:
    /**
     * @param num_entries Counter table size (power of two).
     * @param counter_bits Counter width; 2 in all paper configurations.
     */
    explicit BimodalPredictor(std::size_t num_entries,
                              unsigned counter_bits = 2);

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

  private:
    std::uint64_t indexOf(std::uint64_t pc) const;

    FixedVectorTable<SaturatingCounter> table_;
    unsigned counterBits_;
};

} // namespace confsim

#endif // CONFSIM_PREDICTOR_BIMODAL_H
