#include "predictor/tage.h"

#include "ckpt/state_helpers.h"

#include "util/bits.h"
#include "util/status.h"

namespace confsim {

namespace {

SaturatingCounter
weaklyTakenBimodal()
{
    return SaturatingCounter(3, 2);
}

} // namespace

TageConfig
TageConfig::makeSmall()
{
    TageConfig c;
    c.bimodalEntries = std::size_t{1} << 8;
    c.taggedEntries = std::size_t{1} << 7;
    c.tagBits = 7;
    c.historyLengths = {4, 9, 18};
    c.agingPeriod = 8192;
    return c;
}

TagePredictor::TagePredictor(TageConfig config)
    : config_(std::move(config)),
      bimodal_(config_.bimodalEntries, weaklyTakenBimodal(), 2),
      history_(config_.historyLengths.empty()
                   ? 1
                   : config_.historyLengths.back()),
      useAltOnNa_(static_cast<std::uint32_t>(mask(config_.useAltBits)), 0),
      ctrMax_(static_cast<std::uint8_t>(mask(config_.counterBits))),
      uMax_(static_cast<std::uint8_t>(mask(config_.usefulBits)))
{
    if (config_.historyLengths.empty())
        fatal("TAGE requires at least one tagged table");
    if (!isPowerOfTwo(config_.taggedEntries))
        fatal("TAGE tagged-table size must be a power of two");
    if (config_.tagBits < 2 || config_.tagBits > 16)
        fatal("TAGE tag width must be in [2, 16]");
    if (config_.counterBits < 2 || config_.counterBits > 8)
        fatal("TAGE counter width must be in [2, 8]");
    if (config_.usefulBits < 1 || config_.usefulBits > 8)
        fatal("TAGE useful-counter width must be in [1, 8]");
    unsigned prev = 0;
    for (unsigned len : config_.historyLengths) {
        if (len <= prev || len > 64)
            fatal("TAGE history lengths must be strictly increasing "
                  "and <= 64");
        prev = len;
    }
    tables_.assign(config_.historyLengths.size(),
                   std::vector<TageEntry>(config_.taggedEntries));
}

bool
TagePredictor::ctrTaken(std::uint8_t ctr) const
{
    return ctr >= (ctrMax_ + 1u) / 2;
}

std::uint64_t
TagePredictor::ctrStrength(std::uint8_t ctr) const
{
    const std::uint32_t mid = (ctrMax_ + 1u) / 2;
    return ctr >= mid ? ctr - mid : mid - 1u - ctr;
}

std::uint64_t
TagePredictor::strengthLevels() const
{
    return (std::uint64_t{ctrMax_} + 1) / 2;
}

std::uint64_t
TagePredictor::bimodalIndex(std::uint64_t pc) const
{
    return bitsOf(pc, bimodal_.indexBits() + 1, 2);
}

std::uint64_t
TagePredictor::indexOf(std::size_t table, std::uint64_t pc) const
{
    const unsigned bits = log2Exact(config_.taggedEntries);
    const std::uint64_t pc_field = pc >> 2;
    const std::uint64_t hist =
        history_.value() & mask(config_.historyLengths[table]);
    return (xorFold(pc_field, bits) ^
            xorFold(pc_field >> (table + 1), bits) ^
            xorFold(hist, bits)) &
           mask(bits);
}

std::uint16_t
TagePredictor::tagOf(std::size_t table, std::uint64_t pc) const
{
    const unsigned bits = config_.tagBits;
    const std::uint64_t pc_field = pc >> 2;
    const std::uint64_t hist =
        history_.value() & mask(config_.historyLengths[table]);
    // The classic double-folded tag hash: two history folds at widths
    // (bits, bits - 1) decorrelate the tag from the index fold.
    const std::uint64_t tag = xorFold(pc_field, bits) ^
                              xorFold(hist, bits) ^
                              (xorFold(hist, bits - 1) << 1);
    return static_cast<std::uint16_t>(tag & mask(bits));
}

const TageEntry &
TagePredictor::entryAt(std::size_t table, std::uint64_t index) const
{
    return tables_[table][index & mask(log2Exact(config_.taggedEntries))];
}

TagePrediction
TagePredictor::predictDetail(std::uint64_t pc) const
{
    TagePrediction d;
    int provider = -1;
    int alt = -1;
    for (int t = static_cast<int>(tables_.size()) - 1; t >= 0; --t) {
        const auto table = static_cast<std::size_t>(t);
        if (tables_[table][indexOf(table, pc)].tag != tagOf(table, pc))
            continue;
        if (provider < 0) {
            provider = t;
        } else {
            alt = t;
            break;
        }
    }

    const auto &base = bimodal_[bimodalIndex(pc)];
    const bool bimodal_taken = base.predictsTaken();
    if (provider < 0) {
        // Bimodal provides; its counter strength is the confidence.
        const std::uint32_t mid = (base.max() + 1) / 2;
        d.providerCtr = base.value();
        d.providerTaken = bimodal_taken;
        d.providerStrength = base.value() >= mid ? base.value() - mid
                                                 : mid - 1 - base.value();
        d.altTaken = bimodal_taken;
        d.taken = bimodal_taken;
        return d;
    }

    const auto ptable = static_cast<std::size_t>(provider);
    const TageEntry &entry = tables_[ptable][indexOf(ptable, pc)];
    d.providerTable = provider;
    d.providerCtr = entry.ctr;
    d.providerTaken = ctrTaken(entry.ctr);
    d.providerStrength = ctrStrength(entry.ctr);
    d.newlyAllocated = entry.u == 0 && d.providerStrength == 0;
    if (alt >= 0) {
        const auto atable = static_cast<std::size_t>(alt);
        d.altTable = alt;
        d.altTaken = ctrTaken(tables_[atable][indexOf(atable, pc)].ctr);
    } else {
        d.altTaken = bimodal_taken;
    }
    d.usedAlt = d.newlyAllocated && useAltOnNa_.predictsTaken();
    d.taken = d.usedAlt ? d.altTaken : d.providerTaken;
    return d;
}

bool
TagePredictor::predict(std::uint64_t pc) const
{
    return predictDetail(pc).taken;
}

void
TagePredictor::update(std::uint64_t pc, bool taken)
{
    const TagePrediction d = predictDetail(pc);

    if (d.providerTable >= 0) {
        const auto ptable = static_cast<std::size_t>(d.providerTable);
        TageEntry &entry = tables_[ptable][indexOf(ptable, pc)];

        // Useful counter: evidence only when provider and alternate
        // disagree — the provider was the tie-breaker.
        if (d.providerTaken != d.altTaken) {
            if (d.providerTaken == taken) {
                if (entry.u < uMax_)
                    ++entry.u;
            } else if (entry.u > 0) {
                --entry.u;
            }
        }

        // Learn whether newly allocated entries should defer to alt.
        if (d.newlyAllocated && d.providerTaken != d.altTaken) {
            if (d.altTaken == taken)
                useAltOnNa_.increment();
            else
                useAltOnNa_.decrement();
        }

        if (taken) {
            if (entry.ctr < ctrMax_)
                ++entry.ctr;
        } else if (entry.ctr > 0) {
            --entry.ctr;
        }
    } else {
        auto &base = bimodal_[bimodalIndex(pc)];
        if (taken)
            base.increment();
        else
            base.decrement();
    }

    // On a mispredict, allocate a fresh entry in a longer-history
    // table: the first candidate with u == 0, weakly initialized;
    // if all candidates are useful, decay them instead.
    if (d.taken != taken &&
        d.providerTable + 1 < static_cast<int>(tables_.size())) {
        int victim = -1;
        for (std::size_t t = static_cast<std::size_t>(d.providerTable + 1);
             t < tables_.size(); ++t) {
            if (tables_[t][indexOf(t, pc)].u == 0) {
                victim = static_cast<int>(t);
                break;
            }
        }
        if (victim >= 0) {
            const auto vtable = static_cast<std::size_t>(victim);
            TageEntry &entry = tables_[vtable][indexOf(vtable, pc)];
            entry.tag = tagOf(vtable, pc);
            const auto mid = static_cast<std::uint8_t>((ctrMax_ + 1u) / 2);
            entry.ctr = taken ? mid : static_cast<std::uint8_t>(mid - 1);
            entry.u = 0;
        } else {
            for (std::size_t t =
                     static_cast<std::size_t>(d.providerTable + 1);
                 t < tables_.size(); ++t) {
                TageEntry &entry = tables_[t][indexOf(t, pc)];
                if (entry.u > 0)
                    --entry.u;
            }
        }
    }

    ++updates_;
    if (config_.agingPeriod != 0 && updates_ % config_.agingPeriod == 0)
        ageUsefulCounters();

    history_.recordOutcome(taken);
}

void
TagePredictor::ageUsefulCounters()
{
    for (auto &table : tables_)
        for (auto &entry : table)
            entry.u = static_cast<std::uint8_t>(entry.u >> 1);
}

std::uint64_t
TagePredictor::storageBits() const
{
    const std::uint64_t per_entry =
        config_.tagBits + config_.counterBits + config_.usefulBits;
    return bimodal_.storageBits() +
           tables_.size() * config_.taggedEntries * per_entry +
           history_.width() + config_.useAltBits + 64;
}

std::string
TagePredictor::name() const
{
    return "tage-" + std::to_string(tables_.size()) + "x" +
           std::to_string(config_.taggedEntries) + "-h" +
           std::to_string(config_.historyLengths.back());
}

void
TagePredictor::reset()
{
    bimodal_.fill(weaklyTakenBimodal());
    for (auto &table : tables_)
        for (auto &entry : table)
            entry = TageEntry{};
    history_.reset();
    useAltOnNa_.set(0);
    updates_ = 0;
}

void
TagePredictor::saveState(StateWriter &out) const
{
    out.putU64(tables_.size());
    out.putU64(config_.taggedEntries);
    for (const auto &table : tables_) {
        for (const auto &entry : table) {
            out.putU16(entry.tag);
            out.putU8(entry.ctr);
            out.putU8(entry.u);
        }
    }
    saveCounterTable(out, bimodal_);
    out.putU64(history_.value());
    out.putU32(useAltOnNa_.value());
    out.putU64(updates_);
}

void
TagePredictor::loadState(StateReader &in)
{
    in.expectU64(tables_.size(), "TAGE table count");
    in.expectU64(config_.taggedEntries, "TAGE entries per table");
    for (auto &table : tables_) {
        for (auto &entry : table) {
            entry.tag = in.getU16();
            entry.ctr = in.getU8();
            entry.u = in.getU8();
        }
    }
    loadCounterTable(in, bimodal_);
    history_.setValue(in.getU64());
    useAltOnNa_.set(in.getU32());
    updates_ = in.getU64();
}

} // namespace confsim
