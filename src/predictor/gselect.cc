#include "predictor/gselect.h"

#include "ckpt/state_helpers.h"

#include "util/bits.h"
#include "util/status.h"

namespace confsim {

namespace {

SaturatingCounter
weaklyTakenCounter(unsigned counter_bits)
{
    const auto max = static_cast<std::uint32_t>(mask(counter_bits));
    return SaturatingCounter(max, (max + 1) / 2);
}

} // namespace

GselectPredictor::GselectPredictor(std::size_t num_entries,
                                   unsigned history_bits,
                                   unsigned counter_bits)
    : table_(num_entries, weaklyTakenCounter(counter_bits),
             counter_bits),
      history_(history_bits), counterBits_(counter_bits)
{
    if (history_bits >= table_.indexBits())
        fatal("gselect history depth must be less than the index "
              "width (some PC bits must remain)");
}

std::uint64_t
GselectPredictor::indexOf(std::uint64_t pc) const
{
    const unsigned pc_bits = table_.indexBits() - history_.width();
    const std::uint64_t pc_field = bitsOf(pc, pc_bits + 1, 2);
    return pc_field | (history_.value() << pc_bits);
}

bool
GselectPredictor::predict(std::uint64_t pc) const
{
    return table_[indexOf(pc)].predictsTaken();
}

void
GselectPredictor::update(std::uint64_t pc, bool taken)
{
    auto &counter = table_[indexOf(pc)];
    if (taken)
        counter.increment();
    else
        counter.decrement();
    history_.recordOutcome(taken);
}

std::uint64_t
GselectPredictor::storageBits() const
{
    return table_.storageBits() + history_.width();
}

std::string
GselectPredictor::name() const
{
    return "gselect-" + std::to_string(table_.size()) + "x" +
           std::to_string(counterBits_) + "b-h" +
           std::to_string(history_.width());
}

void
GselectPredictor::reset()
{
    table_.fill(weaklyTakenCounter(counterBits_));
    history_.reset();
}


void
GselectPredictor::saveState(StateWriter &out) const
{
    saveCounterTable(out, table_);
    out.putU64(history_.value());
}

void
GselectPredictor::loadState(StateReader &in)
{
    loadCounterTable(in, table_);
    history_.setValue(in.getU64());
}

} // namespace confsim
