#include "predictor/hybrid.h"

#include "ckpt/state_helpers.h"

#include "util/status.h"

namespace confsim {

HybridPredictor::HybridPredictor(std::unique_ptr<BranchPredictor> first,
                                 std::unique_ptr<BranchPredictor> second,
                                 std::size_t chooser_entries)
    : first_(std::move(first)), second_(std::move(second)),
      // Chooser counters initialize to weakly-select-first (value 1 of
      // 0..3) so early behaviour is not biased strongly either way.
      chooser_(chooser_entries, SaturatingCounter(3, 1), 2)
{
    if (!first_ || !second_)
        fatal("HybridPredictor requires two constituent predictors");
}

bool
HybridPredictor::selectsSecond(std::uint64_t pc) const
{
    return chooser_[pc >> 2].predictsTaken();
}

bool
HybridPredictor::predict(std::uint64_t pc) const
{
    return selectsSecond(pc) ? second_->predict(pc)
                             : first_->predict(pc);
}

void
HybridPredictor::update(std::uint64_t pc, bool taken)
{
    // Recompute constituent predictions before any state changes; both
    // constituents then train on the outcome.
    const bool p1 = first_->predict(pc);
    const bool p2 = second_->predict(pc);

    // Train the chooser only on disagreement, toward the correct one.
    if (p1 != p2) {
        auto &counter = chooser_[pc >> 2];
        if (p2 == taken)
            counter.increment();
        else
            counter.decrement();
    }

    first_->update(pc, taken);
    second_->update(pc, taken);
}

std::uint64_t
HybridPredictor::storageBits() const
{
    return first_->storageBits() + second_->storageBits() +
           chooser_.storageBits();
}

std::string
HybridPredictor::name() const
{
    return "hybrid(" + first_->name() + "," + second_->name() + ")";
}

void
HybridPredictor::reset()
{
    first_->reset();
    second_->reset();
    chooser_.fill(SaturatingCounter(3, 1));
}


bool
HybridPredictor::checkpointable() const
{
    return first_->checkpointable() && second_->checkpointable();
}

void
HybridPredictor::saveState(StateWriter &out) const
{
    first_->saveState(out);
    second_->saveState(out);
    saveCounterTable(out, chooser_);
}

void
HybridPredictor::loadState(StateReader &in)
{
    first_->loadState(in);
    second_->loadState(in);
    loadCounterTable(in, chooser_);
}

} // namespace confsim
