#include "predictor/gshare.h"

#include "ckpt/state_helpers.h"

#include "util/bits.h"
#include "util/status.h"

namespace confsim {

namespace {

SaturatingCounter
weaklyTakenCounter(unsigned counter_bits)
{
    const auto max = static_cast<std::uint32_t>(mask(counter_bits));
    return SaturatingCounter(max, (max + 1) / 2);
}

} // namespace

GsharePredictor::GsharePredictor(std::size_t num_entries,
                                 unsigned history_bits,
                                 unsigned counter_bits)
    : table_(num_entries, weaklyTakenCounter(counter_bits), counter_bits),
      history_(history_bits),
      counterBits_(counter_bits)
{
    if (history_bits > table_.indexBits())
        fatal("gshare history depth must not exceed index width");
}

GsharePredictor
GsharePredictor::makeLargePaperConfig()
{
    return GsharePredictor(std::size_t{1} << 16, 16);
}

GsharePredictor
GsharePredictor::makeSmallPaperConfig()
{
    return GsharePredictor(std::size_t{1} << 12, 12);
}

std::uint64_t
GsharePredictor::indexOf(std::uint64_t pc) const
{
    // PC bits [m+1 : 2] XOR the h-bit global history (right-aligned).
    const std::uint64_t pc_field =
        bitsOf(pc, table_.indexBits() + 1, 2);
    return pc_field ^ history_.value();
}

bool
GsharePredictor::predict(std::uint64_t pc) const
{
    return table_[indexOf(pc)].predictsTaken();
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    auto &counter = table_[indexOf(pc)];
    if (taken)
        counter.increment();
    else
        counter.decrement();
    history_.recordOutcome(taken);
}

std::uint64_t
GsharePredictor::storageBits() const
{
    return table_.storageBits() + history_.width();
}

std::string
GsharePredictor::name() const
{
    return "gshare-" + std::to_string(table_.size()) + "x" +
           std::to_string(counterBits_) + "b-h" +
           std::to_string(history_.width());
}

void
GsharePredictor::reset()
{
    table_.fill(weaklyTakenCounter(counterBits_));
    history_.reset();
}


void
GsharePredictor::saveState(StateWriter &out) const
{
    saveCounterTable(out, table_);
    out.putU64(history_.value());
}

void
GsharePredictor::loadState(StateReader &in)
{
    loadCounterTable(in, table_);
    history_.setValue(in.getU64());
}

} // namespace confsim
