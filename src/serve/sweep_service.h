/**
 * @file
 * The sweep job service: admission control, backpressure, tenant
 * isolation, and graceful drain over SuiteRunner::runSweep.
 *
 * A SweepService owns one host-sized SweepWorkerPool and multiplexes
 * every tenant's sweep jobs over it. Jobs pass through a bounded
 * admission queue: when the queue is full, submit() sheds load by
 * throwing Error{kResource} instead of letting callers pile up
 * unbounded work — the caller-visible backpressure signal. Admitted
 * jobs are scheduled FIFO with tenant fairness: a slot picks the
 * oldest queued job among the tenants with the fewest jobs already
 * running, and a per-tenant in-flight cap keeps one tenant from
 * monopolizing every slot no matter how fast it submits.
 *
 * Isolation: each job runs under its own CancellationToken (chained
 * beneath the service token, itself chained beneath an optional
 * external token such as a SIGTERM handler's), writes telemetry to its
 * own JSONL sink, and checkpoints into its own directory. RunPolicy
 * watchdog/retry/deadline semantics apply per job. Results are
 * bit-exact with running the same spec directly through
 * SuiteRunner::runSweep — scheduling never perturbs simulation.
 *
 * Graceful drain: drain() stops admission (further submits are
 * rejected and counted), then either waits for in-flight jobs
 * (kWait), cancels them (kCancel), or cancels them expecting their
 * checkpoint generations to make them resumable (kCheckpoint —
 * interrupted jobs that left generations are reported kDrained).
 * Drain joins every slot thread, merges final pool-occupancy metrics,
 * emits service_drained, and flushes the telemetry sinks; it is
 * idempotent and also runs from the destructor (kCancel), so a
 * SweepService never leaks threads.
 *
 * Accounting invariants (enforced by tests/serve/ and the chaos
 * suite): submitted == admitted + rejected, and after drain,
 * admitted == finished + failed + cancelled + drained.
 */

#ifndef CONFSIM_SERVE_SWEEP_SERVICE_H
#define CONFSIM_SERVE_SWEEP_SERVICE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/job.h"
#include "sim/sweep_engine.h"
#include "util/cancellation.h"

namespace confsim {

class Telemetry;

/** What drain() does with queued and in-flight jobs. */
enum class DrainMode : std::uint8_t
{
    kWait = 0,   //!< run everything already admitted to completion
    kCancel,     //!< cancel queued + in-flight jobs cooperatively
    kCheckpoint, //!< cancel, reporting jobs that left resumable
                 //!< checkpoint generations as kDrained
};

/** @return "wait" / "cancel" / "checkpoint". */
inline const char *
toString(DrainMode mode)
{
    switch (mode) {
    case DrainMode::kWait: return "wait";
    case DrainMode::kCancel: return "cancel";
    case DrainMode::kCheckpoint: return "checkpoint";
    }
    return "wait";
}

/** Service sizing and wiring knobs. */
struct ServiceOptions
{
    /** Max jobs waiting in the admission queue (running jobs have
     *  left it). Submits beyond this shed with Error{kResource}. */
    std::size_t queueDepth = 16;

    /** Max jobs one tenant may have running at once (0 = no cap). */
    unsigned tenantMaxInFlight = 2;

    /** Concurrent job slots (scheduler threads; >= 1). */
    unsigned jobSlots = 2;

    /** Shared worker-pool threads (0 = one per hardware thread). */
    unsigned poolWorkers = 0;

    /**
     * Root of the per-job directories
     * (<jobDir>/<tenant>/<label>/{telemetry-<id>.jsonl, ckpt/}).
     * "" disables per-job telemetry and checkpointing (a spec
     * requesting checkpoints is then rejected at submit, kConfig).
     */
    std::string jobDir;

    /** Service-level telemetry stream (serve.* metrics, job_* events);
     *  not owned; null = off. Distinct from the per-job sinks. */
    Telemetry *telemetry = nullptr;

    /** Optional external root token (e.g. wired to SIGTERM). Must
     *  outlive the service. Cancelling it cancels every job. */
    const CancellationToken *cancel = nullptr;
};

/** Per-tenant slice of a ServiceStatus snapshot. */
struct TenantStatus
{
    std::string tenant;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    unsigned inFlight = 0; //!< running right now
    std::size_t queued = 0;
};

/** Point-in-time service counters (the live status surface). */
struct ServiceStatus
{
    std::size_t queued = 0;   //!< jobs in the admission queue
    unsigned running = 0;     //!< jobs on slots right now
    bool draining = false;

    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t finished = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t drained = 0;

    unsigned poolWorkers = 0;
    unsigned poolBusy = 0; //!< pool workers running a task right now

    std::vector<TenantStatus> tenants; //!< sorted by tenant name
};

/** The sweep job service. Construction spawns the slot threads. */
class SweepService
{
  public:
    explicit SweepService(ServiceOptions options);

    /** Drains with DrainMode::kCancel if not already drained. */
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /**
     * Admit @p spec, returning its job id.
     *
     * @throws Error{kResource} when the admission queue is full (the
     *         load-shedding signal; counted as rejected).
     * @throws Error{kCancelled} when the service is draining or its
     *         token is cancelled (also counted as rejected).
     * @throws Error{kConfig} when the spec is unrunnable: no
     *         configurations, checkpoint/resume without a service
     *         jobDir, or a tenant+label pair that is still queued or
     *         running (labels key the per-job directory, so two live
     *         jobs must never share one). Config rejections are
     *         counted as rejected too — every submit is exactly one
     *         of admitted or rejected.
     */
    std::uint64_t submit(JobSpec spec);

    /** @return a snapshot of job @p id; throws Error{kConfig} when
     *  the id is unknown. */
    JobStatus status(std::uint64_t id) const;

    /** Block until job @p id reaches a terminal state; returns the
     *  final snapshot. Throws Error{kConfig} on unknown id. */
    JobStatus wait(std::uint64_t id);

    /**
     * Cancel one job: a queued job becomes kCancelled immediately, a
     * running job's token is cancelled and it unwinds cooperatively.
     * @return false when the job is unknown or already terminal.
     */
    bool cancelJob(std::uint64_t id);

    /** @return the live counters/queue/pool snapshot. */
    ServiceStatus serviceStatus() const;

    /**
     * Stop admitting and settle every admitted job per @p mode (see
     * DrainMode), then join the slot threads, publish final serve.*
     * metrics (including serve.pool_occupancy), emit service_drained,
     * and flush the telemetry sinks. Blocks until settled; idempotent
     * (later calls return immediately, whatever their mode).
     */
    void drain(DrainMode mode);

    /** @return true once drain() has completed. */
    bool drained() const;

  private:
    using Clock = std::chrono::steady_clock;

    /** Internal per-job record (stable address; owned by records_). */
    struct JobRecord
    {
        std::uint64_t id = 0;
        JobSpec spec;
        JobState state = JobState::kQueued;
        std::string error;
        ErrorCategory errorCategory = ErrorCategory::kInternal;
        bool checkpointed = false;
        std::string jobDir;
        std::string telemetryPath;
        Clock::time_point submitted;
        Clock::time_point started;
        Clock::time_point ended;
        std::shared_ptr<const SweepSuiteResult> result;
        /** Per-job token, chained under the service token. */
        std::unique_ptr<CancellationToken> token;
    };

    struct TenantCounters
    {
        std::uint64_t admitted = 0;
        std::uint64_t rejected = 0;
        unsigned inFlight = 0;
    };

    void slotMain();
    JobRecord *pickEligibleLocked();
    void runJob(JobRecord &job);
    void finalizeJobLocked(JobRecord &job, JobState state,
                           std::string error, ErrorCategory category);
    void emitJobEvent(const JobRecord &job, const char *type,
                      double waitMs);
    void publishGaugesLocked();
    JobStatus snapshotLocked(const JobRecord &job) const;
    void rejectLocked(const JobSpec &spec, const char *reason);

    ServiceOptions options_;
    CancellationToken serviceToken_;
    std::unique_ptr<SweepWorkerPool> pool_;
    unsigned poolWorkers_ = 0;

    mutable std::mutex mu_;
    std::condition_variable cvWork_; //!< slots: queue/tenant changes
    std::condition_variable cvDone_; //!< waiters: job transitions
    std::deque<JobRecord *> queue_;  //!< admission order (FIFO)
    std::map<std::uint64_t, std::unique_ptr<JobRecord>> records_;
    std::map<std::string, TenantCounters> tenants_;
    std::vector<std::thread> slots_;
    std::uint64_t nextId_ = 1;
    unsigned running_ = 0;
    bool draining_ = false;
    bool stopSlots_ = false;
    bool drainDone_ = false;
    DrainMode drainMode_ = DrainMode::kWait;

    std::uint64_t submitted_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t finished_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t drained_ = 0;
};

/**
 * @return true when @p directory holds any checkpoint files
 * (generation or done-marker) — the "this job is resumable" probe the
 * checkpoint-drain path and the chaos tests share.
 */
bool hasCheckpointFiles(const std::string &directory);

/**
 * Sanitize @p name for use as a path component: [A-Za-z0-9._-] pass
 * through, everything else becomes '_', "" becomes "_". Purely
 * lexical, so equal names always map to equal directories (the
 * property label-keyed resume relies on).
 */
std::string sanitizePathComponent(const std::string &name);

} // namespace confsim

#endif // CONFSIM_SERVE_SWEEP_SERVICE_H
