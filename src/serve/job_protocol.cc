#include "serve/job_protocol.h"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "obs/json.h"
#include "sim/experiment.h"

namespace confsim {

namespace {

/** Strict recursive-descent JSON reader over one in-memory line. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        skipWhitespace();
        JsonValue value = parseValue(0);
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after JSON value");
        return value;
    }

  private:
    static constexpr unsigned kMaxDepth = 64;

    [[noreturn]] void
    fail(const std::string &why) const
    {
        fatal(ErrorCategory::kConfig,
              "bad JSON at offset " + std::to_string(pos_) + ": " +
                  why);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *literal)
    {
        std::size_t n = 0;
        while (literal[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, literal) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    parseValue(unsigned depth)
    {
        if (depth > kMaxDepth)
            fail("nesting too deep");
        skipWhitespace();
        JsonValue value;
        switch (peek()) {
        case '{': return parseObject(depth);
        case '[': return parseArray(depth);
        case '"':
            value.kind = JsonValue::Kind::kString;
            value.text = parseString();
            return value;
        case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            value.kind = JsonValue::Kind::kBool;
            value.boolean = true;
            return value;
        case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            value.kind = JsonValue::Kind::kBool;
            value.boolean = false;
            return value;
        case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            value.kind = JsonValue::Kind::kNull;
            return value;
        default: return parseNumber();
        }
    }

    JsonValue
    parseObject(unsigned depth)
    {
        JsonValue value;
        value.kind = JsonValue::Kind::kObject;
        expect('{');
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        for (;;) {
            skipWhitespace();
            if (peek() != '"')
                fail("expected object key");
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            value.members.emplace_back(std::move(key),
                                       parseValue(depth + 1));
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    JsonValue
    parseArray(unsigned depth)
    {
        JsonValue value;
        value.kind = JsonValue::Kind::kArray;
        expect('[');
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        for (;;) {
            value.items.push_back(parseValue(depth + 1));
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return value;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': appendUnicodeEscape(out); break;
            default: fail("bad escape character");
            }
        }
    }

    unsigned
    parseHex4()
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("bad \\u escape digit");
        }
        return code;
    }

    void
    appendUnicodeEscape(std::string &out)
    {
        unsigned code = parseHex4();
        if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
                fail("unpaired surrogate");
            pos_ += 2;
            const unsigned low = parseHex4();
            if (low < 0xDC00 || low > 0xDFFF)
                fail("bad low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate");
        }
        // UTF-8 encode.
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (peek() < '0' || peek() > '9')
            fail("expected a value");
        if (peek() == '0') {
            ++pos_; // RFC 8259: no leading zeros ("01" is invalid)
        } else {
            while (peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (peek() == '.') {
            ++pos_;
            if (peek() < '0' || peek() > '9')
                fail("bad fraction");
            while (peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (peek() < '0' || peek() > '9')
                fail("bad exponent");
            while (peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        const std::string token = text_.substr(start, pos_ - start);
        JsonValue value;
        value.kind = JsonValue::Kind::kNumber;
        value.number = std::strtod(token.c_str(), nullptr);
        return value;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

std::uint64_t
optionalUnsigned(const JsonValue &object, const std::string &key,
                 std::uint64_t fallback)
{
    const JsonValue *value = object.find(key);
    return value != nullptr ? value->asUnsigned(key) : fallback;
}

bool
optionalBool(const JsonValue &object, const std::string &key,
             bool fallback)
{
    const JsonValue *value = object.find(key);
    return value != nullptr ? value->asBool(key) : fallback;
}

std::string
optionalString(const JsonValue &object, const std::string &key,
               const std::string &fallback)
{
    const JsonValue *value = object.find(key);
    return value != nullptr ? value->asString(key) : fallback;
}

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::kObject)
        return nullptr;
    for (const auto &[name, value] : members) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

std::string
JsonValue::asString(const std::string &what) const
{
    if (kind != Kind::kString)
        fatal(ErrorCategory::kConfig,
              "field '" + what + "' must be a string");
    return text;
}

double
JsonValue::asNumber(const std::string &what) const
{
    if (kind != Kind::kNumber)
        fatal(ErrorCategory::kConfig,
              "field '" + what + "' must be a number");
    return number;
}

std::uint64_t
JsonValue::asUnsigned(const std::string &what) const
{
    const double value = asNumber(what);
    if (value < 0.0 || value != std::floor(value))
        fatal(ErrorCategory::kConfig,
              "field '" + what + "' must be a non-negative integer");
    return static_cast<std::uint64_t>(value);
}

bool
JsonValue::asBool(const std::string &what) const
{
    if (kind != Kind::kBool)
        fatal(ErrorCategory::kConfig,
              "field '" + what + "' must be a boolean");
    return boolean;
}

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

std::vector<std::string>
knownConfigNames()
{
    return {"ones",      "ideal",         "resetting",
            "saturating", "two-level",     "tage-provider",
            "perceptron-margin"};
}

SweepConfiguration
makeNamedConfiguration(const std::string &name,
                       const std::string &predictor)
{
    // Native-confidence configs default to their matching predictor
    // so the estimator's shadow replica mirrors the real structure;
    // everything else defaults to the paper's large gshare.
    std::string predictor_name = predictor;
    if (predictor_name.empty()) {
        if (name == "tage-provider")
            predictor_name = "tage";
        else if (name == "perceptron-margin")
            predictor_name = "perceptron";
        else
            predictor_name = "gshare-large";
    }
    PredictorFactory makePredictor =
        makeNamedPredictorFactory(predictor_name);

    EstimatorConfig estimator;
    if (name == "ones") {
        estimator = oneLevelOnesCountConfig(IndexScheme::PcXorBhr);
    } else if (name == "ideal") {
        estimator = oneLevelIdealConfig(IndexScheme::PcXorBhr);
    } else if (name == "resetting") {
        estimator = oneLevelCounterConfig(IndexScheme::PcXorBhr,
                                          CounterKind::Resetting);
    } else if (name == "saturating") {
        estimator = oneLevelCounterConfig(IndexScheme::PcXorBhr,
                                          CounterKind::Saturating);
    } else if (name == "two-level") {
        estimator = twoLevelConfig(IndexScheme::PcXorBhr,
                                   SecondLevelIndex::CirXorPc);
    } else if (name == "tage-provider") {
        estimator = tageProviderConfig();
    } else if (name == "perceptron-margin") {
        estimator = perceptronMarginConfig();
    } else {
        std::string known;
        for (const auto &candidate : knownConfigNames())
            known += (known.empty() ? "" : ", ") + candidate;
        fatal(ErrorCategory::kConfig,
              "unknown config '" + name + "' (known: " + known + ")");
    }

    SweepConfiguration config;
    config.label = estimator.label;
    config.makePredictor = std::move(makePredictor);
    auto make = estimator.make;
    config.makeEstimators =
        [make]() {
            std::vector<std::unique_ptr<ConfidenceEstimator>> out;
            out.push_back(make());
            return out;
        };
    return config;
}

ProtocolRequest
parseProtocolRequest(const std::string &line)
{
    const JsonValue root = parseJson(line);
    if (root.kind != JsonValue::Kind::kObject)
        fatal(ErrorCategory::kConfig,
              "request must be a JSON object");
    ProtocolRequest request;
    request.opName = optionalString(root, "op", "");
    if (request.opName.empty())
        fatal(ErrorCategory::kConfig, "request has no \"op\" field");

    if (request.opName == "submit") {
        request.op = ProtocolRequest::Op::kSubmit;
        JobSpec spec;
        spec.tenant = optionalString(root, "tenant", "default");
        spec.label = optionalString(root, "label", "");
        spec.branches =
            optionalUnsigned(root, "branches", spec.branches);
        if (const JsonValue *benchmarks = root.find("benchmarks")) {
            if (benchmarks->kind != JsonValue::Kind::kArray)
                fatal(ErrorCategory::kConfig,
                      "field 'benchmarks' must be an array");
            for (const auto &bench : benchmarks->items)
                spec.benchmarks.push_back(
                    bench.asString("benchmarks[]"));
        }
        const std::string predictor =
            optionalString(root, "predictor", "");
        const JsonValue *configs = root.find("configs");
        if (configs == nullptr ||
            configs->kind != JsonValue::Kind::kArray)
            fatal(ErrorCategory::kConfig,
                  "submit requires a 'configs' array");
        for (const auto &config : configs->items)
            spec.configs.push_back(makeNamedConfiguration(
                config.asString("configs[]"), predictor));
        const std::string errorMode =
            optionalString(root, "error_mode", "fail-fast");
        if (errorMode == "continue")
            spec.policy.errorMode = ErrorMode::kContinueOnError;
        else if (errorMode != "fail-fast")
            fatal(ErrorCategory::kConfig,
                  "field 'error_mode' must be 'fail-fast' or "
                  "'continue'");
        spec.policy.maxAttempts = static_cast<unsigned>(
            optionalUnsigned(root, "max_attempts", 1));
        spec.policy.watchdogMs =
            optionalUnsigned(root, "watchdog_ms", 0);
        spec.policy.deadlineMs =
            optionalUnsigned(root, "deadline_ms", 0);
        spec.policy.retryBackoffMs =
            optionalUnsigned(root, "retry_backoff_ms", 0);
        spec.checkpoint = optionalBool(root, "checkpoint", false);
        spec.checkpointEvery = optionalUnsigned(
            root, "checkpoint_every", spec.checkpointEvery);
        spec.resume = optionalBool(root, "resume", false);
        request.spec = std::move(spec);
        return request;
    }

    if (request.opName == "status" || request.opName == "wait" ||
        request.opName == "cancel") {
        request.op = request.opName == "status"
                         ? ProtocolRequest::Op::kStatus
                     : request.opName == "wait"
                         ? ProtocolRequest::Op::kWait
                         : ProtocolRequest::Op::kCancel;
        if (const JsonValue *id = root.find("id")) {
            request.hasId = true;
            request.id = id->asUnsigned("id");
        } else if (request.op != ProtocolRequest::Op::kStatus) {
            fatal(ErrorCategory::kConfig,
                  "'" + request.opName + "' requires an 'id' field");
        }
        return request;
    }

    if (request.opName == "drain") {
        request.op = ProtocolRequest::Op::kDrain;
        const std::string mode =
            optionalString(root, "mode", "wait");
        if (mode == "wait")
            request.drainMode = DrainMode::kWait;
        else if (mode == "cancel")
            request.drainMode = DrainMode::kCancel;
        else if (mode == "checkpoint")
            request.drainMode = DrainMode::kCheckpoint;
        else
            fatal(ErrorCategory::kConfig,
                  "field 'mode' must be wait, cancel, or "
                  "checkpoint");
        return request;
    }

    if (request.opName == "quit") {
        request.op = ProtocolRequest::Op::kQuit;
        return request;
    }

    fatal(ErrorCategory::kConfig,
          "unknown op '" + request.opName + "'");
}

std::string
protocolError(const std::string &op, const std::string &message,
              ErrorCategory category)
{
    return "{\"ok\":false,\"op\":" + jsonString(op) +
           ",\"error\":" + jsonString(message) +
           ",\"category\":" + jsonString(toString(category)) + "}";
}

std::string
protocolSubmitOk(std::uint64_t id)
{
    return "{\"ok\":true,\"op\":\"submit\",\"id\":" +
           std::to_string(id) + "}";
}

std::string
protocolJobStatus(const std::string &op, const JobStatus &status)
{
    std::string out = "{\"ok\":true,\"op\":" + jsonString(op) +
                      ",\"id\":" + std::to_string(status.id) +
                      ",\"tenant\":" + jsonString(status.tenant) +
                      ",\"label\":" + jsonString(status.label) +
                      ",\"state\":" +
                      jsonString(toString(status.state)) +
                      ",\"checkpointed\":" +
                      (status.checkpointed ? "true" : "false") +
                      ",\"queue_ms\":" + jsonNumber(status.queueMs) +
                      ",\"run_ms\":" + jsonNumber(status.runMs);
    if (!status.error.empty()) {
        out += ",\"error\":" + jsonString(status.error) +
               ",\"category\":" +
               jsonString(toString(status.errorCategory));
    }
    if (status.result != nullptr) {
        out += ",\"results\":[";
        for (std::size_t i = 0; i < status.result->perConfig.size();
             ++i) {
            const SuiteRunResult &config =
                status.result->perConfig[i];
            if (i > 0)
                out += ",";
            out += "{\"label\":" +
                   jsonString(status.result->labels[i]) +
                   ",\"mispredict_rate\":" +
                   jsonNumber(config.compositeMispredictRate) +
                   ",\"degraded\":" +
                   (config.degraded ? "true" : "false") + "}";
        }
        out += "]";
    }
    out += "}";
    return out;
}

std::string
protocolServiceStatus(const ServiceStatus &status)
{
    std::string out =
        "{\"ok\":true,\"op\":\"status\",\"queued\":" +
        std::to_string(status.queued) +
        ",\"running\":" + std::to_string(status.running) +
        ",\"draining\":" + (status.draining ? "true" : "false") +
        ",\"submitted\":" + std::to_string(status.submitted) +
        ",\"admitted\":" + std::to_string(status.admitted) +
        ",\"rejected\":" + std::to_string(status.rejected) +
        ",\"finished\":" + std::to_string(status.finished) +
        ",\"failed\":" + std::to_string(status.failed) +
        ",\"cancelled\":" + std::to_string(status.cancelled) +
        ",\"drained\":" + std::to_string(status.drained) +
        ",\"pool_workers\":" + std::to_string(status.poolWorkers) +
        ",\"pool_busy\":" + std::to_string(status.poolBusy) +
        ",\"tenants\":[";
    for (std::size_t i = 0; i < status.tenants.size(); ++i) {
        const TenantStatus &tenant = status.tenants[i];
        if (i > 0)
            out += ",";
        out += "{\"tenant\":" + jsonString(tenant.tenant) +
               ",\"admitted\":" + std::to_string(tenant.admitted) +
               ",\"rejected\":" + std::to_string(tenant.rejected) +
               ",\"in_flight\":" + std::to_string(tenant.inFlight) +
               ",\"queued\":" + std::to_string(tenant.queued) + "}";
    }
    out += "]}";
    return out;
}

std::string
protocolOk(const std::string &op)
{
    return "{\"ok\":true,\"op\":" + jsonString(op) + "}";
}

} // namespace confsim
