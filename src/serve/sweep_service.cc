#include "serve/sweep_service.h"

#include <algorithm>
#include <filesystem>
#include <string_view>
#include <system_error>
#include <thread>
#include <utility>

#include "obs/event.h"
#include "obs/run_manifest.h"
#include "obs/telemetry.h"
#include "workload/suite.h"

namespace confsim {

namespace fs = std::filesystem;

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

} // namespace

bool
hasCheckpointFiles(const std::string &directory)
{
    std::error_code ec;
    fs::directory_iterator it(directory, ec);
    if (ec)
        return false;
    for (const auto &entry : it) {
        if (entry.is_regular_file(ec) &&
            entry.path().extension() == ".ckpt")
            return true;
    }
    return false;
}

std::string
sanitizePathComponent(const std::string &name)
{
    if (name.empty())
        return "_";
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        out.push_back(ok ? c : '_');
    }
    return out;
}

SweepService::SweepService(ServiceOptions options)
    : options_(std::move(options)), serviceToken_(options_.cancel)
{
    if (options_.jobSlots == 0)
        options_.jobSlots = 1;
    poolWorkers_ = options_.poolWorkers != 0
                       ? options_.poolWorkers
                       : std::max(1u,
                                  std::thread::hardware_concurrency());
    pool_ = std::make_unique<SweepWorkerPool>(poolWorkers_);

    if (options_.telemetry != nullptr) {
        RunManifest manifest = RunManifest::withBuildInfo();
        manifest.tool = "sweep_service";
        manifest.suite = "service";
        options_.telemetry->setManifest(manifest);
        auto &registry = options_.telemetry->registry();
        registry.setGauge("serve.pool_workers",
                          static_cast<double>(poolWorkers_));
        registry.setGauge("serve.job_slots",
                          static_cast<double>(options_.jobSlots));
        registry.setGauge("serve.queue_limit",
                          static_cast<double>(options_.queueDepth));
    }

    slots_.reserve(options_.jobSlots);
    for (unsigned i = 0; i < options_.jobSlots; ++i)
        slots_.emplace_back([this] { slotMain(); });
}

SweepService::~SweepService()
{
    drain(DrainMode::kCancel);
}

void
SweepService::publishGaugesLocked()
{
    if (options_.telemetry == nullptr)
        return;
    auto &registry = options_.telemetry->registry();
    registry.setGauge("serve.queue_depth",
                      static_cast<double>(queue_.size()));
    registry.setGauge("serve.in_flight",
                      static_cast<double>(running_));
    for (const auto &[tenant, counters] : tenants_) {
        registry.setGauge("serve.tenant." +
                              sanitizePathComponent(tenant) +
                              ".in_flight",
                          static_cast<double>(counters.inFlight));
    }
}

void
SweepService::emitJobEvent(const JobRecord &job, const char *type,
                           double waitMs)
{
    if (options_.telemetry == nullptr)
        return;
    const std::string_view kind(type);
    TelemetryEvent event(type,
                         {field("job", job.id),
                          field("tenant", job.spec.tenant),
                          field("label", job.spec.label)});
    if (kind == events::kJobAdmitted) {
        event.fields.push_back(
            field("queue_depth",
                  static_cast<std::uint64_t>(queue_.size())));
    } else if (kind == events::kJobStarted) {
        event.fields.push_back(field("queue_ms", waitMs));
    } else if (kind == events::kJobFinished) {
        event.fields.push_back(field("run_ms", waitMs));
        event.fields.push_back(field(
            "configs",
            static_cast<std::uint64_t>(job.spec.configs.size())));
        event.fields.push_back(field(
            "degraded",
            job.result != nullptr && job.result->degraded()));
    } else if (kind == events::kJobFailed) {
        event.fields.push_back(field("state", toString(job.state)));
        event.fields.push_back(field("error", job.error));
        event.fields.push_back(
            field("category", toString(job.errorCategory)));
        event.fields.push_back(
            field("checkpointed", job.checkpointed));
    }
    options_.telemetry->emit(std::move(event));
}

void
SweepService::rejectLocked(const JobSpec &spec, const char *reason)
{
    ++rejected_;
    ++tenants_[spec.tenant].rejected;
    ErrorCategory category = ErrorCategory::kConfig;
    std::string message;
    if (std::string(reason) == "queue_full") {
        category = ErrorCategory::kResource;
        message = "sweep service queue is full (depth " +
                  std::to_string(options_.queueDepth) +
                  "); job rejected";
    } else if (std::string(reason) == "draining") {
        category = ErrorCategory::kCancelled;
        message = "sweep service is draining; job rejected";
    } else if (std::string(reason) == "no_configs") {
        message = "job has no sweep configurations";
    } else if (std::string(reason) == "no_job_dir") {
        message = "job requests checkpoint/resume but the service "
                  "has no job directory";
    } else {
        message = "a job with tenant '" + spec.tenant +
                  "' and label '" + spec.label +
                  "' is already queued or running";
    }
    if (options_.telemetry != nullptr) {
        options_.telemetry->registry().increment(
            "serve.jobs_rejected");
        options_.telemetry->emit(TelemetryEvent(
            events::kJobRejected,
            {field("tenant", spec.tenant),
             field("label", spec.label), field("reason", reason),
             field("category", toString(category))}));
    }
    publishGaugesLocked();
    throw Error(category, message);
}

std::uint64_t
SweepService::submit(JobSpec spec)
{
    std::unique_lock<std::mutex> lk(mu_);
    ++submitted_;
    if (spec.label.empty())
        spec.label = "job-" + std::to_string(nextId_);
    if (draining_ || serviceToken_.cancelled())
        rejectLocked(spec, "draining");
    if (queue_.size() >= options_.queueDepth)
        rejectLocked(spec, "queue_full");
    if (spec.configs.empty())
        rejectLocked(spec, "no_configs");
    if ((spec.checkpoint || spec.resume) && options_.jobDir.empty())
        rejectLocked(spec, "no_job_dir");
    for (const auto &[id, record] : records_) {
        if (!isTerminal(record->state) &&
            record->spec.tenant == spec.tenant &&
            record->spec.label == spec.label)
            rejectLocked(spec, "duplicate_label");
    }

    const std::uint64_t id = nextId_++;
    auto record = std::make_unique<JobRecord>();
    record->id = id;
    record->spec = std::move(spec);
    record->submitted = Clock::now();
    record->token =
        std::make_unique<CancellationToken>(&serviceToken_);
    if (!options_.jobDir.empty()) {
        record->jobDir =
            options_.jobDir + "/" +
            sanitizePathComponent(record->spec.tenant) + "/" +
            sanitizePathComponent(record->spec.label);
        record->telemetryPath = record->jobDir + "/telemetry-" +
                                std::to_string(id) + ".jsonl";
    }
    JobRecord *raw = record.get();
    records_.emplace(id, std::move(record));
    queue_.push_back(raw);
    ++admitted_;
    ++tenants_[raw->spec.tenant].admitted;
    if (options_.telemetry != nullptr)
        options_.telemetry->registry().increment(
            "serve.jobs_admitted");
    emitJobEvent(*raw, events::kJobAdmitted, 0.0);
    publishGaugesLocked();
    cvWork_.notify_one();
    return id;
}

SweepService::JobRecord *
SweepService::pickEligibleLocked()
{
    JobRecord *best = nullptr;
    unsigned bestInFlight = 0;
    for (JobRecord *job : queue_) {
        const unsigned inFlight = tenants_[job->spec.tenant].inFlight;
        if (options_.tenantMaxInFlight != 0 &&
            inFlight >= options_.tenantMaxInFlight)
            continue;
        // Queue order is FIFO, so the first job seen at the lowest
        // tenant occupancy is both the fairest and the oldest pick.
        if (best == nullptr || inFlight < bestInFlight) {
            best = job;
            bestInFlight = inFlight;
        }
    }
    return best;
}

void
SweepService::slotMain()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        JobRecord *job = nullptr;
        cvWork_.wait(lk, [&] {
            job = pickEligibleLocked();
            return job != nullptr || stopSlots_;
        });
        if (job == nullptr)
            return;
        queue_.erase(std::find(queue_.begin(), queue_.end(), job));
        job->state = JobState::kRunning;
        job->started = Clock::now();
        ++running_;
        ++tenants_[job->spec.tenant].inFlight;
        publishGaugesLocked();
        emitJobEvent(*job, events::kJobStarted,
                     elapsedMs(job->submitted, job->started));
        lk.unlock();
        runJob(*job);
        lk.lock();
    }
}

void
SweepService::runJob(JobRecord &job)
{
    const JobSpec &spec = job.spec;
    JobState final = JobState::kFinished;
    std::string error;
    ErrorCategory category = ErrorCategory::kInternal;
    std::shared_ptr<const SweepSuiteResult> result;
    std::unique_ptr<Telemetry> jobTelemetry;
    try {
        if (!job.jobDir.empty()) {
            fs::create_directories(job.jobDir);
            TelemetryOptions jobSink;
            jobSink.jsonlPath = job.telemetryPath;
            jobTelemetry = Telemetry::fromOptions(jobSink);
            RunManifest manifest = RunManifest::withBuildInfo();
            manifest.tool = "sweep_service job " + spec.label;
            manifest.suite = spec.benchmarks.empty()
                                 ? "ibs-small"
                                 : "ibs-subset";
            jobTelemetry->setManifest(manifest);
        }

        BenchmarkSuite suite =
            spec.benchmarks.empty()
                ? BenchmarkSuite::ibsSmall(spec.branches)
                : BenchmarkSuite::ibsSubset(spec.benchmarks,
                                            spec.branches);
        SuiteRunner runner(std::move(suite));
        if (spec.wrapSource)
            runner.setSourceWrapper(spec.wrapSource);

        DriverOptions driver = spec.driver;
        driver.telemetry = jobTelemetry.get();
        driver.cancel = nullptr; // the policy token governs

        RunPolicy policy = spec.policy;
        policy.cancel = job.token.get();
        policy.checkpoint = CheckpointPolicy{};
        if (spec.checkpoint || spec.resume) {
            policy.checkpoint.directory = job.jobDir + "/ckpt";
            policy.checkpoint.everyBranches = spec.checkpointEvery;
            policy.checkpoint.resume = spec.resume;
        }

        SweepOptions sweep = spec.sweep;
        sweep.pool = pool_.get();

        result = std::make_shared<const SweepSuiteResult>(
            runner.runSweep(spec.configs, driver, sweep, policy));
    } catch (const std::exception &e) {
        error = e.what();
        category = categoryOf(e);
        final = category == ErrorCategory::kCancelled
                    ? JobState::kCancelled
                    : JobState::kFailed;
    }
    if (jobTelemetry != nullptr)
        jobTelemetry->finish();
    const bool checkpointed =
        !job.jobDir.empty() &&
        hasCheckpointFiles(job.jobDir + "/ckpt");

    std::lock_guard<std::mutex> lk(mu_);
    if (final == JobState::kCancelled && draining_ &&
        drainMode_ == DrainMode::kCheckpoint && checkpointed)
        final = JobState::kDrained;
    job.checkpointed = checkpointed;
    job.result = std::move(result);
    --running_;
    --tenants_[spec.tenant].inFlight;
    finalizeJobLocked(job, final, std::move(error), category);
}

void
SweepService::finalizeJobLocked(JobRecord &job, JobState state,
                                std::string error,
                                ErrorCategory category)
{
    job.state = state;
    job.error = std::move(error);
    job.errorCategory = category;
    job.ended = Clock::now();
    const char *counterName = "serve.jobs_finished";
    switch (state) {
    case JobState::kFinished:
        ++finished_;
        break;
    case JobState::kFailed:
        ++failed_;
        counterName = "serve.jobs_failed";
        break;
    case JobState::kCancelled:
        ++cancelled_;
        counterName = "serve.jobs_cancelled";
        break;
    case JobState::kDrained:
        ++drained_;
        counterName = "serve.jobs_drained";
        break;
    default:
        break;
    }
    if (options_.telemetry != nullptr)
        options_.telemetry->registry().increment(counterName);
    if (state == JobState::kFinished) {
        emitJobEvent(job, events::kJobFinished,
                     elapsedMs(job.started, job.ended));
    } else {
        emitJobEvent(job, events::kJobFailed, 0.0);
    }
    publishGaugesLocked();
    cvDone_.notify_all();
    cvWork_.notify_all();
}

JobStatus
SweepService::snapshotLocked(const JobRecord &job) const
{
    JobStatus status;
    status.id = job.id;
    status.tenant = job.spec.tenant;
    status.label = job.spec.label;
    status.state = job.state;
    status.error = job.error;
    status.errorCategory = job.errorCategory;
    status.checkpointed = job.checkpointed;
    status.jobDir = job.jobDir;
    status.telemetryPath = job.telemetryPath;
    status.result = job.result;
    const auto now = Clock::now();
    switch (job.state) {
    case JobState::kQueued:
        status.queueMs = elapsedMs(job.submitted, now);
        break;
    case JobState::kRunning:
        status.queueMs = elapsedMs(job.submitted, job.started);
        status.runMs = elapsedMs(job.started, now);
        break;
    default:
        if (job.started.time_since_epoch().count() != 0) {
            status.queueMs = elapsedMs(job.submitted, job.started);
            status.runMs = elapsedMs(job.started, job.ended);
        } else {
            status.queueMs = elapsedMs(job.submitted, job.ended);
        }
        break;
    }
    return status;
}

JobStatus
SweepService::status(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = records_.find(id);
    if (it == records_.end())
        fatal(ErrorCategory::kConfig,
              "unknown job id " + std::to_string(id));
    return snapshotLocked(*it->second);
}

JobStatus
SweepService::wait(std::uint64_t id)
{
    std::unique_lock<std::mutex> lk(mu_);
    const auto it = records_.find(id);
    if (it == records_.end())
        fatal(ErrorCategory::kConfig,
              "unknown job id " + std::to_string(id));
    JobRecord *job = it->second.get();
    cvDone_.wait(lk, [&] { return isTerminal(job->state); });
    return snapshotLocked(*job);
}

bool
SweepService::cancelJob(std::uint64_t id)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = records_.find(id);
    if (it == records_.end())
        return false;
    JobRecord *job = it->second.get();
    if (isTerminal(job->state))
        return false;
    if (job->state == JobState::kQueued) {
        queue_.erase(std::find(queue_.begin(), queue_.end(), job));
        finalizeJobLocked(*job, JobState::kCancelled,
                          "job cancelled before it started",
                          ErrorCategory::kCancelled);
        return true;
    }
    job->token->cancel();
    return true;
}

ServiceStatus
SweepService::serviceStatus() const
{
    std::lock_guard<std::mutex> lk(mu_);
    ServiceStatus status;
    status.queued = queue_.size();
    status.running = running_;
    status.draining = draining_;
    status.submitted = submitted_;
    status.admitted = admitted_;
    status.rejected = rejected_;
    status.finished = finished_;
    status.failed = failed_;
    status.cancelled = cancelled_;
    status.drained = drained_;
    status.poolWorkers = poolWorkers_;
    status.poolBusy = pool_ != nullptr ? pool_->busyNow() : 0;
    for (const auto &[tenant, counters] : tenants_) {
        TenantStatus slice;
        slice.tenant = tenant;
        slice.admitted = counters.admitted;
        slice.rejected = counters.rejected;
        slice.inFlight = counters.inFlight;
        for (const JobRecord *job : queue_)
            slice.queued += job->spec.tenant == tenant ? 1 : 0;
        status.tenants.push_back(std::move(slice));
    }
    return status;
}

void
SweepService::drain(DrainMode mode)
{
    std::unique_lock<std::mutex> lk(mu_);
    if (drainDone_)
        return;
    if (draining_) {
        // Another thread owns the drain; wait for it to finish.
        cvDone_.wait(lk, [&] { return drainDone_; });
        return;
    }
    draining_ = true;
    drainMode_ = mode;
    if (mode != DrainMode::kWait) {
        serviceToken_.cancel();
        while (!queue_.empty()) {
            JobRecord *job = queue_.front();
            queue_.pop_front();
            finalizeJobLocked(*job, JobState::kCancelled,
                              "service drained before the job "
                              "started",
                              ErrorCategory::kCancelled);
        }
    }
    cvDone_.wait(lk, [&] { return queue_.empty() && running_ == 0; });
    stopSlots_ = true;
    cvWork_.notify_all();
    lk.unlock();
    for (auto &slot : slots_)
        slot.join();
    lk.lock();
    if (options_.telemetry != nullptr) {
        auto &registry = options_.telemetry->registry();
        registry.mergeStats("serve.pool_occupancy",
                            pool_->occupancyStats());
        publishGaugesLocked();
        options_.telemetry->emit(TelemetryEvent(
            events::kServiceDrained,
            {field("mode", toString(mode)),
             field("submitted", submitted_),
             field("admitted", admitted_),
             field("rejected", rejected_),
             field("finished", finished_), field("failed", failed_),
             field("cancelled", cancelled_),
             field("drained", drained_)}));
    }
    drainDone_ = true;
    cvDone_.notify_all();
    lk.unlock();
    if (options_.telemetry != nullptr)
        options_.telemetry->finish();
}

bool
SweepService::drained() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return drainDone_;
}

} // namespace confsim
