/**
 * @file
 * Incremental NDJSON line framing with bounded memory.
 *
 * Every sweep_server transport (stdin, requests file, Unix socket)
 * frames requests as newline-delimited JSON. Framing used to be
 * duplicated per transport with two latent faults: the stream path
 * buffered an unbounded amount of a newline-free input (a memory DoS
 * from one misbehaving client), and the file path read through a
 * fixed fgets buffer that silently split an over-long line into
 * several bogus requests. NdjsonLineReader centralizes the framing:
 * feed() raw chunks in, next() complete lines out, with CRLF line
 * endings normalized and a hard per-line byte cap. An over-long line
 * is consumed to its terminating newline in constant memory and
 * surfaced as a single Line flagged oversize, so the caller can
 * answer with a structured kConfig protocol error instead of
 * crashing, stalling, or misparsing.
 */

#ifndef CONFSIM_SERVE_NDJSON_READER_H
#define CONFSIM_SERVE_NDJSON_READER_H

#include <cstddef>
#include <deque>
#include <string>

namespace confsim {

/** Incremental, bounded splitter of a byte stream into NDJSON lines. */
class NdjsonLineReader
{
  public:
    /** Default per-line cap: far above any legal request, far below
     *  anything that could pressure memory. */
    static constexpr std::size_t kDefaultMaxLineBytes = 1 << 20;

    /** One framed line. */
    struct Line
    {
        /** Line content, '\n' and any trailing '\r' stripped. For an
         *  oversize line this is truncated to the cap (diagnostic
         *  prefix only — never parse it). */
        std::string text;

        /** True when the logical line exceeded the cap. */
        bool oversize = false;

        /** Bytes of the logical line (excluding the terminator),
         *  including bytes dropped past the cap. */
        std::size_t bytes = 0;
    };

    explicit NdjsonLineReader(
        std::size_t max_line_bytes = kDefaultMaxLineBytes);

    /** Consume a raw chunk; complete lines become ready for next(). */
    void feed(const char *data, std::size_t size);

    /**
     * Signal end of input: a trailing line without a newline becomes
     * ready. Feeding after finish() starts a fresh line.
     */
    void finish();

    /**
     * Pop the next ready line. Blank lines (empty after CR stripping)
     * are never surfaced — NDJSON treats them as keep-alive padding.
     *
     * @return false when no complete line is ready.
     */
    bool next(Line &line);

    /** @return the configured per-line cap in bytes. */
    std::size_t maxLineBytes() const { return maxLineBytes_; }

  private:
    void completeLine();

    std::size_t maxLineBytes_;
    std::string partial_;      //!< current line, capped at the limit
    std::size_t partialBytes_ = 0; //!< logical bytes incl. dropped
    std::deque<Line> ready_;
};

} // namespace confsim

#endif // CONFSIM_SERVE_NDJSON_READER_H
