#include "serve/ndjson_reader.h"

#include <cstring>

#include "util/error.h"

namespace confsim {

NdjsonLineReader::NdjsonLineReader(std::size_t max_line_bytes)
    : maxLineBytes_(max_line_bytes)
{
    if (maxLineBytes_ == 0)
        fatal(ErrorCategory::kConfig,
              "NdjsonLineReader needs a nonzero line cap");
}

void
NdjsonLineReader::feed(const char *data, std::size_t size)
{
    std::size_t start = 0;
    while (start < size) {
        const void *eol =
            std::memchr(data + start, '\n', size - start);
        const std::size_t stop =
            eol == nullptr
                ? size
                : static_cast<std::size_t>(
                      static_cast<const char *>(eol) - data);
        const std::size_t span = stop - start;
        // Append only up to the cap; the remainder of an oversize
        // line is counted but dropped, keeping memory constant while
        // the stream is consumed to its terminating newline.
        if (partial_.size() < maxLineBytes_) {
            partial_.append(data + start,
                            std::min(span,
                                     maxLineBytes_ - partial_.size()));
        }
        partialBytes_ += span;
        start = stop;
        if (eol != nullptr) {
            completeLine();
            ++start; // past the '\n'
        }
    }
}

void
NdjsonLineReader::finish()
{
    if (partialBytes_ > 0)
        completeLine();
}

void
NdjsonLineReader::completeLine()
{
    Line line;
    line.bytes = partialBytes_;
    line.oversize = partialBytes_ > maxLineBytes_;
    line.text = std::move(partial_);
    partial_.clear();
    partialBytes_ = 0;
    if (!line.oversize && !line.text.empty() &&
        line.text.back() == '\r') {
        line.text.pop_back();
        --line.bytes;
    }
    if (line.text.empty() && !line.oversize)
        return; // blank keep-alive line
    ready_.push_back(std::move(line));
}

bool
NdjsonLineReader::next(Line &line)
{
    if (ready_.empty())
        return false;
    line = std::move(ready_.front());
    ready_.pop_front();
    return true;
}

} // namespace confsim
