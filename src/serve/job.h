/**
 * @file
 * The unit of work the sweep service schedules: one tenant's sweep job
 * — a benchmark selection, a configuration grid, driver knobs, and a
 * fault-tolerance policy — plus the status record the service exposes
 * for it.
 *
 * Isolation contract: everything mutable a job touches is private to
 * it. The service derives a per-job directory (checkpoints + telemetry
 * JSONL), a per-job CancellationToken chained under the service token,
 * and a per-job Telemetry context, so one tenant's fault — corrupt
 * trace, watchdog expiry, ENOSPC in its checkpoint dir — can never
 * contaminate another tenant's results or the service's own stream.
 */

#ifndef CONFSIM_SERVE_JOB_H
#define CONFSIM_SERVE_JOB_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/driver.h"
#include "sim/run_policy.h"
#include "sim/suite_runner.h"
#include "sim/sweep_engine.h"
#include "util/error.h"

namespace confsim {

/** Lifecycle of one submitted job. */
enum class JobState : std::uint8_t
{
    kQueued = 0, //!< admitted, waiting for a slot
    kRunning,    //!< executing on a job slot
    kFinished,   //!< completed; result available
    kFailed,     //!< terminal error (JobStatus::error says why)
    kCancelled,  //!< cancelled (explicit cancel or cancel-drain)
    kDrained,    //!< cancelled by a checkpoint-drain with resumable
                 //!< checkpoint generations left on disk
};

/** Stable lowercase name for telemetry fields and protocol replies. */
inline const char *
toString(JobState state)
{
    switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kFinished: return "finished";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kDrained: return "drained";
    }
    return "failed";
}

/** @return true when @p state is a terminal state. */
inline bool
isTerminal(JobState state)
{
    return state != JobState::kQueued && state != JobState::kRunning;
}

/**
 * Everything a client submits for one sweep job. The service fills in
 * the pieces that enforce isolation (checkpoint directory, telemetry
 * sink, cancellation token, shared worker pool); the corresponding
 * fields here are requests, not wiring.
 */
struct JobSpec
{
    /** Tenant this job bills to (fairness + in-flight caps). */
    std::string tenant = "default";

    /**
     * Job label: names the per-job directory, so it must be stable
     * across submissions for checkpoint resume to find prior
     * generations. "" = "job-<id>".
     */
    std::string label;

    /** IBS benchmark names (BenchmarkSuite::ibsSubset); empty = the
     *  reduced ibsSmall suite. */
    std::vector<std::string> benchmarks;

    /** Trace length per benchmark. */
    std::uint64_t branches = 200'000;

    /** The configuration grid to sweep (>= 1 entries). */
    std::vector<SweepConfiguration> configs;

    /** Simulation knobs. `telemetry` and `cancel` are overwritten by
     *  the service (per-job sink, per-job token). */
    DriverOptions driver;

    /** Sweep tuning knobs. `pool` is overwritten with the service's
     *  shared worker pool; `threads` is therefore ignored. */
    SweepOptions sweep;

    /**
     * Fault-tolerance policy. `cancel` is overwritten with the per-job
     * token and `checkpoint` with the per-job checkpoint policy built
     * from the three fields below — per-job fault domains require the
     * service to own the directory layout.
     */
    RunPolicy policy;

    /** Write sweep checkpoints (requires the service's jobDir). */
    bool checkpoint = false;

    /** Branches between mid-run checkpoints (when `checkpoint`). */
    std::uint64_t checkpointEvery = 250'000;

    /** Resume from this job's prior checkpoint generations. */
    bool resume = false;

    /**
     * Optional per-benchmark trace-source decorator
     * (SuiteRunner::setSourceWrapper). This is the deterministic
     * per-job fault-injection hook: unlike the process-wide
     * FaultInjector, a wrapper scoped to one job's sources cannot leak
     * faults into a concurrent tenant's streams.
     */
    SourceWrapper wrapSource;
};

/** Point-in-time snapshot of one job, as the service reports it. */
struct JobStatus
{
    std::uint64_t id = 0;
    std::string tenant;
    std::string label;
    JobState state = JobState::kQueued;

    /** Failure message (kFailed/kCancelled/kDrained); "" otherwise. */
    std::string error;

    /** Taxonomy category of `error` (meaningful when error != ""). */
    ErrorCategory errorCategory = ErrorCategory::kInternal;

    /** True when resumable checkpoint generations exist on disk. */
    bool checkpointed = false;

    double queueMs = 0.0; //!< admission -> start (or terminal) wait
    double runMs = 0.0;   //!< start -> terminal wall time

    /** This job's private directory ("" when the service has none). */
    std::string jobDir;

    /** This job's telemetry JSONL path ("" when none). */
    std::string telemetryPath;

    /** Full sweep result (null unless kFinished). Shared so status
     *  snapshots stay cheap; the result object is immutable. */
    std::shared_ptr<const SweepSuiteResult> result;
};

} // namespace confsim

#endif // CONFSIM_SERVE_JOB_H
