/**
 * @file
 * The sweep server's NDJSON job protocol: one JSON object per line in,
 * one JSON object per line out.
 *
 * Requests ({"op": ...}):
 *
 *   {"op":"submit","tenant":"t","label":"j1",
 *    "benchmarks":["gcc","groff"],"branches":100000,
 *    "configs":["ones","saturating"],"predictor":"gshare-small",
 *    "error_mode":"continue","max_attempts":2,"watchdog_ms":0,
 *    "checkpoint":true,"checkpoint_every":50000,"resume":false}
 *   {"op":"status"}            — service counters
 *   {"op":"status","id":1}     — one job
 *   {"op":"wait","id":1}       — block until the job settles
 *   {"op":"cancel","id":1}
 *   {"op":"drain","mode":"wait"|"cancel"|"checkpoint"}
 *   {"op":"quit"}              — drain (per --drain-mode) and exit
 *
 * Responses always carry "ok" and echo "op"; failures carry "error"
 * and the taxonomy "category" so a client can distinguish shed load
 * (resource) from bad requests (config) from drain (cancelled).
 *
 * The estimator grid is named, not structural: "configs" entries pick
 * from a fixed registry of paper-canonical configurations (see
 * knownConfigNames()), which keeps the wire format free of factory
 * closures and makes every submitted grid reproducible from its name.
 *
 * The parser is a strict, minimal recursive-descent JSON reader
 * (obs/json.h only writes JSON); malformed input raises
 * Error{kConfig} and never tears the server down.
 */

#ifndef CONFSIM_SERVE_JOB_PROTOCOL_H
#define CONFSIM_SERVE_JOB_PROTOCOL_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/job.h"
#include "serve/sweep_service.h"

namespace confsim {

/** A parsed JSON value (strict subset of RFC 8259, UTF-8). */
struct JsonValue
{
    enum class Kind : std::uint8_t
    {
        kNull = 0,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string text; //!< kString payload
    std::vector<JsonValue> items; //!< kArray payload
    std::vector<std::pair<std::string, JsonValue>>
        members; //!< kObject payload, in input order

    /** @return the member named @p key, or null (kObject only). */
    const JsonValue *find(const std::string &key) const;

    /** Typed accessors with defaults; throw Error{kConfig} when the
     *  value is present but of the wrong kind. */
    std::string asString(const std::string &what) const;
    double asNumber(const std::string &what) const;
    std::uint64_t asUnsigned(const std::string &what) const;
    bool asBool(const std::string &what) const;
};

/**
 * Parse exactly one JSON document from @p text (surrounding
 * whitespace allowed, trailing garbage rejected).
 * @throws Error{kConfig} on malformed input.
 */
JsonValue parseJson(const std::string &text);

/** The registry of named sweep configurations. */
std::vector<std::string> knownConfigNames();

/**
 * Build the registry configuration named @p name over the predictor
 * named @p predictor (any knownPredictorNames() entry:
 * "gshare-large", "gshare-small", "tage", "perceptron"). An empty
 * @p predictor defaults to the config's natural pairing — "tage" for
 * "tage-provider", "perceptron" for "perceptron-margin",
 * "gshare-large" otherwise.
 * @throws Error{kConfig} on an unknown name.
 */
SweepConfiguration
makeNamedConfiguration(const std::string &name,
                       const std::string &predictor);

/** One decoded protocol request. */
struct ProtocolRequest
{
    enum class Op : std::uint8_t
    {
        kSubmit = 0,
        kStatus,
        kWait,
        kCancel,
        kDrain,
        kQuit,
    };

    Op op = Op::kStatus;
    std::string opName;    //!< raw "op" string (echoed in replies)
    JobSpec spec;          //!< kSubmit only
    bool hasId = false;    //!< kStatus with "id" / kWait / kCancel
    std::uint64_t id = 0;
    DrainMode drainMode = DrainMode::kWait; //!< kDrain only
};

/**
 * Decode one request line.
 * @throws Error{kConfig} on malformed JSON, an unknown op, a missing
 *         required field, or an unknown config/predictor name.
 */
ProtocolRequest parseProtocolRequest(const std::string &line);

/** {"ok":false,...} carrying the error text and taxonomy category. */
std::string protocolError(const std::string &op,
                          const std::string &message,
                          ErrorCategory category);

/** {"ok":true,"op":"submit","id":N} */
std::string protocolSubmitOk(std::uint64_t id);

/** {"ok":true,"op":<op>,...} for one job's status snapshot. */
std::string protocolJobStatus(const std::string &op,
                              const JobStatus &status);

/** {"ok":true,"op":"status",...} for the service counters. */
std::string protocolServiceStatus(const ServiceStatus &status);

/** {"ok":true,"op":<op>} */
std::string protocolOk(const std::string &op);

} // namespace confsim

#endif // CONFSIM_SERVE_JOB_PROTOCOL_H
