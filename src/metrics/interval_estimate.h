/**
 * @file
 * Point estimates with error bars from repeated subsampling.
 *
 * The sampling engine (sim/sampling_engine.h) partitions its sampled
 * regions into R subsample groups; each group yields an independent
 * estimate of the same population quantity (misprediction rate,
 * coverage at the operating point, PVN). The spread between those R
 * estimates measures the sampling error directly — no per-stratum
 * variance bookkeeping — which is the "repeated subsampling" recipe
 * from the NVIDIA ranked-set-sampling paper (PAPERS.md): report the
 * subsample mean, the standard error s/sqrt(R), and a 95% confidence
 * interval mean +/- t_{0.975,R-1} * SE using Student's t with R-1
 * degrees of freedom (the t quantile matters: R is typically 3-10,
 * far from the normal regime).
 */

#ifndef CONFSIM_METRICS_INTERVAL_ESTIMATE_H
#define CONFSIM_METRICS_INTERVAL_ESTIMATE_H

#include <cstddef>
#include <vector>

namespace confsim {

/** A point estimate with repeated-subsampling error bars. */
struct IntervalEstimate
{
    double mean = 0.0;     //!< subsample mean (the point estimate)
    double stdError = 0.0; //!< s / sqrt(R), 0 when R < 2
    double ciHalf = 0.0;   //!< 95% CI half-width, 0 when R < 2
    std::size_t subsamples = 0; //!< R

    double ciLow() const { return mean - ciHalf; }
    double ciHigh() const { return mean + ciHalf; }

    /** @return true iff @p value lies inside the 95% CI. */
    bool
    contains(double value) const
    {
        return value >= ciLow() && value <= ciHigh();
    }
};

/**
 * Two-sided 95% Student-t critical value t_{0.975,dof}. Exact table
 * for dof 1..30, the normal quantile 1.96 beyond (within 2% of the
 * true value from dof 31 on). fatal(kConfig) for dof 0.
 */
double studentT95(std::size_t dof);

/**
 * Build the estimate from one value per subsample: mean, standard
 * error of the mean (unbiased sample stddev over sqrt(R)), and the
 * t-based 95% half-width. An empty input is fatal(kConfig); a single
 * value yields zero error bars (no variance information — callers
 * wanting a CI must run >= 2 subsamples).
 */
IntervalEstimate
estimateFromSubsamples(const std::vector<double> &values);

} // namespace confsim

#endif // CONFSIM_METRICS_INTERVAL_ESTIMATE_H
