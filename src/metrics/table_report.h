/**
 * @file
 * Table-1-style reports: per-counter-value statistics for ordered
 * (counter) confidence estimators.
 *
 * The paper's Table 1 lists, for each resetting-counter value 0..16:
 * the misprediction rate at that value, the percentage of references
 * and of mispredictions occurring at it, and the cumulative percentages
 * from the top of the table (counter value 0 first — the natural
 * low-confidence-first order for a resetting counter).
 */

#ifndef CONFSIM_METRICS_TABLE_REPORT_H
#define CONFSIM_METRICS_TABLE_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/bucket_stats.h"

namespace confsim {

/** One row of a counter-value statistics table. */
struct CounterTableRow
{
    std::uint64_t counterValue = 0;
    double mispredictRate = 0.0;   //!< rate at this counter value
    double refPercent = 0.0;       //!< % of all references
    double mispredictPercent = 0.0; //!< % of all mispredictions
    double cumRefPercent = 0.0;     //!< cumulative % of references
    double cumMispredictPercent = 0.0; //!< cumulative % mispredictions
};

/**
 * Build the rows in ascending counter-value order (value 0 = most
 * recent misprediction = least confident first), with cumulative
 * columns accumulated down the table exactly as in Table 1.
 */
std::vector<CounterTableRow>
buildCounterTable(const BucketStats &stats);

/** Render rows in the paper's column layout to a printable string. */
std::string renderCounterTable(const std::vector<CounterTableRow> &rows);

} // namespace confsim

#endif // CONFSIM_METRICS_TABLE_REPORT_H
