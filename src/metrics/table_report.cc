#include "metrics/table_report.h"

#include "util/string_utils.h"

namespace confsim {

std::vector<CounterTableRow>
buildCounterTable(const BucketStats &stats)
{
    const double total_refs = stats.totalRefs();
    const double total_mispredicts = stats.totalMispredicts();

    std::vector<CounterTableRow> rows;
    double cum_refs = 0.0;
    double cum_mispredicts = 0.0;
    for (std::uint64_t value = 0; value < stats.numBuckets(); ++value) {
        const BucketCounts &counts = stats[value];
        cum_refs += counts.refs;
        cum_mispredicts += counts.mispredicts;

        CounterTableRow row;
        row.counterValue = value;
        row.mispredictRate = counts.rate();
        row.refPercent =
            total_refs > 0.0 ? 100.0 * counts.refs / total_refs : 0.0;
        row.mispredictPercent =
            total_mispredicts > 0.0
                ? 100.0 * counts.mispredicts / total_mispredicts
                : 0.0;
        row.cumRefPercent =
            total_refs > 0.0 ? 100.0 * cum_refs / total_refs : 0.0;
        row.cumMispredictPercent =
            total_mispredicts > 0.0
                ? 100.0 * cum_mispredicts / total_mispredicts
                : 0.0;
        rows.push_back(row);
    }
    return rows;
}

std::string
renderCounterTable(const std::vector<CounterTableRow> &rows)
{
    std::string out;
    out += padLeft("Count", 6) + padLeft("Mispred.", 10) +
           padLeft("% Refs.", 10) + padLeft("% Mispreds.", 13) +
           padLeft("Cum.% Refs.", 13) + padLeft("Cum.% Mispreds.", 17) +
           "\n";
    for (const auto &row : rows) {
        out += padLeft(std::to_string(row.counterValue), 6);
        out += padLeft(formatFixed(row.mispredictRate, 4), 10);
        out += padLeft(formatFixed(row.refPercent, 2), 10);
        out += padLeft(formatFixed(row.mispredictPercent, 2), 13);
        out += padLeft(formatFixed(row.cumRefPercent, 1), 13);
        out += padLeft(formatFixed(row.cumMispredictPercent, 1), 17);
        out += "\n";
    }
    return out;
}

} // namespace confsim
