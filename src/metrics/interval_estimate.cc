#include "metrics/interval_estimate.h"

#include <cmath>

#include "util/error.h"

namespace confsim {

double
studentT95(std::size_t dof)
{
    // Two-sided 95% critical values t_{0.975,dof}, dof 1..30.
    static constexpr double kTable[30] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    if (dof == 0) {
        fatal(ErrorCategory::kConfig,
              "Student-t needs at least one degree of freedom");
    }
    return dof <= 30 ? kTable[dof - 1] : 1.96;
}

IntervalEstimate
estimateFromSubsamples(const std::vector<double> &values)
{
    if (values.empty()) {
        fatal(ErrorCategory::kConfig,
              "an interval estimate needs at least one subsample");
    }
    IntervalEstimate est;
    est.subsamples = values.size();

    double sum = 0.0;
    for (const double v : values)
        sum += v;
    est.mean = sum / static_cast<double>(values.size());

    if (values.size() < 2)
        return est; // no variance information: zero error bars

    double ss = 0.0;
    for (const double v : values) {
        const double d = v - est.mean;
        ss += d * d;
    }
    const double n = static_cast<double>(values.size());
    const double variance = ss / (n - 1.0); // unbiased
    est.stdError = std::sqrt(variance / n);
    est.ciHalf = studentT95(values.size() - 1) * est.stdError;
    return est;
}

} // namespace confsim
