#include "metrics/classification_metrics.h"

namespace confsim {

ClassificationMetrics
computeMetrics(const ConfusionCounts &counts)
{
    ClassificationMetrics out;
    const double total = counts.total();
    const double low = counts.lowMispredicted + counts.lowCorrect;
    const double high = counts.highMispredicted + counts.highCorrect;
    const double mispredicted =
        counts.lowMispredicted + counts.highMispredicted;
    const double correct = counts.lowCorrect + counts.highCorrect;

    out.lowFraction = total > 0.0 ? low / total : 0.0;
    out.sensitivity =
        mispredicted > 0.0 ? counts.lowMispredicted / mispredicted : 0.0;
    out.specificity = correct > 0.0 ? counts.highCorrect / correct : 0.0;
    out.pvn = low > 0.0 ? counts.lowMispredicted / low : 0.0;
    out.pvp = high > 0.0 ? counts.highCorrect / high : 0.0;
    return out;
}

ConfusionCounts
confusionFromBuckets(const std::vector<KeyedBucketCounts> &counts,
                     const std::vector<bool> &low_mask)
{
    ConfusionCounts out;
    for (const auto &entry : counts) {
        const bool low = entry.bucket < low_mask.size() &&
                         low_mask[entry.bucket];
        const double correct =
            entry.counts.refs - entry.counts.mispredicts;
        if (low) {
            out.lowMispredicted += entry.counts.mispredicts;
            out.lowCorrect += correct;
        } else {
            out.highMispredicted += entry.counts.mispredicts;
            out.highCorrect += correct;
        }
    }
    return out;
}

} // namespace confsim
