#include "metrics/bucket_stats.h"

#include "ckpt/state_helpers.h"

#include "util/status.h"

namespace confsim {

BucketStats::BucketStats(std::uint64_t num_buckets)
    : counts_(num_buckets)
{
    if (num_buckets == 0)
        fatal("BucketStats requires at least one bucket");
}

void
BucketStats::addWeighted(const BucketStats &other, double weight)
{
    if (other.counts_.size() != counts_.size())
        fatal("cannot merge BucketStats with different bucket spaces");
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        counts_[b].refs += other.counts_[b].refs * weight;
        counts_[b].mispredicts += other.counts_[b].mispredicts * weight;
    }
}

double
BucketStats::totalRefs() const
{
    double total = 0.0;
    for (const auto &entry : counts_)
        total += entry.refs;
    return total;
}

double
BucketStats::totalMispredicts() const
{
    double total = 0.0;
    for (const auto &entry : counts_)
        total += entry.mispredicts;
    return total;
}

std::vector<KeyedBucketCounts>
BucketStats::nonEmpty() const
{
    std::vector<KeyedBucketCounts> out;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        if (counts_[b].refs > 0.0)
            out.push_back({b, counts_[b]});
    }
    return out;
}

void
BucketStats::clear()
{
    for (auto &entry : counts_)
        entry = BucketCounts{};
}

void
SparseBucketStats::addWeighted(const SparseBucketStats &other,
                               double weight)
{
    for (const auto &[bucket, entry] : other.counts_) {
        auto &mine = counts_[bucket];
        mine.refs += entry.refs * weight;
        mine.mispredicts += entry.mispredicts * weight;
    }
}

double
SparseBucketStats::totalRefs() const
{
    double total = 0.0;
    for (const auto &[bucket, entry] : counts_)
        total += entry.refs;
    return total;
}

double
SparseBucketStats::totalMispredicts() const
{
    double total = 0.0;
    for (const auto &[bucket, entry] : counts_)
        total += entry.mispredicts;
    return total;
}

std::vector<KeyedBucketCounts>
SparseBucketStats::nonEmpty() const
{
    std::vector<KeyedBucketCounts> out;
    out.reserve(counts_.size());
    for (const auto &[bucket, entry] : counts_)
        out.push_back({bucket, entry});
    return out;
}

EqualWeightComposite::EqualWeightComposite(std::uint64_t num_buckets)
    : composite_(num_buckets)
{}

void
EqualWeightComposite::add(const BucketStats &benchmark_stats)
{
    const double refs = benchmark_stats.totalRefs();
    if (refs <= 0.0)
        fatal("cannot composite a benchmark with zero references");
    // Scale every component to the same total dynamic-branch mass.
    constexpr double kCommonMass = 1e6;
    composite_.addWeighted(benchmark_stats, kCommonMass / refs);
}


void
BucketStats::saveState(StateWriter &out) const
{
    out.putU64(counts_.size());
    std::uint64_t non_empty = 0;
    for (const auto &entry : counts_)
        if (entry.refs != 0.0 || entry.mispredicts != 0.0)
            ++non_empty;
    out.putU64(non_empty);
    for (std::uint64_t bucket = 0; bucket < counts_.size(); ++bucket) {
        const BucketCounts &entry = counts_[bucket];
        if (entry.refs == 0.0 && entry.mispredicts == 0.0)
            continue;
        out.putU64(bucket);
        out.putF64(entry.refs);
        out.putF64(entry.mispredicts);
    }
}

void
BucketStats::loadState(StateReader &in)
{
    in.expectU64(counts_.size(), "bucket-space size");
    counts_.assign(counts_.size(), BucketCounts{});
    const std::uint64_t non_empty = in.getU64();
    for (std::uint64_t i = 0; i < non_empty; ++i) {
        const std::uint64_t bucket = in.getU64();
        if (bucket >= counts_.size())
            fatal("bucket id out of range in checkpoint");
        counts_[bucket].refs = in.getF64();
        counts_[bucket].mispredicts = in.getF64();
    }
}

void
SparseBucketStats::saveState(StateWriter &out) const
{
    saveSortedMap(out, counts_,
                  [](StateWriter &w, const BucketCounts &entry) {
                      w.putF64(entry.refs);
                      w.putF64(entry.mispredicts);
                  });
}

void
SparseBucketStats::loadState(StateReader &in)
{
    loadMap(in, counts_, [](StateReader &r) {
        BucketCounts entry;
        entry.refs = r.getF64();
        entry.mispredicts = r.getF64();
        return entry;
    });
}

} // namespace confsim
