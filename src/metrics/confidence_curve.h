/**
 * @file
 * The paper's evaluation curve: cumulative percent of mispredictions
 * (Y) versus cumulative percent of dynamic branches (X), accumulated
 * down the list of buckets sorted by misprediction rate, highest first
 * (Sections 2 and 4).
 *
 * Each point corresponds to one bucket and defines a candidate
 * high/low-confidence partition: everything at or above the point's
 * bucket in the sorted order is the low-confidence set. "The steeper
 * the initial slope and the farther to the left the knee occurs, the
 * better."
 */

#ifndef CONFSIM_METRICS_CONFIDENCE_CURVE_H
#define CONFSIM_METRICS_CONFIDENCE_CURVE_H

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/state_io.h"
#include "metrics/bucket_stats.h"

namespace confsim {

/** One point of the cumulative curve (one bucket of the sorted list). */
struct CurvePoint
{
    std::uint64_t bucket = 0;   //!< bucket id this point corresponds to
    double bucketRate = 0.0;    //!< the bucket's own misprediction rate
    double refFraction = 0.0;   //!< cumulative refs fraction (X), 0..1
    double mispredFraction = 0.0; //!< cumulative mispred fraction (Y)
};

/** Sorted cumulative misprediction-coverage curve. */
class ConfidenceCurve
{
  public:
    /**
     * Build the curve from per-bucket counts: sort by bucket
     * misprediction rate descending (ties broken by bucket id for
     * determinism), then accumulate. Zero-ref buckets are dropped.
     */
    static ConfidenceCurve
    fromCounts(std::vector<KeyedBucketCounts> counts);

    /** Convenience: build from a dense accumulator. */
    static ConfidenceCurve fromBucketStats(const BucketStats &stats);

    /** Convenience: build from a sparse accumulator. */
    static ConfidenceCurve
    fromSparseStats(const SparseBucketStats &stats);

    /** @return curve points in sorted accumulation order. */
    const std::vector<CurvePoint> &points() const { return points_; }

    /**
     * Fraction of mispredictions covered by a low-confidence set
     * containing @p ref_fraction of dynamic branches, linearly
     * interpolated between curve points (the paper reads off values
     * such as "20 percent of the branches concentrate 89 percent of
     * the mispredictions" this way).
     */
    double mispredCoverageAt(double ref_fraction) const;

    /**
     * The smallest ref fraction whose low-confidence set covers at
     * least @p mispred_fraction of mispredictions (inverse reading).
     * @return 1.0 if the coverage is never reached; 0.0 on an empty
     *         curve (symmetric with mispredCoverageAt).
     */
    double refFractionForCoverage(double mispred_fraction) const;

    /**
     * Buckets forming the low-confidence set at the given operating
     * point: the sorted prefix needed to reach @p ref_fraction of
     * references. This is the idealized "reduction function" of
     * Section 4 (the returned buckets are its minterms).
     */
    std::vector<std::uint64_t>
    lowBucketsForRefFraction(double ref_fraction) const;

    /**
     * Same set as a dense mask sized @p num_buckets, ready for
     * BinaryConfidenceSignal.
     */
    std::vector<bool>
    lowBucketMaskForRefFraction(double ref_fraction,
                                std::uint64_t num_buckets) const;

    /**
     * Area under the coverage curve in [0, 1]^2 (trapezoidal). A single
     * scalar for regression-style comparisons: higher is better; 0.5 is
     * the no-information diagonal.
     */
    double areaUnderCurve() const;

    /** Thin the curve for plotting: keep points whose X or Y moved by
     *  at least @p min_delta (the paper plots points differing by
     *  2.5%). Endpoints are always kept. */
    std::vector<CurvePoint> thinnedPoints(double min_delta) const;

    /** @return total reference mass the curve was built from. */
    double totalRefs() const { return totalRefs_; }

    /** @return total misprediction mass. */
    double totalMispredicts() const { return totalMispredicts_; }

    /** Checkpoint the curve (points + totals, bit-exact doubles). */
    void saveState(StateWriter &out) const;

    /** Restore a saveState() snapshot, replacing this curve. */
    void loadState(StateReader &in);

  private:
    std::vector<CurvePoint> points_;
    double totalRefs_ = 0.0;
    double totalMispredicts_ = 0.0;
};

} // namespace confsim

#endif // CONFSIM_METRICS_CONFIDENCE_CURVE_H
