#include "metrics/confidence_curve.h"

#include "ckpt/state_io.h"

#include <algorithm>

#include "util/status.h"

namespace confsim {

ConfidenceCurve
ConfidenceCurve::fromCounts(std::vector<KeyedBucketCounts> counts)
{
    // Drop unreferenced buckets, then sort by rate descending.
    std::erase_if(counts, [](const KeyedBucketCounts &entry) {
        return entry.counts.refs <= 0.0;
    });
    std::sort(counts.begin(), counts.end(),
              [](const KeyedBucketCounts &a, const KeyedBucketCounts &b) {
                  const double ra = a.counts.rate();
                  const double rb = b.counts.rate();
                  if (ra != rb)
                      return ra > rb;
                  return a.bucket < b.bucket;
              });

    ConfidenceCurve curve;
    for (const auto &entry : counts) {
        curve.totalRefs_ += entry.counts.refs;
        curve.totalMispredicts_ += entry.counts.mispredicts;
    }

    double refs_so_far = 0.0;
    double mispredicts_so_far = 0.0;
    curve.points_.reserve(counts.size());
    for (const auto &entry : counts) {
        refs_so_far += entry.counts.refs;
        mispredicts_so_far += entry.counts.mispredicts;
        CurvePoint point;
        point.bucket = entry.bucket;
        point.bucketRate = entry.counts.rate();
        point.refFraction =
            curve.totalRefs_ > 0.0 ? refs_so_far / curve.totalRefs_
                                   : 0.0;
        point.mispredFraction =
            curve.totalMispredicts_ > 0.0
                ? mispredicts_so_far / curve.totalMispredicts_
                : 0.0;
        curve.points_.push_back(point);
    }
    return curve;
}

ConfidenceCurve
ConfidenceCurve::fromBucketStats(const BucketStats &stats)
{
    return fromCounts(stats.nonEmpty());
}

ConfidenceCurve
ConfidenceCurve::fromSparseStats(const SparseBucketStats &stats)
{
    return fromCounts(stats.nonEmpty());
}

double
ConfidenceCurve::mispredCoverageAt(double ref_fraction) const
{
    if (points_.empty())
        return 0.0;
    if (ref_fraction <= 0.0)
        return 0.0;

    // Piecewise-linear through (0,0) and each point.
    double prev_x = 0.0;
    double prev_y = 0.0;
    for (const auto &point : points_) {
        if (ref_fraction <= point.refFraction) {
            const double span = point.refFraction - prev_x;
            if (span <= 0.0)
                return point.mispredFraction;
            const double t = (ref_fraction - prev_x) / span;
            return prev_y + t * (point.mispredFraction - prev_y);
        }
        prev_x = point.refFraction;
        prev_y = point.mispredFraction;
    }
    return points_.back().mispredFraction;
}

double
ConfidenceCurve::refFractionForCoverage(double mispred_fraction) const
{
    // Mirror mispredCoverageAt: an empty curve recorded nothing, so
    // no branch fraction is needed for any coverage target (reading
    // in either direction returns 0 on empty), and coverage targets
    // at or below zero are met by the empty low set — symmetric with
    // mispredCoverageAt clamping ref_fraction <= 0 to coverage 0
    // instead of extrapolating below the origin.
    if (points_.empty() || mispred_fraction <= 0.0)
        return 0.0;

    double prev_x = 0.0;
    double prev_y = 0.0;
    for (const auto &point : points_) {
        if (mispred_fraction <= point.mispredFraction) {
            const double span = point.mispredFraction - prev_y;
            // A plateau (run of zero-mispredict buckets) is flat in Y:
            // the target was already reached at the previous point, so
            // the smallest sufficient branch fraction is prev_x — not
            // this point's refFraction, which would overshoot by the
            // width of the plateau.
            if (span <= 0.0)
                return prev_x;
            const double t = (mispred_fraction - prev_y) / span;
            return prev_x + t * (point.refFraction - prev_x);
        }
        prev_x = point.refFraction;
        prev_y = point.mispredFraction;
    }
    return 1.0;
}

std::vector<std::uint64_t>
ConfidenceCurve::lowBucketsForRefFraction(double ref_fraction) const
{
    std::vector<std::uint64_t> low;
    double prev_ref = 0.0;
    for (const auto &point : points_) {
        if (prev_ref >= ref_fraction)
            break;
        low.push_back(point.bucket);
        prev_ref = point.refFraction;
    }
    return low;
}

std::vector<bool>
ConfidenceCurve::lowBucketMaskForRefFraction(
    double ref_fraction, std::uint64_t num_buckets) const
{
    std::vector<bool> mask(num_buckets, false);
    for (std::uint64_t bucket : lowBucketsForRefFraction(ref_fraction)) {
        if (bucket >= num_buckets)
            fatal("curve bucket id exceeds estimator bucket space");
        mask[bucket] = true;
    }
    return mask;
}

double
ConfidenceCurve::areaUnderCurve() const
{
    double area = 0.0;
    double prev_x = 0.0;
    double prev_y = 0.0;
    for (const auto &point : points_) {
        area += (point.refFraction - prev_x) *
                (point.mispredFraction + prev_y) / 2.0;
        prev_x = point.refFraction;
        prev_y = point.mispredFraction;
    }
    // Close the polygon to (1, 1): the remaining branches contribute the
    // remaining mispredictions linearly.
    area += (1.0 - prev_x) * (1.0 + prev_y) / 2.0;
    return area;
}

std::vector<CurvePoint>
ConfidenceCurve::thinnedPoints(double min_delta) const
{
    std::vector<CurvePoint> out;
    double last_x = -1.0;
    double last_y = -1.0;
    for (std::size_t i = 0; i < points_.size(); ++i) {
        const auto &point = points_[i];
        const bool endpoint = (i == 0 || i + 1 == points_.size());
        if (endpoint || point.refFraction - last_x >= min_delta ||
            point.mispredFraction - last_y >= min_delta) {
            out.push_back(point);
            last_x = point.refFraction;
            last_y = point.mispredFraction;
        }
    }
    return out;
}


void
ConfidenceCurve::saveState(StateWriter &out) const
{
    out.putU64(points_.size());
    for (const CurvePoint &point : points_) {
        out.putU64(point.bucket);
        out.putF64(point.bucketRate);
        out.putF64(point.refFraction);
        out.putF64(point.mispredFraction);
    }
    out.putF64(totalRefs_);
    out.putF64(totalMispredicts_);
}

void
ConfidenceCurve::loadState(StateReader &in)
{
    points_.assign(in.getU64(), CurvePoint{});
    for (CurvePoint &point : points_) {
        point.bucket = in.getU64();
        point.bucketRate = in.getF64();
        point.refFraction = in.getF64();
        point.mispredFraction = in.getF64();
    }
    totalRefs_ = in.getF64();
    totalMispredicts_ = in.getF64();
}

} // namespace confsim
