/**
 * @file
 * Per-bucket prediction statistics.
 *
 * The paper's entire evaluation methodology reduces to: for every bucket
 * a confidence mechanism can emit (CIR pattern, counter value, static
 * branch), count how often the bucket was read and how many of those
 * predictions were wrong; then sort buckets by misprediction rate. This
 * file provides the accumulators, including the equal-dynamic-branch
 * weighting used to composite benchmarks (Section 1.2: results are
 * averaged "so that each benchmark, in effect, executes the same number
 * of conditional branches").
 *
 * Counts are stored as doubles so weighted composites reuse the same
 * types; raw per-benchmark recording uses exact integer increments.
 */

#ifndef CONFSIM_METRICS_BUCKET_STATS_H
#define CONFSIM_METRICS_BUCKET_STATS_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ckpt/state_io.h"

namespace confsim {

/** References and mispredictions attributed to one bucket. */
struct BucketCounts
{
    double refs = 0.0;
    double mispredicts = 0.0;

    /** @return misprediction rate (0 for an unreferenced bucket). */
    double
    rate() const
    {
        return refs <= 0.0 ? 0.0 : mispredicts / refs;
    }
};

/** A (bucket id, counts) pair; the unit curve construction consumes. */
struct KeyedBucketCounts
{
    std::uint64_t bucket = 0;
    BucketCounts counts;
};

/** Dense accumulator for estimators with a bounded bucket space. */
class BucketStats
{
  public:
    /** @param num_buckets One past the largest bucket id. */
    explicit BucketStats(std::uint64_t num_buckets);

    /** Record one prediction in @p bucket. */
    void
    record(std::uint64_t bucket, bool mispredicted)
    {
        auto &entry = counts_[bucket];
        entry.refs += 1.0;
        if (mispredicted)
            entry.mispredicts += 1.0;
    }

    /** Merge @p other scaled by @p weight (for compositing). */
    void addWeighted(const BucketStats &other, double weight);

    /** @return counts of bucket @p bucket. */
    const BucketCounts &operator[](std::uint64_t bucket) const
    {
        return counts_[bucket];
    }

    /** @return bucket-space size. */
    std::uint64_t numBuckets() const { return counts_.size(); }

    /** @return sum of refs over all buckets. */
    double totalRefs() const;

    /** @return sum of mispredictions over all buckets. */
    double totalMispredicts() const;

    /** @return overall misprediction rate. */
    double
    overallRate() const
    {
        const double refs = totalRefs();
        return refs <= 0.0 ? 0.0 : totalMispredicts() / refs;
    }

    /** @return all non-empty buckets with their ids. */
    std::vector<KeyedBucketCounts> nonEmpty() const;

    /** Zero all counts. */
    void clear();

    /**
     * Checkpoint the accumulated counts. Sparse encoding (only
     * non-empty buckets) with the bucket-space size as a guard;
     * doubles travel as bit patterns so restores are bit-exact.
     */
    void saveState(StateWriter &out) const;

    /** Restore a saveState() snapshot into a same-sized stats. */
    void loadState(StateReader &in);

  private:
    std::vector<BucketCounts> counts_;
};

/** Sparse accumulator for unbounded keys (per-PC static profiling). */
class SparseBucketStats
{
  public:
    /** Record one prediction in @p bucket. */
    void
    record(std::uint64_t bucket, bool mispredicted)
    {
        auto &entry = counts_[bucket];
        entry.refs += 1.0;
        if (mispredicted)
            entry.mispredicts += 1.0;
    }

    /** Add pre-aggregated counts to @p bucket. */
    void
    recordAggregate(std::uint64_t bucket, double refs, double mispredicts)
    {
        auto &entry = counts_[bucket];
        entry.refs += refs;
        entry.mispredicts += mispredicts;
    }

    /** Merge @p other scaled by @p weight. */
    void addWeighted(const SparseBucketStats &other, double weight);

    /** @return number of distinct buckets seen. */
    std::size_t size() const { return counts_.size(); }

    double totalRefs() const;
    double totalMispredicts() const;

    /** @return all buckets with their ids (unordered). */
    std::vector<KeyedBucketCounts> nonEmpty() const;

    void clear() { counts_.clear(); }

    /** Checkpoint the accumulated counts (sorted-key encoding). */
    void saveState(StateWriter &out) const;

    /** Restore a saveState() snapshot, replacing current counts. */
    void loadState(StateReader &in);

  private:
    std::unordered_map<std::uint64_t, BucketCounts> counts_;
};

/**
 * Equal-weight compositor: give each added component the same total
 * reference mass (Section 1.2's averaging rule). Works for both dense
 * stats (same bucket space) and keyed lists.
 */
class EqualWeightComposite
{
  public:
    /** @param num_buckets Bucket-space size of the dense composite. */
    explicit EqualWeightComposite(std::uint64_t num_buckets);

    /**
     * Add one benchmark's stats; it will be scaled so its total refs
     * equal the common mass (1e6 by convention — only ratios matter).
     */
    void add(const BucketStats &benchmark_stats);

    /** @return the composite (valid after >= 1 add). */
    const BucketStats &result() const { return composite_; }

  private:
    BucketStats composite_;
};

} // namespace confsim

#endif // CONFSIM_METRICS_BUCKET_STATS_H
