/**
 * @file
 * Binary-split quality metrics for a high/low confidence partition.
 *
 * Treating "misprediction" as the positive class and "flagged low
 * confidence" as the positive test, the standard quantities follow-on
 * work (e.g. Grunwald et al., "Confidence Estimation for Speculation
 * Control", ISCA 1998) adopted for exactly these estimators:
 *
 *  - sensitivity (SENS): fraction of mispredictions flagged low,
 *  - specificity (SPEC): fraction of correct predictions flagged high,
 *  - predictive value of a negative/low signal (PVN): fraction of
 *    low-flagged predictions that are actually mispredicted,
 *  - predictive value of a positive/high signal (PVP): fraction of
 *    high-flagged predictions that are actually correct.
 *
 * The paper's "X% of dynamic branches capture Y% of mispredictions"
 * reading corresponds to (lowFraction, sensitivity).
 */

#ifndef CONFSIM_METRICS_CLASSIFICATION_METRICS_H
#define CONFSIM_METRICS_CLASSIFICATION_METRICS_H

#include <cstdint>
#include <vector>

#include "metrics/bucket_stats.h"

namespace confsim {

/** Confusion-matrix counts for a binary confidence split. */
struct ConfusionCounts
{
    double lowMispredicted = 0.0;   //!< flagged low, was mispredicted
    double lowCorrect = 0.0;        //!< flagged low, was correct
    double highMispredicted = 0.0;  //!< flagged high, was mispredicted
    double highCorrect = 0.0;       //!< flagged high, was correct

    double total() const
    {
        return lowMispredicted + lowCorrect + highMispredicted +
               highCorrect;
    }
};

/** Derived binary-split metrics. */
struct ClassificationMetrics
{
    double lowFraction = 0.0;  //!< fraction of predictions flagged low
    double sensitivity = 0.0;  //!< mispredictions caught by the low set
    double specificity = 0.0;  //!< correct predictions left in high set
    double pvn = 0.0;          //!< P(mispredict | low)
    double pvp = 0.0;          //!< P(correct | high)
};

/** Compute the derived metrics from confusion counts. */
ClassificationMetrics computeMetrics(const ConfusionCounts &counts);

/**
 * Build confusion counts from per-bucket statistics and a low-bucket
 * mask (bucket id indexes the mask; out-of-range ids count as high).
 */
ConfusionCounts
confusionFromBuckets(const std::vector<KeyedBucketCounts> &counts,
                     const std::vector<bool> &low_mask);

} // namespace confsim

#endif // CONFSIM_METRICS_CLASSIFICATION_METRICS_H
