#include "metrics/operating_point.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "metrics/classification_metrics.h"
#include "metrics/confidence_curve.h"

namespace confsim {

OperatingPoint
operatingPointAt(const BucketStats &stats, double ref_fraction)
{
    OperatingPoint point;
    point.coverage = ConfidenceCurve::fromBucketStats(stats)
                         .mispredCoverageAt(ref_fraction);

    std::vector<KeyedBucketCounts> keyed = stats.nonEmpty();
    std::sort(keyed.begin(), keyed.end(),
              [](const KeyedBucketCounts &a,
                 const KeyedBucketCounts &b) {
                  const double ra = a.counts.rate();
                  const double rb = b.counts.rate();
                  if (ra != rb)
                      return ra > rb;
                  return a.bucket < b.bucket;
              });

    double total_refs = 0.0;
    std::uint64_t max_bucket = 0;
    for (const auto &k : keyed) {
        total_refs += k.counts.refs;
        max_bucket = std::max(max_bucket, k.bucket);
    }
    if (total_refs <= 0.0)
        return point;

    // Grow the set toward the target, stopping at whichever side of
    // the boundary is closer.
    const double target = ref_fraction * total_refs;
    std::vector<bool> low(max_bucket + 1, false);
    double low_refs = 0.0;
    for (const auto &k : keyed) {
        const double with = low_refs + k.counts.refs;
        if (std::abs(with - target) >= std::abs(low_refs - target))
            break;
        low[k.bucket] = true;
        low_refs = with;
    }
    const ClassificationMetrics metrics =
        computeMetrics(confusionFromBuckets(keyed, low));
    point.lowFraction = metrics.lowFraction;
    point.pvn = metrics.pvn;
    return point;
}

} // namespace confsim
