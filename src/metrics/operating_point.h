/**
 * @file
 * The paper's ideal-reduction operating point, as a reusable metric.
 *
 * Several consumers score an estimator by the same recipe: order its
 * buckets worst-first by misprediction rate (the paper's profile
 * ordering), grow the low-confidence set toward a target fraction of
 * dynamic branches, and report the coverage, the realized low-set
 * size, and PVN at that point. This used to live in
 * bench/native_confidence.cc; the sampling engine needs it too (its
 * per-subsample coverage/PVN estimates), so it lives here once.
 */

#ifndef CONFSIM_METRICS_OPERATING_POINT_H
#define CONFSIM_METRICS_OPERATING_POINT_H

#include "metrics/bucket_stats.h"

namespace confsim {

/** An estimator scored at one low-set operating point. */
struct OperatingPoint
{
    /** Fraction of mispredictions inside the target low set (read off
     *  the cumulative confidence curve at the target fraction). */
    double coverage = 0.0;

    /** Realized low-set size as a fraction of dynamic branches. */
    double lowFraction = 0.0;

    /** Predictive value of a negative (low-confidence) prediction. */
    double pvn = 0.0;
};

/**
 * Score @p stats at the @p ref_fraction operating point. The discrete
 * low set grows worst-bucket-first toward the target, stopping at
 * whichever side of the boundary is closer — a single huge bucket
 * (the all-weak state) must not balloon the set to most of the trace.
 * Empty stats score zero everywhere. Weighted stats (e.g. composite
 * or stratified banks) are fine: only rates and relative masses
 * matter.
 */
OperatingPoint operatingPointAt(const BucketStats &stats,
                                double ref_fraction);

/** The paper's canonical 20%-of-branches operating point. */
inline OperatingPoint
operatingPointAt20(const BucketStats &stats)
{
    return operatingPointAt(stats, 0.2);
}

} // namespace confsim

#endif // CONFSIM_METRICS_OPERATING_POINT_H
