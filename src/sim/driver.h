/**
 * @file
 * The trace-driven simulation driver.
 *
 * Orchestrates one benchmark run: for every conditional branch in the
 * trace it queries the predictor, snapshots the architectural context
 * (PC, global BHR, global CIR), queries each attached confidence
 * estimator's bucket, resolves the branch, and trains everything in the
 * paper's order (confidence tables and per-static-branch profile see
 * the prediction's correctness; the predictor and the history registers
 * see the outcome).
 */

#ifndef CONFSIM_SIM_DRIVER_H
#define CONFSIM_SIM_DRIVER_H

#include <cstdint>
#include <string>
#include <vector>

#include "confidence/confidence_estimator.h"
#include "confidence/static_confidence.h"
#include "metrics/bucket_stats.h"
#include "obs/branch_profiler.h"
#include "predictor/branch_predictor.h"
#include "trace/trace_source.h"
#include "util/cancellation.h"
#include "util/running_stats.h"

namespace confsim {

class Checkpoint;
class CheckpointStore;
class HistoryRegister;
class ShiftRegister;
class SpanTracer;
class Telemetry;

/** Driver knobs. */
struct DriverOptions
{
    unsigned bhrBits = 16;   //!< architectural global BHR width
    unsigned gcirBits = 16;  //!< architectural global CIR width
    bool profileStatic = false; //!< collect per-static-branch profile

    /**
     * Branches simulated before statistics collection begins. The
     * structures still train during warmup; only the counters/curves
     * exclude it. 0 = record from the first branch (the paper runs
     * benchmarks "to their full length" and reports everything,
     * including the initial-state effects Fig. 11 studies).
     *
     * Warmup is purely a statistics exclusion window on the first
     * warmupBranches simulated conditionals: it does not delay,
     * reset, or otherwise interact with the context-switch clock
     * below. (Pinned by tests/sim/warmup_context_switch_test.cc.)
     */
    std::uint64_t warmupBranches = 0;

    /**
     * Model context switches: every this many branches the predictor
     * and/or confidence structures are flushed back to their power-on
     * state (per the flags below) and the architectural BHR/GCIR are
     * cleared. 0 = never switch. Section 5.4 motivates this knob: the
     * choice of CT initialization matters exactly because tables
     * restart after context switches.
     *
     * Composition with warmup, exactly: the interval counts EVERY
     * simulated conditional branch, warmup included (the OS does not
     * pause the scheduler while a predictor warms up), so with
     * warmupBranches > contextSwitchInterval the first flushes land
     * inside the warmup window. A switch fires AFTER the triggering
     * branch has fully trained the predictor, estimators, BHR, and
     * GCIR, and never clears accumulated statistics — only modeled
     * hardware state. (Pinned by warmup_context_switch_test.cc.)
     */
    std::uint64_t contextSwitchInterval = 0;

    /** Flush the branch predictor at a context switch. */
    bool flushPredictorOnSwitch = true;

    /** Flush the confidence estimators at a context switch. */
    bool flushEstimatorsOnSwitch = true;

    /**
     * Wall-clock budget for one run() in milliseconds; 0 = unlimited.
     * Checked cooperatively every few thousand records; on expiry the
     * run throws WatchdogTimeout (run_policy.h) so a hung or runaway
     * benchmark unwinds instead of wedging its worker thread. Never
     * fires on a run that finishes in time, so results are unaffected.
     */
    std::uint64_t wallClockLimitMs = 0;

    /**
     * Optional cooperative cancellation (util/cancellation.h); null =
     * never cancelled. Polled at the same amortized stride as the
     * watchdog; when cancelled the run throws Error{kCancelled} so
     * fail-fast teardown and suite deadlines unwind in-flight work
     * cleanly. The token must outlive the run.
     */
    const CancellationToken *cancel = nullptr;

    /**
     * Observability hook (obs/telemetry.h); null = telemetry off, in
     * which case the only cost the feature adds to the record loop is
     * a branch on this null pointer. When set, the driver emits a
     * driver_run summary event, a context_switch_flush event per
     * modelled switch, per-estimator sampled update-cost events, and
     * merges its locally accumulated stats into the registry.
     */
    Telemetry *telemetry = nullptr;

    /** Label for this run's events (benchmark name in suite runs). */
    std::string telemetryLabel;

    /**
     * Execution-span tracer (obs/span.h); null = tracing off, at the
     * cost of one null test per instrumented scope. The driver itself
     * emits only coarse spans (whole-run, checkpoint writes); the
     * sweep engine adds per-batch pipeline spans.
     */
    SpanTracer *spans = nullptr;

    /**
     * Collect the per-static-branch attribution profile
     * (obs/branch_profiler.h): per-PC mispredictions, low-confidence
     * volume, and per-estimator calibration. Observation-only — never
     * perturbs simulation state, so results are bit-identical with
     * the flag on or off (pinned by
     * tests/integration/branch_profile_test.cc).
     */
    bool profileBranches = false;

    /** Capacity/bin knobs for the branch profile when enabled. */
    BranchProfileOptions branchProfile;

    /**
     * Estimator update cost is timed on one branch in every this many
     * (amortizes the two clock reads; 0 is treated as every branch).
     * Only consulted when telemetry is attached.
     */
    std::uint64_t telemetrySampleStride = 8192;
};

/** Everything one run produces. */
struct DriverResult
{
    std::uint64_t branches = 0;     //!< conditional branches simulated
    std::uint64_t mispredicts = 0;  //!< predictor misses

    /** Per attached estimator: bucket statistics (same order). */
    std::vector<BucketStats> estimatorStats;

    /** Per-static-branch profile (when enabled). */
    StaticBranchProfile staticProfile;

    /** Per-branch attribution (DriverOptions::profileBranches). */
    BranchProfile branchProfile;

    /** Wall time of the run() call in milliseconds. */
    double wallMs = 0.0;

    /** Context switches modelled (DriverOptions switch interval). */
    std::uint64_t contextSwitches = 0;

    /** Mid-run checkpoints written (SimulationDriver::checkpointEvery). */
    std::uint64_t checkpointsWritten = 0;

    /**
     * Sampled per-estimator bucketOf+update cost in nanoseconds (same
     * order as estimatorStats). Empty unless telemetry was attached —
     * accumulated locally, lock-free, and merged by the caller
     * (cf. RunningStats::merge).
     */
    std::vector<RunningStats> estimatorUpdateNs;

    /** @return overall misprediction rate. */
    double
    mispredictRate() const
    {
        return branches == 0
                   ? 0.0
                   : static_cast<double>(mispredicts) /
                         static_cast<double>(branches);
    }
};

/** Runs a predictor plus confidence estimators over a trace. */
class SimulationDriver
{
  public:
    /**
     * @param predictor The underlying predictor (not owned).
     * @param estimators Attached confidence estimators (not owned; may
     *        be empty).
     * @param options Driver knobs.
     */
    SimulationDriver(BranchPredictor &predictor,
                     std::vector<ConfidenceEstimator *> estimators,
                     DriverOptions options = {});

    /**
     * Consume @p source from its current position to exhaustion.
     * Non-conditional records train nothing and are skipped (the
     * paper's mechanisms concern conditional branches only).
     */
    DriverResult run(TraceSource &source);

    /**
     * Enable periodic checkpointing: every @p n_branches conditional
     * branches the full simulation state (predictor, estimators,
     * accumulated statistics, architectural registers, and — when the
     * source supports it — trace position) is written atomically to
     * @p store as the next generation. 0 disables. fatal() immediately
     * if the predictor or any estimator is not checkpointable, so an
     * unauditable configuration fails loudly up front rather than
     * resuming wrong later.
     */
    void checkpointEvery(std::uint64_t n_branches,
                         CheckpointStore *store);

    /**
     * Continue a run from @p from (a checkpoint this configuration
     * wrote). All components are restored bit-exactly; if the source
     * carries no saved position (a non-checkpointable source), the
     * driver replays and discards `from.watermark` records from
     * @p source, which must therefore be a fresh deterministic stream.
     * fatal() on any component/version/geometry mismatch.
     */
    DriverResult resume(TraceSource &source, const Checkpoint &from);

  private:
    DriverResult runImpl(TraceSource &source,
                         const Checkpoint *resume_from);
    void writeCheckpoint(TraceSource &source, DriverResult &result,
                         std::uint64_t simulated,
                         std::uint64_t consumed,
                         std::uint64_t until_switch,
                         const HistoryRegister &bhr,
                         const ShiftRegister &gcir) const;

    BranchPredictor &predictor_;
    std::vector<ConfidenceEstimator *> estimators_;
    DriverOptions options_;
    std::uint64_t ckptEvery_ = 0;
    CheckpointStore *ckptStore_ = nullptr;
};

} // namespace confsim

#endif // CONFSIM_SIM_DRIVER_H
