#include "sim/sampling_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "metrics/operating_point.h"
#include "obs/telemetry.h"
#include "sim/suite_runner.h"
#include "util/error.h"
#include "util/rng.h"

namespace confsim {
namespace {

using Clock = std::chrono::steady_clock;

double
elapsedMsSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** Pre-pass features of one trace region. */
struct RegionFeatures
{
    std::uint64_t branches = 0; //!< conditionals in the region
    double proxyRate = 0.0;     //!< tiny-bimodal mispredict rate
    std::uint32_t workingSet = 0; //!< distinct (hashed) branch PCs
};

/** Tiny-bimodal proxy table geometry (shared by rate and working set:
 *  both want "small enough to stream at memory speed"). */
constexpr std::size_t kProxyEntries = 4096;

/**
 * One streaming pass: segment into regions of @p region_branches
 * conditionals and score each with the proxy features. The pass is a
 * pure function of the trace — no seeds — so features (and therefore
 * strata) are identical however the replay is parallelized.
 */
std::vector<RegionFeatures>
prePass(TraceSource &source, std::uint64_t region_branches,
        std::uint64_t &total_branches)
{
    std::vector<RegionFeatures> regions;
    // 2-bit saturating counters, weakly taken; predict taken >= 2.
    std::vector<std::uint8_t> counters(kProxyEntries, 2);
    // Epoch-stamped presence: touched[i] == current epoch means PC
    // hash i was already seen in this region (no per-region clear).
    std::vector<std::uint32_t> touched(kProxyEntries, 0);
    std::uint32_t epoch = 0;

    total_branches = 0;
    RegionFeatures current;
    std::uint64_t current_misses = 0;
    ++epoch;

    BranchRecord record;
    while (source.next(record)) {
        if (!record.isConditional())
            continue;
        const std::size_t slot =
            (record.pc ^ (record.pc >> 12)) % kProxyEntries;

        const bool predicted = counters[slot] >= 2;
        if (predicted != record.taken)
            ++current_misses;
        if (record.taken) {
            if (counters[slot] < 3)
                ++counters[slot];
        } else if (counters[slot] > 0) {
            --counters[slot];
        }

        if (touched[slot] != epoch) {
            touched[slot] = epoch;
            ++current.workingSet;
        }

        ++current.branches;
        ++total_branches;
        if (current.branches == region_branches) {
            current.proxyRate =
                static_cast<double>(current_misses) /
                static_cast<double>(current.branches);
            regions.push_back(current);
            current = RegionFeatures{};
            current_misses = 0;
            ++epoch;
        }
    }
    if (current.branches > 0) {
        current.proxyRate = static_cast<double>(current_misses) /
                            static_cast<double>(current.branches);
        regions.push_back(current);
    }
    return regions;
}

/** One selected region. */
struct Pick
{
    std::uint64_t region = 0;
    std::uint32_t stratum = 0;
    std::uint32_t subsample = 0;
};

/** The full selection: strata, weights, and picks. */
struct Selection
{
    std::uint32_t strata = 0;
    std::uint32_t subsamples = 0; //!< effective R
    std::vector<double> weights;  //!< per-stratum branch share
    std::vector<Pick> picks;      //!< deterministic order
};

/**
 * Stratify by proxy-rate quantiles, ranked-set-sample per stratum,
 * deal picks round-robin into subsamples. Deterministic in (features,
 * options, seed).
 */
Selection
selectRegions(const std::vector<RegionFeatures> &regions,
              const SamplingOptions &options, std::uint64_t seed)
{
    Selection sel;
    const std::size_t n = regions.size();
    if (n == 0)
        return sel;

    std::uint64_t total_branches = 0;
    for (const auto &region : regions)
        total_branches += region.branches;

    // Rank by the primary feature; ties break by region id so the
    // ordering is total and reproducible.
    std::vector<std::uint64_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::uint64_t a, std::uint64_t b) {
                  if (regions[a].proxyRate != regions[b].proxyRate)
                      return regions[a].proxyRate <
                             regions[b].proxyRate;
                  return a < b;
              });

    const std::uint32_t strata = static_cast<std::uint32_t>(
        std::min<std::size_t>(options.strata, n));
    sel.strata = strata;

    // Equal-count quantile cuts over the ranking.
    std::vector<std::vector<std::uint64_t>> pools(strata);
    sel.weights.assign(strata, 0.0);
    for (std::uint32_t s = 0; s < strata; ++s) {
        const std::size_t lo = s * n / strata;
        const std::size_t hi = (s + 1) * n / strata;
        pools[s].assign(order.begin() + lo, order.begin() + hi);
        std::uint64_t branches = 0;
        for (const std::uint64_t region : pools[s])
            branches += regions[region].branches;
        sel.weights[s] = total_branches == 0
                             ? 0.0
                             : static_cast<double>(branches) /
                                   static_cast<double>(total_branches);
    }

    // Total budget, split across strata proportionally to stratum
    // size (largest-remainder rounding keeps the sum exact).
    const std::uint64_t total_picks = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::llround(options.sampleRate *
                            static_cast<double>(n))));
    std::vector<std::uint64_t> budget(strata, 0);
    std::vector<std::pair<double, std::uint32_t>> remainders;
    std::uint64_t assigned = 0;
    for (std::uint32_t s = 0; s < strata; ++s) {
        const double share =
            static_cast<double>(total_picks) *
            static_cast<double>(pools[s].size()) /
            static_cast<double>(n);
        budget[s] = std::min<std::uint64_t>(
            pools[s].size(),
            static_cast<std::uint64_t>(std::floor(share)));
        assigned += budget[s];
        remainders.push_back({share - std::floor(share), s});
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });
    for (const auto &[frac, s] : remainders) {
        if (assigned >= total_picks)
            break;
        if (budget[s] < pools[s].size()) {
            ++budget[s];
            ++assigned;
        }
    }

    // Ranked-set sampling per stratum: each pick draws rankSetSize
    // candidates, ranks them by the secondary feature (working-set
    // size), and keeps the candidate whose rank cycles across picks.
    Rng rng(seed);
    for (std::uint32_t s = 0; s < strata; ++s) {
        auto &pool = pools[s];
        for (std::uint64_t i = 0; i < budget[s] && !pool.empty();
             ++i) {
            const std::size_t m = std::min<std::size_t>(
                options.rankSetSize, pool.size());
            std::vector<std::uint64_t> candidates;
            candidates.reserve(m);
            for (std::size_t c = 0; c < m; ++c) {
                const std::size_t at = static_cast<std::size_t>(
                    rng.nextBelow(pool.size()));
                candidates.push_back(pool[at]);
                pool.erase(pool.begin() +
                           static_cast<std::ptrdiff_t>(at));
            }
            std::sort(candidates.begin(), candidates.end(),
                      [&](std::uint64_t a, std::uint64_t b) {
                          if (regions[a].workingSet !=
                              regions[b].workingSet)
                              return regions[a].workingSet <
                                     regions[b].workingSet;
                          return a < b;
                      });
            const std::size_t keep =
                static_cast<std::size_t>(i) % m;
            for (std::size_t c = 0; c < m; ++c) {
                if (c == keep) {
                    sel.picks.push_back(
                        {candidates[c], s, 0 /* dealt below */});
                } else {
                    pool.push_back(candidates[c]); // back to the pool
                }
            }
        }
    }

    // Deal subsample groups round-robin over the deterministic pick
    // order, so every group straddles every stratum when possible.
    sel.subsamples = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(options.subsamples,
                                sel.picks.size()));
    for (std::size_t g = 0; g < sel.picks.size(); ++g) {
        sel.picks[g].subsample =
            static_cast<std::uint32_t>(g % sel.subsamples);
    }
    return sel;
}

/** Per-benchmark deterministic selection seed. */
std::uint64_t
benchSeed(std::uint64_t seed, const std::string &name)
{
    std::uint64_t h = 1469598103934665603ull; // FNV-1a
    for (const char c : name)
        h = (h ^ static_cast<unsigned char>(c)) *
            1099511628211ull;
    return seed ^ h;
}

} // namespace

SamplingEngine::SamplingEngine(std::vector<SweepConfiguration> configs,
                               DriverOptions driver,
                               SamplingOptions options)
    : configs_(std::move(configs)), driver_(driver),
      options_(options)
{
    if (configs_.empty()) {
        fatal(ErrorCategory::kConfig,
              "SamplingEngine needs at least one configuration");
    }
    if (!(options_.sampleRate > 0.0) || options_.sampleRate > 1.0) {
        fatal(ErrorCategory::kConfig,
              "--sample-rate must be in (0, 1]");
    }
    if (options_.regionBranches == 0)
        fatal(ErrorCategory::kConfig, "region size must be > 0");
    if (options_.strata == 0)
        fatal(ErrorCategory::kConfig, "--strata must be >= 1");
    if (options_.subsamples == 0)
        fatal(ErrorCategory::kConfig, "--subsamples must be >= 1");
    if (options_.rankSetSize == 0)
        fatal(ErrorCategory::kConfig, "rank-set size must be >= 1");
    if (options_.sweep.recordingPlan != nullptr) {
        fatal(ErrorCategory::kConfig,
              "the sampling engine owns the recording plan; "
              "SamplingOptions::sweep.recordingPlan must be null");
    }
}

SamplingBenchmarkResult
SamplingEngine::runTrace(const std::string &name,
                         const SourceFactory &make_source)
{
    SamplingBenchmarkResult out;
    out.name = name;

    // Pass 1: features. A fresh source guarantees the replay pass
    // sees the identical stream.
    const Clock::time_point prepass_start = Clock::now();
    std::vector<RegionFeatures> features;
    {
        auto source = make_source();
        features = prePass(*source, options_.regionBranches,
                           out.totalBranches);
    }
    out.prePassMs = elapsedMsSince(prepass_start);
    out.regions = features.size();
    if (features.empty())
        return out; // empty trace: zero estimates, nothing to replay

    const Selection sel = selectRegions(
        features, options_, benchSeed(options_.seed, name));
    out.sampledRegions = sel.picks.size();
    for (const Pick &pick : sel.picks)
        out.sampledRegionIds.push_back(pick.region);
    std::sort(out.sampledRegionIds.begin(),
              out.sampledRegionIds.end());

    // Build the recording plan: sampled regions record into their
    // (stratum, subsample) slot; everything else warms — or, with a
    // bounded warm window, fast-forwards until the window before the
    // next sample.
    const std::uint32_t r_eff = sel.subsamples;
    SweepRecordingPlan plan;
    plan.regionBranches = options_.regionBranches;
    plan.numSlots = sel.strata * r_eff;
    plan.regionSlots.assign(
        features.size(),
        options_.warmupRegions == SamplingOptions::kWarmAll
            ? SweepRecordingPlan::kWarmOnly
            : SweepRecordingPlan::kSkip);
    for (const Pick &pick : sel.picks) {
        plan.regionSlots[pick.region] =
            pick.stratum * r_eff + pick.subsample;
    }
    if (options_.warmupRegions != SamplingOptions::kWarmAll) {
        for (const Pick &pick : sel.picks) {
            const std::uint64_t lo =
                pick.region >= options_.warmupRegions
                    ? pick.region - options_.warmupRegions
                    : 0;
            for (std::uint64_t j = lo; j < pick.region; ++j) {
                if (plan.regionSlots[j] == SweepRecordingPlan::kSkip)
                    plan.regionSlots[j] =
                        SweepRecordingPlan::kWarmOnly;
            }
        }
    }

    // Pass 2: one planned sweep replay.
    const Clock::time_point replay_start = Clock::now();
    SweepOptions sweep = options_.sweep;
    sweep.recordingPlan = &plan;
    SweepEngine engine(configs_, driver_, sweep);
    SweepRunResult replay;
    {
        auto source = make_source();
        replay = engine.run(*source);
    }
    out.replayMs = elapsedMsSince(replay_start);

    // Stratified estimates per configuration.
    out.recordedBranches = replay.perConfig.empty()
                               ? 0
                               : replay.perConfig[0].branches;
    for (const SweepConfigResult &config : replay.perConfig) {
        SamplingConfigEstimate est;
        est.label = config.label;
        est.estimatorNames = config.estimatorNames;
        const std::size_t num_estimators =
            config.estimatorNames.size();
        est.coverageSubsamples.resize(num_estimators);
        est.pvnSubsamples.resize(num_estimators);

        for (std::uint32_t r = 0; r < r_eff; ++r) {
            // Renormalize stratum weights over the strata this
            // subsample actually covers (a stratum's budget can be
            // smaller than R).
            double covered = 0.0;
            for (std::uint32_t s = 0; s < sel.strata; ++s) {
                const SweepSlotStats &bank =
                    config.slotStats[s * r_eff + r];
                if (bank.branches > 0)
                    covered += sel.weights[s];
            }
            if (covered <= 0.0)
                continue; // an empty subsample contributes nothing

            double rate = 0.0;
            for (std::uint32_t s = 0; s < sel.strata; ++s) {
                const SweepSlotStats &bank =
                    config.slotStats[s * r_eff + r];
                if (bank.branches == 0)
                    continue;
                rate += (sel.weights[s] / covered) *
                        (static_cast<double>(bank.mispredicts) /
                         static_cast<double>(bank.branches));
            }
            est.rateSubsamples.push_back(rate);

            for (std::size_t e = 0; e < num_estimators; ++e) {
                // Stratified bucket mass: each covered stratum's
                // bank normalized to unit mass, then weighted by
                // its renormalized branch share.
                BucketStats weighted(
                    config.estimatorStats[e].numBuckets());
                for (std::uint32_t s = 0; s < sel.strata; ++s) {
                    const SweepSlotStats &bank =
                        config.slotStats[s * r_eff + r];
                    if (bank.branches == 0)
                        continue;
                    const double refs =
                        bank.estimatorStats[e].totalRefs();
                    if (refs <= 0.0)
                        continue;
                    weighted.addWeighted(
                        bank.estimatorStats[e],
                        (sel.weights[s] / covered) / refs);
                }
                const OperatingPoint point =
                    operatingPointAt20(weighted);
                est.coverageSubsamples[e].push_back(point.coverage);
                est.pvnSubsamples[e].push_back(point.pvn);
            }
        }

        if (!est.rateSubsamples.empty()) {
            est.mispredictRate =
                estimateFromSubsamples(est.rateSubsamples);
            for (std::size_t e = 0; e < num_estimators; ++e) {
                est.coverageAt20.push_back(estimateFromSubsamples(
                    est.coverageSubsamples[e]));
                est.pvnAt20.push_back(estimateFromSubsamples(
                    est.pvnSubsamples[e]));
            }
        }
        out.perConfig.push_back(std::move(est));
    }
    return out;
}

SamplingRunResult
SamplingEngine::runSuite(const SuiteRunner &runner)
{
    const Clock::time_point suite_start = Clock::now();
    SamplingRunResult result;
    const BenchmarkSuite &suite = runner.suite();
    const SourceWrapper &wrapper = runner.sourceWrapper();

    for (std::size_t bench = 0; bench < suite.size(); ++bench) {
        const std::string name = suite.profile(bench).name;
        auto make_source = [&, bench]() -> std::unique_ptr<TraceSource> {
            std::unique_ptr<TraceSource> inner =
                suite.makeGenerator(bench);
            if (wrapper)
                return wrapper(bench, std::move(inner));
            return inner;
        };
        SamplingBenchmarkResult bench_result =
            runTrace(name, make_source);
        result.totalBranches += bench_result.totalBranches;
        result.recordedBranches += bench_result.recordedBranches;
        if (driver_.telemetry != nullptr) {
            MetricsRegistry &registry =
                driver_.telemetry->registry();
            registry.observe("sampling.prepass_ms",
                             bench_result.prePassMs);
            registry.observe("sampling.replay_ms",
                             bench_result.replayMs);
            registry.observe("sampling.sampled_regions",
                             static_cast<double>(
                                 bench_result.sampledRegions));
        }
        result.perBenchmark.push_back(std::move(bench_result));
    }

    // Equal-weight composites, estimated per subsample then
    // summarized — mirroring EqualWeightComposite's semantics at the
    // estimate level. Subsample r composites every benchmark's r-th
    // estimate; r runs to the shortest benchmark series so each
    // composite subsample covers the full suite.
    const std::size_t num_configs = configs_.size();
    for (std::size_t c = 0; c < num_configs; ++c) {
        SamplingConfigEstimate composite;
        composite.label = configs_[c].label;

        std::size_t r_min = 0;
        bool have = false;
        for (const auto &bench : result.perBenchmark) {
            if (bench.perConfig.empty())
                continue;
            const std::size_t r =
                bench.perConfig[c].rateSubsamples.size();
            r_min = have ? std::min(r_min, r) : r;
            have = true;
            if (composite.estimatorNames.empty()) {
                composite.estimatorNames =
                    bench.perConfig[c].estimatorNames;
            }
        }
        if (have && r_min > 0) {
            const std::size_t num_estimators =
                composite.estimatorNames.size();
            composite.coverageSubsamples.resize(num_estimators);
            composite.pvnSubsamples.resize(num_estimators);
            for (std::size_t r = 0; r < r_min; ++r) {
                double rate = 0.0;
                std::vector<double> coverage(num_estimators, 0.0);
                std::vector<double> pvn(num_estimators, 0.0);
                std::size_t benches = 0;
                for (const auto &bench : result.perBenchmark) {
                    if (bench.perConfig.empty())
                        continue;
                    const auto &est = bench.perConfig[c];
                    rate += est.rateSubsamples[r];
                    for (std::size_t e = 0; e < num_estimators;
                         ++e) {
                        coverage[e] += est.coverageSubsamples[e][r];
                        pvn[e] += est.pvnSubsamples[e][r];
                    }
                    ++benches;
                }
                if (benches == 0)
                    continue;
                composite.rateSubsamples.push_back(
                    rate / static_cast<double>(benches));
                for (std::size_t e = 0; e < num_estimators; ++e) {
                    composite.coverageSubsamples[e].push_back(
                        coverage[e] /
                        static_cast<double>(benches));
                    composite.pvnSubsamples[e].push_back(
                        pvn[e] / static_cast<double>(benches));
                }
            }
            if (!composite.rateSubsamples.empty()) {
                composite.mispredictRate = estimateFromSubsamples(
                    composite.rateSubsamples);
                for (std::size_t e = 0; e < num_estimators; ++e) {
                    composite.coverageAt20.push_back(
                        estimateFromSubsamples(
                            composite.coverageSubsamples[e]));
                    composite.pvnAt20.push_back(
                        estimateFromSubsamples(
                            composite.pvnSubsamples[e]));
                }
            }
        }
        result.composite.push_back(std::move(composite));
    }

    result.wallMs = elapsedMsSince(suite_start);
    if (driver_.telemetry != nullptr) {
        driver_.telemetry->registry().setGauge(
            "sampling.reduction", result.reductionFactor());
        const double composite_rate =
            result.composite.empty()
                ? 0.0
                : result.composite[0].mispredictRate.mean;
        driver_.telemetry->emit(TelemetryEvent(
            events::kSamplingRunFinished,
            {field("benchmarks",
                   static_cast<std::uint64_t>(suite.size())),
             field("configs",
                   static_cast<std::uint64_t>(num_configs)),
             field("sample_rate", options_.sampleRate),
             field("subsamples",
                   static_cast<std::uint64_t>(options_.subsamples)),
             field("total_branches", result.totalBranches),
             field("recorded_branches", result.recordedBranches),
             field("reduction", result.reductionFactor()),
             field("composite_mispredict_rate", composite_rate),
             field("wall_ms", result.wallMs)}));
    }
    return result;
}

} // namespace confsim
