/**
 * @file
 * The shared (predictor, estimator) family registry behind the
 * differential test wall.
 *
 * The sweep engine's bit-exactness contract is only as strong as the
 * set of configurations the differential tests enumerate. Before this
 * registry existed each test file carried its own hard-coded family
 * list, so a new predictor or estimator could silently skip the
 * harness. Now there is exactly one list: add a family here and every
 * differential combo — single/multi-thread, batch-size invariance,
 * decode-ahead depth, checkpoint kill-and-resume — covers it
 * automatically.
 *
 * Geometries are deliberately small (test scale): the registry's job
 * is to exercise every code path's state machine, not to reproduce
 * paper-scale accuracy numbers (sim/experiment.h owns those).
 */

#ifndef CONFSIM_SIM_FAMILY_REGISTRY_H
#define CONFSIM_SIM_FAMILY_REGISTRY_H

#include <string>
#include <vector>

#include "sim/suite_runner.h"

namespace confsim {

/** One registered configuration: label + paired factories. */
struct DifferentialFamily
{
    std::string label;
    PredictorFactory makePredictor;
    EstimatorSetFactory makeEstimators;
};

/**
 * Every estimator family in src/confidence/, each over the reference
 * small-gshare predictor. Native-confidence estimators (TAGE
 * provider, perceptron margin) ride their matching predictor instead
 * so the shadow replica tracks the real structure.
 */
std::vector<DifferentialFamily> estimatorFamilyRegistry();

/**
 * Every predictor family in src/predictor/, each under a fixed
 * resetting-counter estimator (the paper's workhorse), so predictor
 * state machines face the same differential wall estimators do.
 */
std::vector<DifferentialFamily> predictorFamilyRegistry();

/** The union of both registries (labels are unique across them). */
std::vector<DifferentialFamily> differentialFamilyRegistry();

/**
 * Look up a family by label in the combined registry.
 * Fatals (Error{kConfig}) on an unknown label so tests that pick
 * specific families fail loudly when one is renamed.
 */
DifferentialFamily differentialFamilyNamed(const std::string &label);

} // namespace confsim

#endif // CONFSIM_SIM_FAMILY_REGISTRY_H
