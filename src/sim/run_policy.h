/**
 * @file
 * Fault-tolerance policy for suite-level runs.
 *
 * Large simulation campaigns live or die on being able to lose
 * individual benchmarks without invalidating — or re-running — the
 * whole campaign (cf. Ekman's sampling-methodology papers). RunPolicy
 * selects how SuiteRunner reacts when one benchmark task fails:
 * fail-fast (the default: the whole run throws, as before) or
 * continue-on-error (the failed benchmark is marked, survivors
 * composite, and the result carries a `degraded` flag). Bounded
 * per-benchmark retries cover transient failures, and a per-benchmark
 * wall-clock watchdog turns a hung benchmark into a failed one instead
 * of wedging the pool.
 */

#ifndef CONFSIM_SIM_RUN_POLICY_H
#define CONFSIM_SIM_RUN_POLICY_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/cancellation.h"
#include "util/error.h"

namespace confsim {

/** What a benchmark failure does to the rest of the suite run. */
enum class ErrorMode : std::uint8_t
{
    kFailFast = 0,      //!< first failure aborts the whole run (throws)
    kContinueOnError = 1 //!< mark the benchmark failed; run the rest
};

/**
 * Checkpoint/resume knobs for a suite run (see src/ckpt/). Enabled by
 * giving a directory; each benchmark then gets its own generation-
 * rotating CheckpointStore under it (label = benchmark name), the
 * driver writes a checkpoint every `everyBranches` conditional
 * branches, and a completed benchmark leaves a done-marker holding its
 * full result. With `resume` set, SuiteRunner loads finished
 * benchmarks from their done-markers and restarts interrupted ones
 * from their newest intact generation (falling back one generation per
 * corrupt file).
 */
struct CheckpointPolicy
{
    /** Checkpoint directory; "" disables the whole feature. */
    std::string directory;

    /** Conditional branches between mid-run checkpoints (0 = only
     * the completion marker is written). */
    std::uint64_t everyBranches = 250'000;

    /** Recover prior progress from `directory` before simulating. */
    bool resume = false;

    /** Mid-run generations retained per benchmark (newest kept). */
    unsigned keepGenerations = 2;

    /** @return true iff checkpointing is configured. */
    bool
    enabled() const
    {
        return !directory.empty();
    }
};

/** Per-suite-run fault-tolerance knobs. */
struct RunPolicy
{
    ErrorMode errorMode = ErrorMode::kFailFast;

    /** Checkpoint/resume configuration (disabled by default). */
    CheckpointPolicy checkpoint;

    /**
     * Total attempts per benchmark (>= 1). Retries target transient
     * failures (e.g. I/O races); a deterministic failure simply fails
     * identically each attempt. Watchdog timeouts are never retried —
     * a benchmark that blew its budget once would blow it again.
     */
    unsigned maxAttempts = 1;

    /**
     * Per-benchmark wall-clock budget in milliseconds (0 = none). The
     * driver checks the deadline cooperatively inside its record loop,
     * so the hung-benchmark thread unwinds cleanly rather than being
     * abandoned. The watchdog never fires on a benchmark that
     * finishes in time, so enabling it does not perturb results.
     */
    std::uint64_t watchdogMs = 0;

    /**
     * Base delay for exponential retry backoff in milliseconds
     * (0 = retry immediately, the pre-backoff behavior). Attempt k
     * sleeps ~retryBackoffMs * 2^(k-1), with deterministic ±25% jitter
     * seeded from the benchmark name so concurrent retries decorrelate
     * without making runs irreproducible. Retries are category-aware:
     * errors whose Error::retryable() is false (timeout, cancellation,
     * bad configuration) fail immediately regardless of maxAttempts.
     */
    std::uint64_t retryBackoffMs = 0;

    /**
     * Suite-level wall-clock budget in milliseconds (0 = none). Once
     * exhausted, in-flight benchmarks are cancelled cooperatively, no
     * further benchmarks or retries start, and the unrun benchmarks
     * are marked failed/cancelled (continue-on-error) or the run
     * throws (fail-fast). Per-benchmark watchdog budgets are clipped
     * to the remaining suite budget.
     */
    std::uint64_t deadlineMs = 0;

    /**
     * Optional external cancellation. When set, the suite runner (and
     * every driver/sweep it starts) polls the token cooperatively and
     * unwinds with Error{kCancelled} after cancel(). The token must
     * outlive the run. Owned by the caller; never cancelled by the
     * library.
     */
    const CancellationToken *cancel = nullptr;

    /** The default: any benchmark failure aborts the run. */
    static RunPolicy
    failFast()
    {
        return {};
    }

    /** Isolate failures; composite over the surviving benchmarks. */
    static RunPolicy
    continueOnError()
    {
        RunPolicy policy;
        policy.errorMode = ErrorMode::kContinueOnError;
        return policy;
    }
};

/**
 * Thrown by SimulationDriver (and sweep shards) when a run exceeds its
 * wall-clock budget (DriverOptions::wallClockLimitMs). A distinct type
 * so SuiteRunner can exempt timeouts from retry; an Error with
 * category kTimeout so policy code can also dispatch on the taxonomy.
 */
class WatchdogTimeout : public Error
{
  public:
    explicit WatchdogTimeout(const std::string &message)
        : Error(ErrorCategory::kTimeout, message)
    {}
};

} // namespace confsim

#endif // CONFSIM_SIM_RUN_POLICY_H
