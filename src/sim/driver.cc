#include "sim/driver.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "obs/telemetry.h"
#include "predictor/history_register.h"
#include "sim/run_policy.h"
#include "util/shift_register.h"

namespace confsim {

SimulationDriver::SimulationDriver(
    BranchPredictor &predictor,
    std::vector<ConfidenceEstimator *> estimators, DriverOptions options)
    : predictor_(predictor), estimators_(std::move(estimators)),
      options_(options)
{}

DriverResult
SimulationDriver::run(TraceSource &source)
{
    DriverResult result;
    result.estimatorStats.reserve(estimators_.size());
    for (const auto *estimator : estimators_)
        result.estimatorStats.emplace_back(estimator->numBuckets());

    // Architectural context registers, maintained by the driver so all
    // estimators see identical history regardless of predictor type.
    HistoryRegister bhr(options_.bhrBits);
    ShiftRegister gcir(options_.gcirBits, 0);

    BranchRecord record;
    BranchContext ctx;
    ctx.bhrBits = options_.bhrBits;
    ctx.gcirBits = options_.gcirBits;

    std::uint64_t simulated = 0;
    std::uint64_t until_switch = options_.contextSwitchInterval;

    // Cooperative watchdog: amortize the clock read over a batch of
    // records so the hot loop stays hot.
    using Clock = std::chrono::steady_clock;
    constexpr std::uint64_t kWatchdogStride = 8192;
    const bool watchdog = options_.wallClockLimitMs != 0;
    const Clock::time_point deadline =
        watchdog ? Clock::now() + std::chrono::milliseconds(
                                      options_.wallClockLimitMs)
                 : Clock::time_point{};
    std::uint64_t records = 0;

    // Telemetry: sampled estimator-cost accumulators stay local to
    // this run (no locks in the loop); everything is merged/emitted
    // once at the end. With telemetry off, the loop only ever tests
    // `sample_countdown`, pre-set so the timing path is dead.
    Telemetry *const telemetry = options_.telemetry;
    const std::uint64_t sample_stride =
        std::max<std::uint64_t>(1, options_.telemetrySampleStride);
    std::uint64_t sample_countdown =
        telemetry != nullptr
            ? 1
            : std::numeric_limits<std::uint64_t>::max();
    if (telemetry != nullptr)
        result.estimatorUpdateNs.resize(estimators_.size());
    const Clock::time_point run_start = Clock::now();

    while (source.next(record)) {
        if (watchdog && (++records % kWatchdogStride) == 0 &&
            Clock::now() > deadline) {
            throw WatchdogTimeout(
                "benchmark exceeded its wall-clock budget of " +
                std::to_string(options_.wallClockLimitMs) +
                " ms after " + std::to_string(records) + " records");
        }
        if (!record.isConditional())
            continue;

        ctx.pc = record.pc;
        ctx.bhr = bhr.value();
        ctx.gcir = gcir.value();

        const bool predicted = predictor_.predict(record.pc);
        const bool correct = (predicted == record.taken);
        const bool recording =
            simulated >= options_.warmupBranches;

        if (recording) {
            ++result.branches;
            if (!correct)
                ++result.mispredicts;
        }

        // Confidence estimators: bucket is read with the pre-update
        // context; training sees the prediction's correctness.
        if (--sample_countdown == 0) {
            sample_countdown = sample_stride;
            for (std::size_t i = 0; i < estimators_.size(); ++i) {
                const Clock::time_point t0 = Clock::now();
                const std::uint64_t bucket =
                    estimators_[i]->bucketOf(ctx);
                if (recording)
                    result.estimatorStats[i].record(bucket, !correct);
                estimators_[i]->update(ctx, correct, record.taken);
                result.estimatorUpdateNs[i].add(
                    std::chrono::duration<double, std::nano>(
                        Clock::now() - t0)
                        .count());
            }
        } else {
            for (std::size_t i = 0; i < estimators_.size(); ++i) {
                const std::uint64_t bucket =
                    estimators_[i]->bucketOf(ctx);
                if (recording)
                    result.estimatorStats[i].record(bucket, !correct);
                estimators_[i]->update(ctx, correct, record.taken);
            }
        }

        if (options_.profileStatic && recording) {
            result.staticProfile.record(record.pc, !correct,
                                        record.taken);
        }

        // Predictor and architectural history train on the outcome.
        predictor_.update(record.pc, record.taken);
        bhr.recordOutcome(record.taken);
        gcir.shiftIn(!correct);
        ++simulated;

        // Context-switch modelling (Section 5.4): periodically restore
        // the microarchitectural structures to their power-on state.
        if (options_.contextSwitchInterval != 0 &&
            --until_switch == 0) {
            until_switch = options_.contextSwitchInterval;
            if (options_.flushPredictorOnSwitch)
                predictor_.reset();
            if (options_.flushEstimatorsOnSwitch) {
                for (auto *estimator : estimators_)
                    estimator->reset();
            }
            bhr.reset();
            gcir.clear();
            ++result.contextSwitches;
            if (telemetry != nullptr) {
                telemetry->emit(TelemetryEvent(
                    events::kContextSwitchFlush,
                    {field("benchmark", options_.telemetryLabel),
                     field("at_branch", simulated),
                     field("flush_predictor",
                           options_.flushPredictorOnSwitch),
                     field("flush_estimators",
                           options_.flushEstimatorsOnSwitch)}));
            }
        }
    }

    result.wallMs = std::chrono::duration<double, std::milli>(
                        Clock::now() - run_start)
                        .count();

    if (telemetry != nullptr) {
        const std::uint64_t warmup_consumed =
            std::min(simulated, options_.warmupBranches);
        const double ns_per_branch =
            simulated == 0 ? 0.0
                           : result.wallMs * 1e6 /
                                 static_cast<double>(simulated);
        telemetry->emit(TelemetryEvent(
            events::kDriverRun,
            {field("benchmark", options_.telemetryLabel),
             field("branches", simulated),
             field("measured_branches", result.branches),
             field("warmup_branches", warmup_consumed),
             field("mispredicts", result.mispredicts),
             field("mispredict_rate", result.mispredictRate()),
             field("context_switches", result.contextSwitches),
             field("wall_ms", result.wallMs),
             field("ns_per_branch", ns_per_branch)}));

        MetricsRegistry &registry = telemetry->registry();
        registry.increment("driver.runs");
        registry.increment("driver.branches", simulated);
        registry.increment("driver.mispredicts", result.mispredicts);
        registry.observe("driver.wall_ms", result.wallMs);
        registry.observe("driver.ns_per_branch", ns_per_branch);
        for (std::size_t i = 0; i < estimators_.size(); ++i) {
            const RunningStats &cost = result.estimatorUpdateNs[i];
            if (cost.count() == 0)
                continue;
            telemetry->emit(TelemetryEvent(
                events::kEstimatorUpdateCost,
                {field("benchmark", options_.telemetryLabel),
                 field("estimator", estimators_[i]->name()),
                 field("samples", cost.count()),
                 field("mean_ns", cost.mean()),
                 field("min_ns", cost.min()),
                 field("max_ns", cost.max())}));
            registry.mergeStats("driver.estimator_update_ns." +
                                    estimators_[i]->name(),
                                cost);
        }
    }
    return result;
}

} // namespace confsim
