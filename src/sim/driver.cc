#include "sim/driver.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "ckpt/checkpoint.h"
#include "ckpt/checkpoint_store.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "predictor/history_register.h"
#include "sim/run_policy.h"
#include "util/error.h"
#include "util/shift_register.h"
#include "util/status.h"

namespace confsim {

namespace {

/** Registry names tie state to the configuration that produced it. */
std::string
predictorComponentName(const BranchPredictor &predictor)
{
    return "predictor:" + predictor.name();
}

std::string
estimatorComponentName(std::size_t index,
                       const ConfidenceEstimator &estimator)
{
    return "estimator" + std::to_string(index) + ":" + estimator.name();
}

std::string
statsComponentName(std::size_t index)
{
    return "stats" + std::to_string(index);
}

} // namespace

SimulationDriver::SimulationDriver(
    BranchPredictor &predictor,
    std::vector<ConfidenceEstimator *> estimators, DriverOptions options)
    : predictor_(predictor), estimators_(std::move(estimators)),
      options_(options)
{}

void
SimulationDriver::checkpointEvery(std::uint64_t n_branches,
                                  CheckpointStore *store)
{
    if (n_branches != 0 && store == nullptr)
        fatal(ErrorCategory::kConfig, "checkpointEvery: a period needs a CheckpointStore");
    if (n_branches != 0 || store != nullptr) {
        // Fail up front: an unaudited component would otherwise write
        // checkpoints that resume into silently-wrong state.
        if (!predictor_.checkpointable()) {
            fatal(ErrorCategory::kConfig, "predictor '" + predictor_.name() +
                  "' is not checkpointable");
        }
        for (const auto *estimator : estimators_) {
            if (!estimator->checkpointable()) {
                fatal(ErrorCategory::kConfig, "estimator '" + estimator->name() +
                      "' is not checkpointable");
            }
        }
    }
    ckptEvery_ = n_branches;
    ckptStore_ = store;
}

DriverResult
SimulationDriver::run(TraceSource &source)
{
    return runImpl(source, nullptr);
}

DriverResult
SimulationDriver::resume(TraceSource &source, const Checkpoint &from)
{
    return runImpl(source, &from);
}

void
SimulationDriver::writeCheckpoint(TraceSource &source,
                                  DriverResult &result,
                                  std::uint64_t simulated,
                                  std::uint64_t consumed,
                                  std::uint64_t until_switch,
                                  const HistoryRegister &bhr,
                                  const ShiftRegister &gcir) const
{
    ScopedSpan span(options_.spans, "ckpt.write");
    Checkpoint ckpt;
    ckpt.label = options_.telemetryLabel;
    ckpt.watermark = consumed;
    ckpt.branches = simulated;

    StateWriter meta;
    meta.putU64(options_.bhrBits);
    meta.putU64(options_.gcirBits);
    meta.putU64(estimators_.size());
    meta.putU64(options_.profileStatic ? 1 : 0);
    meta.putU64(until_switch);
    meta.putU64(bhr.value());
    meta.putU64(gcir.value());
    meta.putU64(result.branches);
    meta.putU64(result.mispredicts);
    meta.putU64(result.contextSwitches);
    ckpt.add("driver:meta", 1, meta.take());

    ckpt.addComponent(predictorComponentName(predictor_), predictor_);
    for (std::size_t i = 0; i < estimators_.size(); ++i) {
        ckpt.addComponent(estimatorComponentName(i, *estimators_[i]),
                          *estimators_[i]);
        ckpt.addState(statsComponentName(i), 1,
                      result.estimatorStats[i]);
    }
    if (options_.profileStatic)
        ckpt.addState("static_profile", 1, result.staticProfile);
    if (source.checkpointable())
        ckpt.addComponent("source", source);

    // A failed periodic write (ENOSPC, failed fsync, injected fault)
    // degrades checkpoint freshness, not the simulation: the atomic
    // writer never publishes a partial file, so the previous
    // generation stays loadable and the run carries on. Cancellation
    // still propagates — it comes from the token, not the disk.
    try {
        ckptStore_->write(ckpt);
    } catch (const std::exception &e) {
        if (categoryOf(e) == ErrorCategory::kCancelled)
            throw;
        if (options_.telemetry != nullptr) {
            options_.telemetry->registry().increment("ckpt.write_failed");
            options_.telemetry->emit(TelemetryEvent(
                events::kCheckpointWriteFailed,
                {field("benchmark", options_.telemetryLabel),
                 field("at_branch", ckpt.branches),
                 field("error", std::string(e.what()))}));
        }
        return;
    }
    ++result.checkpointsWritten;
}

DriverResult
SimulationDriver::runImpl(TraceSource &source,
                          const Checkpoint *resume_from)
{
    DriverResult result;
    result.estimatorStats.reserve(estimators_.size());
    for (const auto *estimator : estimators_)
        result.estimatorStats.emplace_back(estimator->numBuckets());

    // Per-branch attribution: observation only (PC, mispredict flag,
    // and the bucket the loop already computed), so results are
    // bit-identical whether the profile is on or off.
    BranchProfile *profile = nullptr;
    if (options_.profileBranches) {
        std::vector<BranchProfileEstimatorInfo> infos;
        infos.reserve(estimators_.size());
        for (const auto *estimator : estimators_) {
            infos.push_back({estimator->name(),
                             estimator->numBuckets(),
                             estimator->bucketsAreOrdered()});
        }
        result.branchProfile.configure(options_.branchProfile,
                                       std::move(infos));
        profile = &result.branchProfile;
    }

    // Architectural context registers, maintained by the driver so all
    // estimators see identical history regardless of predictor type.
    HistoryRegister bhr(options_.bhrBits);
    ShiftRegister gcir(options_.gcirBits, 0);

    BranchRecord record;
    BranchContext ctx;
    ctx.bhrBits = options_.bhrBits;
    ctx.gcirBits = options_.gcirBits;

    std::uint64_t simulated = 0;
    std::uint64_t until_switch = options_.contextSwitchInterval;

    // Unconditional record watermark: how many records this run has
    // consumed from the source, including non-conditional ones. This is
    // the position a resumed run must regain before simulating, so it
    // counts every record even when the watchdog (which has its own
    // conditionally-incremented counter) is off.
    std::uint64_t consumed = 0;

    if (resume_from != nullptr) {
        const CheckpointComponent *meta =
            resume_from->find("driver:meta");
        if (meta == nullptr)
            fatal(ErrorCategory::kCheckpoint, "checkpoint has no driver:meta component");
        if (meta->version != 1) {
            fatal(ErrorCategory::kCheckpoint, "driver:meta is version " +
                  std::to_string(meta->version) + ", expected 1");
        }
        StateReader in(meta->payload);
        in.expectU64(options_.bhrBits, "checkpoint BHR width");
        in.expectU64(options_.gcirBits, "checkpoint GCIR width");
        in.expectU64(estimators_.size(), "checkpoint estimator count");
        in.expectU64(options_.profileStatic ? 1 : 0,
                     "checkpoint static-profile flag");
        until_switch = in.getU64();
        bhr.setValue(in.getU64());
        gcir.set(in.getU64());
        result.branches = in.getU64();
        result.mispredicts = in.getU64();
        result.contextSwitches = in.getU64();
        if (!in.atEnd())
            fatal(ErrorCategory::kCheckpoint, "driver:meta has unconsumed bytes");

        resume_from->restoreComponent(
            predictorComponentName(predictor_), predictor_);
        for (std::size_t i = 0; i < estimators_.size(); ++i) {
            resume_from->restoreComponent(
                estimatorComponentName(i, *estimators_[i]),
                *estimators_[i]);
            resume_from->restoreState(statsComponentName(i), 1,
                                      result.estimatorStats[i]);
        }
        if (options_.profileStatic) {
            resume_from->restoreState("static_profile", 1,
                                      result.staticProfile);
        }

        simulated = resume_from->branches;
        if (resume_from->find("source") != nullptr) {
            resume_from->restoreComponent("source", source);
        } else {
            // The source saved no position (not checkpointable), so
            // @p source must be a fresh deterministic stream: replay
            // and discard records up to the watermark.
            BranchRecord skipped;
            for (std::uint64_t i = 0; i < resume_from->watermark;
                 ++i) {
                if (!source.next(skipped)) {
                    fatal(ErrorCategory::kTrace, "trace ended after " + std::to_string(i) +
                          " record(s), before the resume watermark " +
                          std::to_string(resume_from->watermark));
                }
            }
        }
        consumed = resume_from->watermark;
    }

    // Cooperative watchdog: amortize the clock read over a batch of
    // records so the hot loop stays hot.
    using Clock = std::chrono::steady_clock;
    constexpr std::uint64_t kWatchdogStride = 8192;
    const CancellationToken *const cancel = options_.cancel;
    const bool hasLimit = options_.wallClockLimitMs != 0;
    const bool watchdog = hasLimit || cancel != nullptr;
    const Clock::time_point deadline =
        hasLimit ? Clock::now() + std::chrono::milliseconds(
                                      options_.wallClockLimitMs)
                 : Clock::time_point{};
    std::uint64_t records = 0;

    // Telemetry: sampled estimator-cost accumulators stay local to
    // this run (no locks in the loop); everything is merged/emitted
    // once at the end. With telemetry off, the loop only ever tests
    // `sample_countdown`, pre-set so the timing path is dead.
    Telemetry *const telemetry = options_.telemetry;
    const std::uint64_t sample_stride =
        std::max<std::uint64_t>(1, options_.telemetrySampleStride);
    std::uint64_t sample_countdown =
        telemetry != nullptr
            ? 1
            : std::numeric_limits<std::uint64_t>::max();
    if (telemetry != nullptr)
        result.estimatorUpdateNs.resize(estimators_.size());
    const Clock::time_point run_start = Clock::now();
    ScopedSpan run_span(options_.spans, "driver.run");

    while (source.next(record)) {
        ++consumed;
        if (watchdog && (++records % kWatchdogStride) == 0) {
            if (cancel != nullptr)
                cancel->throwIfCancelled("benchmark run");
            if (hasLimit && Clock::now() > deadline) {
                throw WatchdogTimeout(
                    "benchmark exceeded its wall-clock budget of " +
                    std::to_string(options_.wallClockLimitMs) +
                    " ms after " + std::to_string(records) + " records");
            }
        }
        if (!record.isConditional())
            continue;

        ctx.pc = record.pc;
        ctx.bhr = bhr.value();
        ctx.gcir = gcir.value();

        const bool predicted = predictor_.predict(record.pc);
        const bool correct = (predicted == record.taken);
        const bool recording =
            simulated >= options_.warmupBranches;

        if (recording) {
            ++result.branches;
            if (!correct)
                ++result.mispredicts;
        }

        // Confidence estimators: bucket is read with the pre-update
        // context; training sees the prediction's correctness.
        if (--sample_countdown == 0) {
            sample_countdown = sample_stride;
            for (std::size_t i = 0; i < estimators_.size(); ++i) {
                const Clock::time_point t0 = Clock::now();
                const std::uint64_t bucket =
                    estimators_[i]->bucketOf(ctx);
                if (recording)
                    result.estimatorStats[i].record(bucket, !correct);
                estimators_[i]->update(ctx, correct, record.taken);
                result.estimatorUpdateNs[i].add(
                    std::chrono::duration<double, std::nano>(
                        Clock::now() - t0)
                        .count());
                if (profile != nullptr && recording)
                    profile->onBucket(i, bucket, correct);
            }
        } else {
            for (std::size_t i = 0; i < estimators_.size(); ++i) {
                const std::uint64_t bucket =
                    estimators_[i]->bucketOf(ctx);
                if (recording)
                    result.estimatorStats[i].record(bucket, !correct);
                estimators_[i]->update(ctx, correct, record.taken);
                if (profile != nullptr && recording)
                    profile->onBucket(i, bucket, correct);
            }
        }

        if (options_.profileStatic && recording) {
            result.staticProfile.record(record.pc, !correct,
                                        record.taken);
        }
        if (profile != nullptr && recording)
            profile->onBranch(record.pc, !correct);

        // Predictor and architectural history train on the outcome.
        predictor_.update(record.pc, record.taken);
        bhr.recordOutcome(record.taken);
        gcir.shiftIn(!correct);
        ++simulated;

        // Context-switch modelling (Section 5.4): periodically restore
        // the microarchitectural structures to their power-on state.
        if (options_.contextSwitchInterval != 0 &&
            --until_switch == 0) {
            until_switch = options_.contextSwitchInterval;
            if (options_.flushPredictorOnSwitch)
                predictor_.reset();
            if (options_.flushEstimatorsOnSwitch) {
                for (auto *estimator : estimators_)
                    estimator->reset();
            }
            bhr.reset();
            gcir.clear();
            ++result.contextSwitches;
            if (telemetry != nullptr) {
                telemetry->emit(TelemetryEvent(
                    events::kContextSwitchFlush,
                    {field("benchmark", options_.telemetryLabel),
                     field("at_branch", simulated),
                     field("flush_predictor",
                           options_.flushPredictorOnSwitch),
                     field("flush_estimators",
                           options_.flushEstimatorsOnSwitch)}));
            }
        }

        // Periodic checkpoint (zero cost while disabled: one compare
        // on a member that is 0). Taken after all per-branch training,
        // so the snapshot is exactly the state the next branch sees.
        if (ckptEvery_ != 0 && simulated % ckptEvery_ == 0) {
            writeCheckpoint(source, result, simulated, consumed,
                            until_switch, bhr, gcir);
        }
    }

    result.wallMs = std::chrono::duration<double, std::milli>(
                        Clock::now() - run_start)
                        .count();

    if (telemetry != nullptr) {
        const std::uint64_t warmup_consumed =
            std::min(simulated, options_.warmupBranches);
        const double ns_per_branch =
            simulated == 0 ? 0.0
                           : result.wallMs * 1e6 /
                                 static_cast<double>(simulated);
        telemetry->emit(TelemetryEvent(
            events::kDriverRun,
            {field("benchmark", options_.telemetryLabel),
             field("branches", simulated),
             field("measured_branches", result.branches),
             field("warmup_branches", warmup_consumed),
             field("mispredicts", result.mispredicts),
             field("mispredict_rate", result.mispredictRate()),
             field("context_switches", result.contextSwitches),
             field("wall_ms", result.wallMs),
             field("ns_per_branch", ns_per_branch)}));

        MetricsRegistry &registry = telemetry->registry();
        registry.increment("driver.runs");
        registry.increment("driver.branches", simulated);
        registry.increment("driver.mispredicts", result.mispredicts);
        registry.observe("driver.wall_ms", result.wallMs);
        registry.observe("driver.ns_per_branch", ns_per_branch);
        for (std::size_t i = 0; i < estimators_.size(); ++i) {
            const RunningStats &cost = result.estimatorUpdateNs[i];
            if (cost.count() == 0)
                continue;
            telemetry->emit(TelemetryEvent(
                events::kEstimatorUpdateCost,
                {field("benchmark", options_.telemetryLabel),
                 field("estimator", estimators_[i]->name()),
                 field("samples", cost.count()),
                 field("mean_ns", cost.mean()),
                 field("min_ns", cost.min()),
                 field("max_ns", cost.max())}));
            registry.mergeStats("driver.estimator_update_ns." +
                                    estimators_[i]->name(),
                                cost);
        }
    }
    return result;
}

} // namespace confsim
