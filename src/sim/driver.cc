#include "sim/driver.h"

#include <chrono>

#include "predictor/history_register.h"
#include "sim/run_policy.h"
#include "util/shift_register.h"

namespace confsim {

SimulationDriver::SimulationDriver(
    BranchPredictor &predictor,
    std::vector<ConfidenceEstimator *> estimators, DriverOptions options)
    : predictor_(predictor), estimators_(std::move(estimators)),
      options_(options)
{}

DriverResult
SimulationDriver::run(TraceSource &source)
{
    DriverResult result;
    result.estimatorStats.reserve(estimators_.size());
    for (const auto *estimator : estimators_)
        result.estimatorStats.emplace_back(estimator->numBuckets());

    // Architectural context registers, maintained by the driver so all
    // estimators see identical history regardless of predictor type.
    HistoryRegister bhr(options_.bhrBits);
    ShiftRegister gcir(options_.gcirBits, 0);

    BranchRecord record;
    BranchContext ctx;
    ctx.bhrBits = options_.bhrBits;
    ctx.gcirBits = options_.gcirBits;

    std::uint64_t simulated = 0;
    std::uint64_t until_switch = options_.contextSwitchInterval;

    // Cooperative watchdog: amortize the clock read over a batch of
    // records so the hot loop stays hot.
    using Clock = std::chrono::steady_clock;
    constexpr std::uint64_t kWatchdogStride = 8192;
    const bool watchdog = options_.wallClockLimitMs != 0;
    const Clock::time_point deadline =
        watchdog ? Clock::now() + std::chrono::milliseconds(
                                      options_.wallClockLimitMs)
                 : Clock::time_point{};
    std::uint64_t records = 0;

    while (source.next(record)) {
        if (watchdog && (++records % kWatchdogStride) == 0 &&
            Clock::now() > deadline) {
            throw WatchdogTimeout(
                "benchmark exceeded its wall-clock budget of " +
                std::to_string(options_.wallClockLimitMs) +
                " ms after " + std::to_string(records) + " records");
        }
        if (!record.isConditional())
            continue;

        ctx.pc = record.pc;
        ctx.bhr = bhr.value();
        ctx.gcir = gcir.value();

        const bool predicted = predictor_.predict(record.pc);
        const bool correct = (predicted == record.taken);
        const bool recording =
            simulated >= options_.warmupBranches;

        if (recording) {
            ++result.branches;
            if (!correct)
                ++result.mispredicts;
        }

        // Confidence estimators: bucket is read with the pre-update
        // context; training sees the prediction's correctness.
        for (std::size_t i = 0; i < estimators_.size(); ++i) {
            const std::uint64_t bucket = estimators_[i]->bucketOf(ctx);
            if (recording)
                result.estimatorStats[i].record(bucket, !correct);
            estimators_[i]->update(ctx, correct, record.taken);
        }

        if (options_.profileStatic && recording) {
            result.staticProfile.record(record.pc, !correct,
                                        record.taken);
        }

        // Predictor and architectural history train on the outcome.
        predictor_.update(record.pc, record.taken);
        bhr.recordOutcome(record.taken);
        gcir.shiftIn(!correct);
        ++simulated;

        // Context-switch modelling (Section 5.4): periodically restore
        // the microarchitectural structures to their power-on state.
        if (options_.contextSwitchInterval != 0 &&
            --until_switch == 0) {
            until_switch = options_.contextSwitchInterval;
            if (options_.flushPredictorOnSwitch)
                predictor_.reset();
            if (options_.flushEstimatorsOnSwitch) {
                for (auto *estimator : estimators_)
                    estimator->reset();
            }
            bhr.reset();
            gcir.clear();
        }
    }
    return result;
}

} // namespace confsim
