#include "sim/suite_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <future>
#include <thread>

#include "ckpt/checkpoint_store.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "sim/sweep_engine.h"
#include "fault/fault_injection.h"
#include "trace/trace_io.h"
#include "util/cancellation.h"
#include "util/error.h"
#include "util/status.h"

namespace confsim {

SuiteRunner::SuiteRunner(BenchmarkSuite suite)
    : suite_(std::move(suite))
{}

namespace {

/** Milliseconds elapsed since @p start. */
double
elapsedMsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Shared cancellation/deadline state for one suite run. The token is
 * chained to the policy's external token (never mutated by us), so
 * cancel() here — fail-fast teardown — propagates to every benchmark's
 * driver/sweep poll site without touching the caller's object.
 */
struct SuiteContext
{
    CancellationToken token;
    std::chrono::steady_clock::time_point start;
    std::uint64_t deadlineMs = 0;

    explicit SuiteContext(const RunPolicy &policy)
        : token(policy.cancel),
          start(std::chrono::steady_clock::now()),
          deadlineMs(policy.deadlineMs)
    {}

    bool hasDeadline() const { return deadlineMs != 0; }

    /** Remaining suite budget in ms; 0 when exhausted. Only meaningful
     *  when hasDeadline(). */
    std::uint64_t
    remainingMs() const
    {
        const double used = elapsedMsSince(start);
        if (used >= static_cast<double>(deadlineMs))
            return 0;
        return deadlineMs - static_cast<std::uint64_t>(used);
    }

    /** Clip one attempt's per-benchmark watchdog to the remaining suite
     *  budget, so deadline expiry surfaces as a cooperative
     *  WatchdogTimeout inside the record loop rather than needing a
     *  reaper thread. */
    std::uint64_t
    clipWatchdogMs(std::uint64_t watchdog_ms) const
    {
        if (!hasDeadline())
            return watchdog_ms;
        const std::uint64_t remaining = remainingMs();
        if (watchdog_ms == 0)
            return remaining;
        return std::min(watchdog_ms, remaining);
    }
};

/**
 * Deterministic backoff before retry attempt @p attempt + 1 of the
 * benchmark named @p name: retryBackoffMs * 2^(attempt-1), jittered
 * into [0.75x, 1.25x] with a seed derived from the name and attempt so
 * concurrent retries decorrelate without making runs irreproducible.
 */
std::uint64_t
backoffDelayMs(std::uint64_t base, unsigned attempt,
               const std::string &name)
{
    if (base == 0)
        return 0;
    const unsigned shift = std::min(attempt - 1, 16u);
    const std::uint64_t exponential = base << shift;
    const std::uint64_t seed =
        std::hash<std::string>{}(name) ^
        (0x9e3779b97f4a7c15ULL * (attempt + 1));
    const std::uint64_t span = exponential / 2;
    const std::uint64_t low = exponential - exponential / 4;
    return low + (span == 0 ? 0 : seed % (span + 1));
}

/**
 * Sleep the category-aware retry backoff, capped by the remaining
 * suite budget and interruptible by cancellation. @return false when
 * the caller should stop retrying (cancelled, or budget exhausted).
 */
bool
sleepBeforeRetry(const RunPolicy &policy, const SuiteContext &ctx,
                 unsigned attempt, const std::string &name,
                 SpanTracer *spans)
{
    std::uint64_t delay =
        backoffDelayMs(policy.retryBackoffMs, attempt, name);
    if (ctx.hasDeadline()) {
        const std::uint64_t remaining = ctx.remainingMs();
        if (remaining == 0)
            return false;
        delay = std::min(delay, remaining);
    }
    if (delay == 0)
        return !ctx.token.cancelled();
    ScopedSpan span(spans, "retry.backoff");
    return interruptibleSleepMs(&ctx.token, delay);
}

/**
 * Size runSweep's shared worker pool. Unlike a lone engine's thread
 * resolution this is NOT capped at the configuration count: surplus
 * workers serve other benchmarks' concurrent sweep passes, which is
 * what fixes the under-subscription when configs < hardware threads.
 */
unsigned
resolveSweepPoolWorkers(unsigned requested)
{
    if (std::getenv("CONFSIM_SEQUENTIAL") != nullptr)
        return 1;
    unsigned workers = requested;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    return workers;
}

/**
 * How many benchmarks' sweep passes run concurrently. 0 auto-sizes:
 * enough slots that `slots * shards_per_benchmark` covers the pool.
 * CONFSIM_BENCH_PARALLEL overrides, CONFSIM_SEQUENTIAL forces 1.
 */
unsigned
resolveBenchParallel(unsigned requested, unsigned pool_workers,
                     std::size_t configs, std::size_t benchmarks)
{
    if (std::getenv("CONFSIM_SEQUENTIAL") != nullptr)
        return 1;
    if (const char *env = std::getenv("CONFSIM_BENCH_PARALLEL")) {
        char *end = nullptr;
        const long value = std::strtol(env, &end, 10);
        if (end != env && value >= 1)
            requested = static_cast<unsigned>(value);
    }
    unsigned slots = requested;
    if (slots == 0) {
        const unsigned per_bench = std::max(
            1u, std::min(pool_workers,
                         static_cast<unsigned>(configs)));
        slots = std::max(1u, pool_workers / per_bench);
    }
    if (benchmarks != 0 &&
        static_cast<std::size_t>(slots) > benchmarks)
        slots = static_cast<unsigned>(benchmarks);
    return std::max(1u, slots);
}

/**
 * Forward fault-injection and corrupt-chunk-skip notifications from a
 * benchmark's trace source into the telemetry event stream. Only the
 * outermost decorator is inspected; call sites that build deeper
 * stacks can install hooks on inner layers themselves.
 */
void
wireSourceTelemetry(TraceSource &source, Telemetry *telemetry,
                    const std::string &benchmark)
{
    if (telemetry == nullptr)
        return;
    if (auto *faults =
            dynamic_cast<FaultInjectingTraceSource *>(&source)) {
        faults->setEventHook([telemetry, benchmark](
                                 const char *kind,
                                 std::uint64_t delivered) {
            telemetry->emit(TelemetryEvent(
                events::kFaultInjected,
                {field("benchmark", benchmark), field("kind", kind),
                 field("record", delivered)}));
            telemetry->registry().increment(std::string("faults.") +
                                            kind);
        });
    }
    if (auto *reader = dynamic_cast<TraceFileReader *>(&source)) {
        reader->setCorruptionHook(
            [telemetry, benchmark](const std::string &what,
                                   std::uint64_t chunk,
                                   std::uint64_t dropped) {
                telemetry->emit(TelemetryEvent(
                    events::kCorruptChunkSkipped,
                    {field("benchmark", benchmark),
                     field("what", what), field("chunk", chunk),
                     field("dropped_records", dropped)}));
                telemetry->registry().increment(
                    "trace.corrupt_chunks_skipped");
            });
    }
}

/**
 * Forward checkpoint-store activity (generation writes, corrupt files
 * skipped during recovery) into the telemetry event stream.
 */
void
wireStoreTelemetry(CheckpointStore &store, Telemetry *telemetry,
                   const std::string &benchmark)
{
    if (telemetry == nullptr)
        return;
    store.setEventHook([telemetry, benchmark](
                           const CheckpointStoreEvent &event) {
        if (event.kind == CheckpointStoreEvent::Kind::Written) {
            telemetry->emit(TelemetryEvent(
                events::kCheckpointWritten,
                {field("benchmark", benchmark),
                 field("generation", event.generation),
                 field("at_branch", event.atBranch),
                 field("bytes", event.bytes),
                 field("path", event.path)}));
            telemetry->registry().increment("ckpt.written");
        } else {
            telemetry->emit(TelemetryEvent(
                events::kCheckpointCorrupt,
                {field("benchmark", benchmark),
                 field("generation", event.generation),
                 field("error", event.detail)}));
            telemetry->registry().increment("ckpt.corrupt");
        }
    });
}

/** Emit the checkpoint_restored event (generation 0 = done-marker). */
void
emitRestored(Telemetry *telemetry, const std::string &benchmark,
             std::uint64_t generation, std::uint64_t at_branch)
{
    if (telemetry == nullptr)
        return;
    telemetry->emit(TelemetryEvent(
        events::kCheckpointRestored,
        {field("benchmark", benchmark),
         field("generation", generation),
         field("at_branch", at_branch)}));
    telemetry->registry().increment("ckpt.restored");
}

/**
 * Pack a finished benchmark's full result into a checkpoint for the
 * store's done-marker, so a resumed suite run reuses it without
 * re-simulating. Everything the compositing pass reads is included.
 */
Checkpoint
serializeBenchmarkResult(const BenchmarkRunResult &result)
{
    Checkpoint ckpt;
    ckpt.label = result.name;
    ckpt.branches = result.branches;
    StateWriter out;
    out.putString(result.name);
    out.putU64(result.branches);
    out.putU64(result.mispredicts);
    out.putF64(result.mispredictRate);
    out.putF64(result.wallMs);
    out.putU64(result.attempts);
    out.putU64(result.estimatorNames.size());
    for (const auto &name : result.estimatorNames)
        out.putString(name);
    out.putU64(result.estimatorStats.size());
    for (const auto &stats : result.estimatorStats) {
        out.putU64(stats.numBuckets());
        stats.saveState(out);
    }
    result.staticStats.saveState(out);
    ckpt.add("suite:result", 1, out.take());
    return ckpt;
}

/** Unpack a serializeBenchmarkResult() done-marker; fatal() on damage. */
BenchmarkRunResult
deserializeBenchmarkResult(const Checkpoint &ckpt)
{
    const CheckpointComponent *entry = ckpt.find("suite:result");
    if (entry == nullptr) {
        fatal(ErrorCategory::kCheckpoint,
              "completed checkpoint has no suite:result component");
    }
    if (entry->version != 1) {
        fatal(ErrorCategory::kCheckpoint,
              "suite:result is version " +
                  std::to_string(entry->version) + ", expected 1");
    }
    StateReader in(entry->payload);
    BenchmarkRunResult result;
    result.name = in.getString();
    result.branches = in.getU64();
    result.mispredicts = in.getU64();
    result.mispredictRate = in.getF64();
    result.wallMs = in.getF64();
    result.attempts = static_cast<unsigned>(in.getU64());
    const std::uint64_t names = in.getU64();
    result.estimatorNames.reserve(names);
    for (std::uint64_t i = 0; i < names; ++i)
        result.estimatorNames.push_back(in.getString());
    const std::uint64_t stats_count = in.getU64();
    result.estimatorStats.reserve(stats_count);
    for (std::uint64_t i = 0; i < stats_count; ++i) {
        BucketStats stats(in.getU64());
        stats.loadState(in);
        result.estimatorStats.push_back(std::move(stats));
    }
    result.staticStats.loadState(in);
    if (!in.atEnd()) {
        fatal(ErrorCategory::kCheckpoint,
              "suite:result has unconsumed bytes");
    }
    return result;
}

/** The throwaway per-attempt simulation components of one benchmark. */
struct BenchmarkParts
{
    std::unique_ptr<BranchPredictor> predictor;
    std::vector<std::unique_ptr<ConfidenceEstimator>> estimators;
    std::vector<ConfidenceEstimator *> raw;
    std::unique_ptr<TraceSource> source;
};

/** Build fresh predictor/estimators/source for one attempt. */
BenchmarkParts
buildParts(const BenchmarkSuite &suite, std::size_t bench,
           const PredictorFactory &make_predictor,
           const EstimatorSetFactory &make_estimators,
           const SourceWrapper &wrap_source, Telemetry *telemetry,
           const std::string &bench_name)
{
    BenchmarkParts parts;
    parts.predictor = make_predictor();
    if (!parts.predictor)
        fatal(ErrorCategory::kConfig, "predictor factory returned null");
    parts.estimators = make_estimators();
    parts.raw.reserve(parts.estimators.size());
    for (auto &estimator : parts.estimators)
        parts.raw.push_back(estimator.get());
    parts.source = suite.makeGenerator(bench);
    if (wrap_source) {
        parts.source = wrap_source(bench, std::move(parts.source));
        if (!parts.source) {
            fatal(ErrorCategory::kConfig,
                  "source wrapper returned null for benchmark '" +
                      bench_name + "'");
        }
    }
    wireSourceTelemetry(*parts.source, telemetry, bench_name);
    return parts;
}

/** Simulate one benchmark of a suite run (one attempt). */
BenchmarkRunResult
runOneBenchmark(const BenchmarkSuite &suite, std::size_t bench,
                const PredictorFactory &make_predictor,
                const EstimatorSetFactory &make_estimators,
                const SourceWrapper &wrap_source,
                const DriverOptions &options, const RunPolicy &policy)
{
    BenchmarkRunResult bench_result;
    bench_result.name = suite.profile(bench).name;
    Telemetry *const telemetry = options.telemetry;

    std::unique_ptr<CheckpointStore> store;
    if (policy.checkpoint.enabled()) {
        store = std::make_unique<CheckpointStore>(
            policy.checkpoint.directory, bench_result.name,
            policy.checkpoint.keepGenerations);
        wireStoreTelemetry(*store, telemetry, bench_result.name);
        store->setSpanTracer(options.spans);
        if (policy.checkpoint.resume) {
            if (auto done = store->loadCompleted()) {
                try {
                    BenchmarkRunResult restored =
                        deserializeBenchmarkResult(*done);
                    emitRestored(telemetry, bench_result.name, 0,
                                 restored.branches);
                    return restored;
                } catch (const std::exception &e) {
                    // The done-marker verified its CRC but does not
                    // decode under this configuration; re-simulate.
                    if (telemetry != nullptr) {
                        telemetry->emit(TelemetryEvent(
                            events::kCheckpointCorrupt,
                            {field("benchmark", bench_result.name),
                             field("generation", std::uint64_t{0}),
                             field("error", e.what())}));
                        telemetry->registry().increment(
                            "ckpt.corrupt");
                    }
                }
            }
        }
    }

    BenchmarkParts parts =
        buildParts(suite, bench, make_predictor, make_estimators,
                   wrap_source, telemetry, bench_result.name);
    // Names come from this run's own instances, so the factories are
    // invoked exactly once per benchmark attempt (unless a corrupt
    // checkpoint forces a rebuild below).
    bench_result.estimatorNames.reserve(parts.estimators.size());
    for (const auto &estimator : parts.estimators)
        bench_result.estimatorNames.push_back(estimator->name());

    DriverOptions run_options = options;
    run_options.telemetryLabel = bench_result.name;

    DriverResult run_result;
    bool resumed = false;
    if (store != nullptr && policy.checkpoint.resume) {
        // Walk generations newest-first; a file that fails CRC fires a
        // Corrupt event from the store itself, and a file that decodes
        // but cannot be restored (e.g. config drift) is reported here.
        // Either way recovery falls back one generation; when no
        // generation survives, the benchmark re-runs from scratch.
        for (const std::uint64_t gen : store->generations()) {
            std::optional<Checkpoint> ckpt = store->load(gen);
            if (!ckpt.has_value())
                continue;
            try {
                SimulationDriver driver(*parts.predictor, parts.raw,
                                        run_options);
                driver.checkpointEvery(policy.checkpoint.everyBranches,
                                       store.get());
                run_result = driver.resume(*parts.source, *ckpt);
                emitRestored(telemetry, bench_result.name, gen,
                             ckpt->branches);
                resumed = true;
                break;
            } catch (const WatchdogTimeout &) {
                throw;
            } catch (const std::exception &e) {
                if (telemetry != nullptr) {
                    telemetry->emit(TelemetryEvent(
                        events::kCheckpointCorrupt,
                        {field("benchmark", bench_result.name),
                         field("generation", gen),
                         field("error", e.what())}));
                    telemetry->registry().increment("ckpt.corrupt");
                }
                // A failed restore may have half-mutated the
                // components; rebuild them before the next candidate.
                parts = buildParts(suite, bench, make_predictor,
                                   make_estimators, wrap_source,
                                   telemetry, bench_result.name);
            }
        }
    }
    if (!resumed) {
        SimulationDriver driver(*parts.predictor, parts.raw,
                                run_options);
        if (store != nullptr) {
            driver.checkpointEvery(policy.checkpoint.everyBranches,
                                   store.get());
        }
        run_result = driver.run(*parts.source);
    }

    bench_result.wallMs = run_result.wallMs;
    bench_result.branches = run_result.branches;
    bench_result.mispredicts = run_result.mispredicts;
    bench_result.mispredictRate = run_result.mispredictRate();
    bench_result.estimatorStats = std::move(run_result.estimatorStats);
    bench_result.branchProfile = std::move(run_result.branchProfile);

    if (options.profileStatic) {
        // Re-key per-PC entries so distinct benchmarks never alias.
        const std::uint64_t tag = static_cast<std::uint64_t>(bench)
                                  << 48;
        for (const auto &[pc, entry] :
             run_result.staticProfile.entries()) {
            bench_result.staticStats.recordAggregate(
                tag | pc, static_cast<double>(entry.executions),
                static_cast<double>(entry.mispredictions));
        }
    }

    if (store != nullptr) {
        // Mark the benchmark complete: the done-marker carries the
        // full result, so a resumed suite run skips this benchmark
        // entirely. Mid-run generations are then dead weight.
        store->writeCompleted(serializeBenchmarkResult(bench_result));
        store->removeGenerations();
    }
    return bench_result;
}

/**
 * Run one benchmark under the policy: exceptions become the result's
 * error field, transient failures get bounded retries with exponential
 * backoff, and terminal categories — watchdog timeouts, cancellation,
 * configuration errors (Error::retryable() == false) — fail
 * immediately regardless of maxAttempts. Never throws, so a failure
 * cannot wedge the worker pool.
 */
BenchmarkRunResult
runGuardedImpl(const BenchmarkSuite &suite, std::size_t bench,
               const PredictorFactory &make_predictor,
               const EstimatorSetFactory &make_estimators,
               const SourceWrapper &wrap_source,
               const DriverOptions &options, const RunPolicy &policy,
               const SuiteContext &ctx)
{
    Telemetry *const telemetry = options.telemetry;
    const std::string bench_name = suite.profile(bench).name;
    const std::string span_name = "bench:" + bench_name;
    ScopedSpan bench_span(options.spans, span_name.c_str());
    const auto start = std::chrono::steady_clock::now();
    if (telemetry != nullptr) {
        telemetry->emit(
            TelemetryEvent(events::kBenchmarkStarted,
                           {field("benchmark", bench_name)}));
    }
    const unsigned max_attempts = std::max(1u, policy.maxAttempts);
    BenchmarkRunResult failed;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        // A benchmark the suite deadline beat to the start line is
        // marked cancelled without consuming a simulation attempt.
        if (ctx.hasDeadline() && ctx.remainingMs() == 0) {
            failed = BenchmarkRunResult{};
            failed.name = bench_name;
            failed.error = "suite deadline of " +
                           std::to_string(ctx.deadlineMs) +
                           " ms exhausted";
            failed.errorCategory = ErrorCategory::kCancelled;
            failed.cancelled = true;
            failed.attempts = attempt;
            break;
        }
        DriverOptions attempt_options = options;
        attempt_options.cancel = &ctx.token;
        attempt_options.wallClockLimitMs =
            ctx.clipWatchdogMs(options.wallClockLimitMs);
        bool retryable = false;
        try {
            BenchmarkRunResult ok =
                runOneBenchmark(suite, bench, make_predictor,
                                make_estimators, wrap_source,
                                attempt_options, policy);
            ok.attempts = attempt;
            ok.wallMs = elapsedMsSince(start);
            return ok;
        } catch (const WatchdogTimeout &e) {
            failed = BenchmarkRunResult{};
            failed.name = bench_name;
            failed.error = e.what();
            failed.errorCategory = ErrorCategory::kTimeout;
            failed.attempts = attempt;
            failed.wallMs = elapsedMsSince(start);
            if (telemetry != nullptr) {
                telemetry->emit(TelemetryEvent(
                    events::kWatchdogTimeout,
                    {field("benchmark", bench_name),
                     field("attempt",
                           static_cast<std::uint64_t>(attempt)),
                     field("error", failed.error)}));
                telemetry->registry().increment(
                    "suite.watchdog_timeouts");
            }
            return failed;
        } catch (const std::exception &e) {
            failed = BenchmarkRunResult{};
            failed.name = bench_name;
            failed.error = e.what();
            failed.errorCategory = categoryOf(e);
            failed.cancelled =
                failed.errorCategory == ErrorCategory::kCancelled;
            failed.attempts = attempt;
            retryable = isRetryable(e);
        } catch (...) {
            failed = BenchmarkRunResult{};
            failed.name = bench_name;
            failed.error = "unknown exception";
            failed.attempts = attempt;
            retryable = true;
        }
        if (!retryable)
            break;
        if (attempt < max_attempts) {
            if (telemetry != nullptr) {
                telemetry->emit(TelemetryEvent(
                    events::kBenchmarkRetry,
                    {field("benchmark", bench_name),
                     field("attempt",
                           static_cast<std::uint64_t>(attempt)),
                     field("error", failed.error)}));
                telemetry->registry().increment("suite.retries");
            }
            if (!sleepBeforeRetry(policy, ctx, attempt, bench_name,
                                  options.spans))
                break; // cancelled (or budget gone) mid-backoff
        }
    }
    failed.wallMs = elapsedMsSince(start);
    return failed;
}

/**
 * runGuardedImpl plus completion telemetry. The benchmark_finished
 * event is emitted here, as each benchmark completes, so progress
 * sinks (stderr heartbeat) see results live during parallel runs
 * rather than a burst after the join barrier. Telemetry::emit and
 * MetricsRegistry are thread-safe, so workers emit directly.
 */
BenchmarkRunResult
runGuarded(const BenchmarkSuite &suite, std::size_t bench,
           const PredictorFactory &make_predictor,
           const EstimatorSetFactory &make_estimators,
           const SourceWrapper &wrap_source,
           const DriverOptions &options, const RunPolicy &policy,
           const SuiteContext &ctx)
{
    BenchmarkRunResult bench_result =
        runGuardedImpl(suite, bench, make_predictor, make_estimators,
                       wrap_source, options, policy, ctx);
    if (Telemetry *const telemetry = options.telemetry) {
        telemetry->emit(TelemetryEvent(
            events::kBenchmarkFinished,
            {field("benchmark", bench_result.name),
             field("wall_ms", bench_result.wallMs),
             field("attempts",
                   static_cast<std::uint64_t>(bench_result.attempts)),
             field("branches", bench_result.branches),
             field("mispredicts", bench_result.mispredicts),
             field("mispredict_rate", bench_result.mispredictRate),
             field("error", bench_result.error),
             field("error_category",
                   bench_result.failed()
                       ? toString(bench_result.errorCategory)
                       : "")}));
        MetricsRegistry &registry = telemetry->registry();
        registry.increment("suite.benchmarks");
        registry.observe("suite.bench_wall_ms", bench_result.wallMs);
        if (bench_result.failed())
            registry.increment("suite.failures");
    }
    return bench_result;
}

/**
 * Fill a suite result's composites (Section 1.2 equal-weight) from its
 * per-benchmark entries: the per-estimator equal-weight curves, the
 * re-weighted static profile, the composite misprediction rate, and
 * the degraded flag. Shared by the sequential and sweep paths so both
 * composite identically. @return the survivor count.
 */
std::size_t
computeComposites(SuiteRunResult &result, bool profile_static,
                  std::size_t suite_size)
{
    // A benchmark that ran but recorded nothing (e.g. the warmup
    // window covers the whole trace) has no rate or bucket mass to
    // contribute; folding it in would average a meaningless 0.0 into
    // the composite rate and trip EqualWeightComposite's zero-refs
    // check. Exclude it from every composite and mark the result
    // degraded-composite instead.
    const auto zero_record = [](const BenchmarkRunResult &b) {
        return !b.failed() && b.branches == 0;
    };

    double rate_sum = 0.0;
    std::size_t survivors = 0;
    std::size_t counted = 0;
    for (const auto &bench_result : result.perBenchmark) {
        if (!bench_result.failed()) {
            ++survivors;
            if (!zero_record(bench_result)) {
                rate_sum += bench_result.mispredictRate;
                ++counted;
            } else {
                ++result.zeroRecordBenchmarks;
            }
        }
    }
    result.degraded = survivors != suite_size;
    result.compositeDegraded =
        result.degraded || counted != suite_size;

    // Composites are equal-weight over the surviving recorded subset.
    const BenchmarkRunResult *first_ok = nullptr;
    for (const auto &bench_result : result.perBenchmark) {
        if (!bench_result.failed() && !zero_record(bench_result)) {
            first_ok = &bench_result;
            break;
        }
    }
    if (first_ok == nullptr)
        return survivors;

    result.estimatorNames = first_ok->estimatorNames;
    const std::size_t num_estimators = result.estimatorNames.size();
    for (std::size_t e = 0; e < num_estimators; ++e) {
        EqualWeightComposite composite(
            first_ok->estimatorStats[e].numBuckets());
        for (const auto &bench_result : result.perBenchmark) {
            if (!bench_result.failed() && !zero_record(bench_result))
                composite.add(bench_result.estimatorStats[e]);
        }
        result.compositeEstimatorStats.push_back(composite.result());
    }

    if (profile_static) {
        constexpr double kCommonMass = 1e6;
        for (const auto &bench_result : result.perBenchmark) {
            if (bench_result.failed() || zero_record(bench_result))
                continue;
            const double refs = bench_result.staticStats.totalRefs();
            if (refs > 0.0) {
                result.compositeStaticStats.addWeighted(
                    bench_result.staticStats, kCommonMass / refs);
            }
        }
    }

    result.compositeMispredictRate =
        counted == 0 ? 0.0
                     : rate_sum / static_cast<double>(counted);
    return survivors;
}

} // namespace

SuiteRunResult
SuiteRunner::run(const PredictorFactory &make_predictor,
                 const EstimatorSetFactory &make_estimators,
                 DriverOptions options, RunPolicy policy) const
{
    SuiteRunResult result;
    if (policy.watchdogMs != 0)
        options.wallClockLimitMs = policy.watchdogMs;
    const bool fail_fast = policy.errorMode == ErrorMode::kFailFast;
    SuiteContext ctx(policy);

    // Benchmarks are independent; fan them out. Results are collected
    // in suite order, so output is identical to a sequential run —
    // including which failure fail-fast reports (always the first in
    // suite order, regardless of completion order).
    const bool sequential =
        std::getenv("CONFSIM_SEQUENTIAL") != nullptr ||
        std::thread::hardware_concurrency() <= 1;

    Telemetry *const telemetry = options.telemetry;
    const auto suite_start = std::chrono::steady_clock::now();
    if (telemetry != nullptr) {
        telemetry->emit(TelemetryEvent(
            events::kSuiteRunStarted,
            {field("benchmarks",
                   static_cast<std::uint64_t>(suite_.size())),
             field("error_mode",
                   fail_fast ? "fail_fast" : "continue_on_error"),
             field("max_attempts",
                   static_cast<std::uint64_t>(
                       std::max(1u, policy.maxAttempts))),
             field("watchdog_ms", options.wallClockLimitMs),
             field("parallel", !sequential)}));
    }

    std::vector<BenchmarkRunResult> bench_results(suite_.size());
    if (sequential) {
        for (std::size_t bench = 0; bench < suite_.size(); ++bench) {
            bench_results[bench] =
                runGuarded(suite_, bench, make_predictor,
                           make_estimators, sourceWrapper_, options,
                           policy, ctx);
            if (fail_fast && bench_results[bench].failed())
                break; // the loud rethrow below picks this up
        }
    } else {
        std::vector<std::future<BenchmarkRunResult>> futures;
        futures.reserve(suite_.size());
        for (std::size_t bench = 0; bench < suite_.size(); ++bench) {
            futures.push_back(std::async(
                std::launch::async, [&, bench] {
                    BenchmarkRunResult bench_result = runGuarded(
                        suite_, bench, make_predictor, make_estimators,
                        sourceWrapper_, options, policy, ctx);
                    // Fail-fast teardown: cancel the run token so
                    // sibling benchmarks unwind at their next
                    // cooperative poll instead of simulating to
                    // completion only to be discarded.
                    if (fail_fast && bench_result.failed() &&
                        !bench_result.cancelled)
                        ctx.token.cancel();
                    return bench_result;
                }));
        }
        for (std::size_t bench = 0; bench < suite_.size(); ++bench)
            bench_results[bench] = futures[bench].get();
    }

    if (fail_fast) {
        // Surface the root cause: the first non-cancelled failure in
        // suite order. Cancelled entries are teardown collateral (or,
        // when every failure is a cancellation, an external cancel /
        // suite deadline — then the first of those is the cause).
        const BenchmarkRunResult *culprit = nullptr;
        for (const auto &bench_result : bench_results) {
            if (bench_result.failed() && !bench_result.cancelled) {
                culprit = &bench_result;
                break;
            }
        }
        if (culprit == nullptr) {
            for (const auto &bench_result : bench_results) {
                if (bench_result.failed()) {
                    culprit = &bench_result;
                    break;
                }
            }
        }
        if (culprit != nullptr) {
            if (telemetry != nullptr) {
                std::uint64_t failures = 0;
                for (const auto &other : bench_results)
                    failures += other.failed() ? 1 : 0;
                telemetry->emit(TelemetryEvent(
                    events::kSuiteRunFinished,
                    {field("wall_ms", elapsedMsSince(suite_start)),
                     field("degraded", true),
                     field("failed_benchmarks", failures),
                     field("survivors", std::uint64_t{0}),
                     field("error", culprit->error)}));
                // Flush now: if the caller doesn't catch the
                // fatal() exception, std::terminate skips
                // unwinding and buffered sink tails (including
                // the event above) would be lost.
                telemetry->finish();
            }
            fatal(culprit->errorCategory,
                  "benchmark '" + culprit->name +
                      "' failed: " + culprit->error);
        }
    }

    for (auto &bench_result : bench_results)
        result.perBenchmark.push_back(std::move(bench_result));
    const std::size_t survivors =
        computeComposites(result, options.profileStatic,
                          suite_.size());

    if (options.profileBranches) {
        // Re-key per-PC entries with the same (bench << 48) tag the
        // static composite uses, so totals are exact sums over the
        // surviving benchmarks.
        for (std::size_t bench = 0; bench < result.perBenchmark.size();
             ++bench) {
            const auto &bench_result = result.perBenchmark[bench];
            if (!bench_result.failed()) {
                result.branchProfile.mergeFrom(
                    bench_result.branchProfile,
                    static_cast<std::uint64_t>(bench) << 48);
            }
        }
    }

    result.wallMs = elapsedMsSince(suite_start);
    if (telemetry != nullptr) {
        telemetry->emit(TelemetryEvent(
            events::kSuiteRunFinished,
            {field("wall_ms", result.wallMs),
             field("composite_mispredict_rate",
                   result.compositeMispredictRate),
             field("degraded", result.degraded),
             field("failed_benchmarks",
                   static_cast<std::uint64_t>(
                       result.failedBenchmarks())),
             field("zero_record_benchmarks",
                   static_cast<std::uint64_t>(
                       result.zeroRecordBenchmarks)),
             field("survivors",
                   static_cast<std::uint64_t>(survivors))}));
        telemetry->registry().observe("suite.wall_ms", result.wallMs);
    }
    return result;
}

SweepSuiteResult
SuiteRunner::runSweep(const std::vector<SweepConfiguration> &configs,
                      DriverOptions options, SweepOptions sweep,
                      RunPolicy policy) const
{
    if (configs.empty()) {
        fatal(ErrorCategory::kConfig,
              "runSweep needs at least one configuration");
    }
    if (policy.watchdogMs != 0)
        options.wallClockLimitMs = policy.watchdogMs;
    const bool fail_fast = policy.errorMode == ErrorMode::kFailFast;
    SuiteContext ctx(policy);
    Telemetry *const telemetry = options.telemetry;
    const auto sweep_start = std::chrono::steady_clock::now();

    SweepSuiteResult result;
    result.labels.reserve(configs.size());
    for (const auto &config : configs)
        result.labels.push_back(config.label);
    result.perConfig.resize(configs.size());

    // One globally sized worker pool is shared by every benchmark's
    // sweep pass. Each pass shards its configurations over at most
    // min(pool, configs) workers; when that leaves workers idle,
    // additional benchmarks run their passes concurrently on the
    // same pool (bench_slots > 1) instead of leaving cores idle.
    // A caller-provided SweepOptions::pool (e.g. the sweep service
    // running many tenants' jobs over one host-sized pool) is used
    // as-is and never destroyed here; otherwise runSweep owns a pool
    // sized from sweep.threads.
    SweepWorkerPool *const shared_pool = sweep.pool;
    const unsigned pool_workers =
        shared_pool != nullptr
            ? std::max(1u, shared_pool->workers())
            : resolveSweepPoolWorkers(sweep.threads);
    std::unique_ptr<SweepWorkerPool> pool;
    SweepOptions engine_sweep = sweep;
    engine_sweep.pool = shared_pool;
    // Continue-on-error isolates failures at configuration granularity
    // too: one configuration's fault freezes only that configuration
    // while the rest of the pass stays bit-exact (sweep_engine.h).
    engine_sweep.isolateConfigFailures = !fail_fast;
    if (shared_pool == nullptr && pool_workers > 1) {
        pool = std::make_unique<SweepWorkerPool>(pool_workers);
        engine_sweep.pool = pool.get();
    }
    const unsigned bench_slots = resolveBenchParallel(
        sweep.benchParallel, pool_workers, configs.size(),
        suite_.size());

    // Phase 1: every benchmark's sweep pass produces an outcome —
    // either a SweepRunResult or an error string. Error isolation,
    // retries, watchdog handling, and checkpoint/resume are all
    // per-benchmark, so outcomes are independent and may be computed
    // concurrently; merging (phase 2) stays in suite order.
    struct BenchOutcome
    {
        std::string error;
        ErrorCategory category = ErrorCategory::kInternal;
        bool cancelled = false;
        SweepRunResult sweep;
    };
    std::vector<BenchOutcome> outcomes(suite_.size());

    const auto run_bench = [&](std::size_t bench) {
        const std::string bench_name = suite_.profile(bench).name;
        const std::string span_name = "bench:" + bench_name;
        ScopedSpan bench_span(options.spans, span_name.c_str());
        DriverOptions run_options = options;
        run_options.telemetryLabel = bench_name;
        run_options.cancel = &ctx.token;

        std::unique_ptr<CheckpointStore> store;
        if (policy.checkpoint.enabled()) {
            // A distinct store label keeps sweep generations from
            // colliding with sequential-run checkpoints of the same
            // benchmark in a shared directory (the formats differ).
            store = std::make_unique<CheckpointStore>(
                policy.checkpoint.directory, bench_name + "-sweep",
                policy.checkpoint.keepGenerations);
            wireStoreTelemetry(*store, telemetry, bench_name);
            store->setSpanTracer(options.spans);
        }

        const auto build_source = [&] {
            std::unique_ptr<TraceSource> source =
                suite_.makeGenerator(bench);
            if (sourceWrapper_) {
                source = sourceWrapper_(bench, std::move(source));
                if (!source) {
                    fatal(ErrorCategory::kConfig,
                          "source wrapper returned null for "
                          "benchmark '" +
                              bench_name + "'");
                }
            }
            wireSourceTelemetry(*source, telemetry, bench_name);
            return source;
        };

        BenchOutcome &outcome = outcomes[bench];
        std::string &error = outcome.error;
        SweepRunResult &bench_sweep = outcome.sweep;
        const unsigned max_attempts = std::max(1u, policy.maxAttempts);
        for (unsigned attempt = 1; attempt <= max_attempts;
             ++attempt) {
            // Cancelled (fail-fast teardown, external token) or
            // deadline-starved benchmarks stop before simulating.
            if (ctx.token.cancelled()) {
                error = "sweep pass cancelled";
                outcome.category = ErrorCategory::kCancelled;
                outcome.cancelled = true;
                break;
            }
            if (ctx.hasDeadline() && ctx.remainingMs() == 0) {
                error = "suite deadline of " +
                        std::to_string(ctx.deadlineMs) +
                        " ms exhausted";
                outcome.category = ErrorCategory::kCancelled;
                outcome.cancelled = true;
                break;
            }
            run_options.wallClockLimitMs =
                ctx.clipWatchdogMs(options.wallClockLimitMs);
            error.clear();
            outcome.category = ErrorCategory::kInternal;
            outcome.cancelled = false;
            bool retryable = false;
            try {
                SweepEngine engine(configs, run_options,
                                   engine_sweep);
                if (store != nullptr) {
                    engine.checkpointEvery(
                        policy.checkpoint.everyBranches, store.get());
                }
                std::unique_ptr<TraceSource> source = build_source();
                bool resumed = false;
                if (store != nullptr && policy.checkpoint.resume) {
                    // Newest valid generation wins; a generation that
                    // decodes but does not restore under this
                    // configuration falls back one generation (the
                    // engine rebuilds its states on every attempt, so
                    // only the source needs refreshing here).
                    for (const std::uint64_t gen :
                         store->generations()) {
                        std::optional<Checkpoint> ckpt =
                            store->load(gen);
                        if (!ckpt.has_value())
                            continue;
                        try {
                            bench_sweep =
                                engine.resume(*source, *ckpt);
                            emitRestored(telemetry, bench_name, gen,
                                         ckpt->branches);
                            resumed = true;
                            break;
                        } catch (const WatchdogTimeout &) {
                            throw;
                        } catch (const std::exception &e) {
                            if (telemetry != nullptr) {
                                telemetry->emit(TelemetryEvent(
                                    events::kCheckpointCorrupt,
                                    {field("benchmark", bench_name),
                                     field("generation", gen),
                                     field("error", e.what())}));
                                telemetry->registry().increment(
                                    "ckpt.corrupt");
                            }
                            source = build_source();
                        }
                    }
                }
                if (!resumed)
                    bench_sweep = engine.run(*source);
                break;
            } catch (const WatchdogTimeout &e) {
                error = e.what();
                outcome.category = ErrorCategory::kTimeout;
                if (telemetry != nullptr) {
                    telemetry->emit(TelemetryEvent(
                        events::kWatchdogTimeout,
                        {field("benchmark", bench_name),
                         field("attempt",
                               static_cast<std::uint64_t>(attempt)),
                         field("error", error)}));
                    telemetry->registry().increment(
                        "suite.watchdog_timeouts");
                }
                break; // terminal: re-running a blown budget loses too
            } catch (const std::exception &e) {
                error = e.what();
                outcome.category = categoryOf(e);
                outcome.cancelled =
                    outcome.category == ErrorCategory::kCancelled;
                retryable = isRetryable(e);
            } catch (...) {
                error = "unknown exception";
                retryable = true;
            }
            if (!retryable)
                break;
            if (attempt < max_attempts) {
                if (telemetry != nullptr) {
                    telemetry->emit(TelemetryEvent(
                        events::kBenchmarkRetry,
                        {field("benchmark", bench_name),
                         field("attempt",
                               static_cast<std::uint64_t>(attempt)),
                         field("error", error)}));
                    telemetry->registry().increment("suite.retries");
                }
                if (!sleepBeforeRetry(policy, ctx, attempt,
                                      bench_name, options.spans))
                    break; // cancelled mid-backoff
            }
        }

        if (error.empty() && store != nullptr) {
            // The benchmark finished; its mid-run generations are dead
            // weight (the sweep path keeps no done-markers — results
            // live in the returned SweepSuiteResult only).
            store->removeGenerations();
        }
    };

    if (bench_slots <= 1) {
        for (std::size_t bench = 0; bench < suite_.size(); ++bench) {
            run_bench(bench);
            // Fail-fast: nothing after the first failure will be
            // merged, so don't spend time simulating it.
            if (fail_fast && !outcomes[bench].error.empty())
                break;
        }
    } else {
        // Benchmark pipelining: bench_slots scheduler threads pull
        // benchmark indices; the replay work itself still runs on the
        // shared pool. Exceptions escaping a pass (e.g. a fatal store
        // failure) become that benchmark's error, mirroring what the
        // sequential path would surface.
        std::atomic<std::size_t> next{0};
        const auto pump = [&] {
            for (;;) {
                const std::size_t bench =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (bench >= suite_.size())
                    return;
                try {
                    run_bench(bench);
                } catch (const std::exception &e) {
                    outcomes[bench].error = e.what();
                    outcomes[bench].category = categoryOf(e);
                    outcomes[bench].cancelled =
                        outcomes[bench].category ==
                        ErrorCategory::kCancelled;
                } catch (...) {
                    outcomes[bench].error = "unknown exception";
                }
                // Fail-fast teardown: the first real failure cancels
                // the run token so sibling passes (and queued ones)
                // unwind instead of simulating doomed work.
                if (fail_fast && !outcomes[bench].error.empty() &&
                    !outcomes[bench].cancelled)
                    ctx.token.cancel();
            }
        };
        std::vector<std::thread> schedulers;
        const unsigned spawned = std::min<unsigned>(
            bench_slots, static_cast<unsigned>(suite_.size()));
        schedulers.reserve(spawned);
        for (unsigned s = 0; s < spawned; ++s)
            schedulers.emplace_back(pump);
        for (auto &thread : schedulers)
            thread.join();
    }

    // Fail-fast surfaces the root cause: the first non-cancelled
    // failure in suite order (cancelled entries are teardown
    // collateral; when every failure is a cancellation — external
    // cancel or suite deadline — the first of those is the cause).
    if (fail_fast) {
        const BenchOutcome *culprit = nullptr;
        std::size_t culprit_bench = 0;
        for (std::size_t bench = 0;
             bench < suite_.size() && culprit == nullptr; ++bench) {
            if (!outcomes[bench].error.empty() &&
                !outcomes[bench].cancelled) {
                culprit = &outcomes[bench];
                culprit_bench = bench;
            }
        }
        for (std::size_t bench = 0;
             bench < suite_.size() && culprit == nullptr; ++bench) {
            if (!outcomes[bench].error.empty()) {
                culprit = &outcomes[bench];
                culprit_bench = bench;
            }
        }
        if (culprit != nullptr) {
            if (telemetry != nullptr)
                telemetry->finish();
            fatal(culprit->category,
                  "benchmark '" + suite_.profile(culprit_bench).name +
                      "' failed: " + culprit->error);
        }
    }

    // Phase 2: merge outcomes in suite order — identical output
    // ordering and fail-fast semantics at any bench_slots value.
    for (std::size_t bench = 0; bench < suite_.size(); ++bench) {
        const std::string bench_name = suite_.profile(bench).name;
        BenchOutcome &outcome = outcomes[bench];

        if (!outcome.error.empty()) {
            // Every configuration consumed the same pass, so the
            // benchmark is failed for all of them.
            for (auto &config_result : result.perConfig) {
                BenchmarkRunResult failed;
                failed.name = bench_name;
                failed.error = outcome.error;
                failed.errorCategory = outcome.category;
                failed.cancelled = outcome.cancelled;
                config_result.perBenchmark.push_back(
                    std::move(failed));
            }
            continue;
        }

        SweepRunResult &bench_sweep = outcome.sweep;
        // The pass is shared across configurations; attribute an
        // equal share of its wall time to each so that summing over
        // configurations recovers (not multiplies) the real cost.
        // The un-divided pass time is observed once per benchmark as
        // sweep.bench_wall_ms (see docs/performance.md).
        const double wall_share =
            bench_sweep.wallMs /
            static_cast<double>(configs.size());
        if (telemetry != nullptr) {
            telemetry->registry().observe("sweep.bench_wall_ms",
                                          bench_sweep.wallMs);
        }
        const std::uint64_t tag = static_cast<std::uint64_t>(bench)
                                  << 48;
        for (std::size_t c = 0; c < configs.size(); ++c) {
            SweepConfigResult &config_result =
                bench_sweep.perConfig[c];
            BenchmarkRunResult bench_result;
            bench_result.name = bench_name;
            if (config_result.failed()) {
                // Isolated per-config failure: only this
                // configuration's composite degrades; the other
                // configurations' results from the same pass are
                // bit-exact and merged normally below.
                bench_result.error = config_result.error;
                result.perConfig[c].perBenchmark.push_back(
                    std::move(bench_result));
                continue;
            }
            bench_result.branches = config_result.branches;
            bench_result.mispredicts = config_result.mispredicts;
            bench_result.mispredictRate =
                config_result.mispredictRate();
            bench_result.estimatorStats =
                std::move(config_result.estimatorStats);
            bench_result.estimatorNames =
                std::move(config_result.estimatorNames);
            bench_result.branchProfile =
                std::move(config_result.branchProfile);
            bench_result.wallMs = wall_share;
            if (options.profileBranches) {
                result.perConfig[c].branchProfile.mergeFrom(
                    bench_result.branchProfile, tag);
            }
            if (options.profileStatic) {
                // Re-key per-PC entries exactly as run() does.
                for (const auto &[pc, entry] :
                     config_result.staticProfile.entries()) {
                    bench_result.staticStats.recordAggregate(
                        tag | pc,
                        static_cast<double>(entry.executions),
                        static_cast<double>(entry.mispredictions));
                }
            }
            result.perConfig[c].perBenchmark.push_back(
                std::move(bench_result));
        }
    }

    for (auto &config_result : result.perConfig) {
        computeComposites(config_result, options.profileStatic,
                          suite_.size());
        config_result.wallMs = elapsedMsSince(sweep_start);
    }
    result.wallMs = elapsedMsSince(sweep_start);
    if (telemetry != nullptr) {
        MetricsRegistry &registry = telemetry->registry();
        registry.observe("sweep.suite_wall_ms", result.wallMs);
        registry.setGauge("sweep.pool_workers",
                          static_cast<double>(pool_workers));
        registry.setGauge("sweep.bench_parallel",
                          static_cast<double>(bench_slots));
        if (pool != nullptr) {
            registry.mergeStats("sweep.pool_occupancy",
                                pool->occupancyStats());
        }
    }
    return result;
}

} // namespace confsim
