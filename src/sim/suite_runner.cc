#include "sim/suite_runner.h"

#include <algorithm>
#include <cstdlib>
#include <future>
#include <thread>

#include "util/status.h"

namespace confsim {

SuiteRunner::SuiteRunner(BenchmarkSuite suite)
    : suite_(std::move(suite))
{}

namespace {

/** Simulate one benchmark of a suite run (one attempt). */
BenchmarkRunResult
runOneBenchmark(const BenchmarkSuite &suite, std::size_t bench,
                const PredictorFactory &make_predictor,
                const EstimatorSetFactory &make_estimators,
                const SourceWrapper &wrap_source,
                const DriverOptions &options)
{
    auto predictor = make_predictor();
    if (!predictor)
        fatal("predictor factory returned null");
    auto estimators = make_estimators();
    std::vector<ConfidenceEstimator *> raw;
    raw.reserve(estimators.size());
    for (auto &estimator : estimators)
        raw.push_back(estimator.get());

    BenchmarkRunResult bench_result;
    bench_result.name = suite.profile(bench).name;
    // Names come from this run's own instances, so the factories are
    // invoked exactly once per benchmark attempt.
    bench_result.estimatorNames.reserve(estimators.size());
    for (const auto &estimator : estimators)
        bench_result.estimatorNames.push_back(estimator->name());

    std::unique_ptr<TraceSource> source = suite.makeGenerator(bench);
    if (wrap_source) {
        source = wrap_source(bench, std::move(source));
        if (!source)
            fatal("source wrapper returned null for benchmark '" +
                  bench_result.name + "'");
    }
    SimulationDriver driver(*predictor, raw, options);
    DriverResult run_result = driver.run(*source);

    bench_result.branches = run_result.branches;
    bench_result.mispredicts = run_result.mispredicts;
    bench_result.mispredictRate = run_result.mispredictRate();
    bench_result.estimatorStats = std::move(run_result.estimatorStats);

    if (options.profileStatic) {
        // Re-key per-PC entries so distinct benchmarks never alias.
        const std::uint64_t tag = static_cast<std::uint64_t>(bench)
                                  << 48;
        for (const auto &[pc, entry] :
             run_result.staticProfile.entries()) {
            bench_result.staticStats.recordAggregate(
                tag | pc, static_cast<double>(entry.executions),
                static_cast<double>(entry.mispredictions));
        }
    }
    return bench_result;
}

/**
 * Run one benchmark under the policy: exceptions become the result's
 * error field, transient failures get bounded retries, and watchdog
 * timeouts are terminal (re-running a blown budget just blows it
 * again). Never throws, so a failure cannot wedge the worker pool.
 */
BenchmarkRunResult
runGuarded(const BenchmarkSuite &suite, std::size_t bench,
           const PredictorFactory &make_predictor,
           const EstimatorSetFactory &make_estimators,
           const SourceWrapper &wrap_source,
           const DriverOptions &options, const RunPolicy &policy)
{
    const unsigned max_attempts = std::max(1u, policy.maxAttempts);
    BenchmarkRunResult failed;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        try {
            BenchmarkRunResult ok =
                runOneBenchmark(suite, bench, make_predictor,
                                make_estimators, wrap_source, options);
            ok.attempts = attempt;
            return ok;
        } catch (const WatchdogTimeout &e) {
            failed = BenchmarkRunResult{};
            failed.name = suite.profile(bench).name;
            failed.error = e.what();
            failed.attempts = attempt;
            return failed;
        } catch (const std::exception &e) {
            failed = BenchmarkRunResult{};
            failed.name = suite.profile(bench).name;
            failed.error = e.what();
            failed.attempts = attempt;
        } catch (...) {
            failed = BenchmarkRunResult{};
            failed.name = suite.profile(bench).name;
            failed.error = "unknown exception";
            failed.attempts = attempt;
        }
    }
    return failed;
}

} // namespace

SuiteRunResult
SuiteRunner::run(const PredictorFactory &make_predictor,
                 const EstimatorSetFactory &make_estimators,
                 DriverOptions options, RunPolicy policy) const
{
    SuiteRunResult result;
    if (policy.watchdogMs != 0)
        options.wallClockLimitMs = policy.watchdogMs;
    const bool fail_fast = policy.errorMode == ErrorMode::kFailFast;

    // Benchmarks are independent; fan them out. Results are collected
    // in suite order, so output is identical to a sequential run —
    // including which failure fail-fast reports (always the first in
    // suite order, regardless of completion order).
    const bool sequential =
        std::getenv("CONFSIM_SEQUENTIAL") != nullptr ||
        std::thread::hardware_concurrency() <= 1;

    std::vector<BenchmarkRunResult> bench_results(suite_.size());
    if (sequential) {
        for (std::size_t bench = 0; bench < suite_.size(); ++bench) {
            bench_results[bench] =
                runGuarded(suite_, bench, make_predictor,
                           make_estimators, sourceWrapper_, options,
                           policy);
            if (fail_fast && bench_results[bench].failed())
                break; // the loud rethrow below picks this up
        }
    } else {
        std::vector<std::future<BenchmarkRunResult>> futures;
        futures.reserve(suite_.size());
        for (std::size_t bench = 0; bench < suite_.size(); ++bench) {
            futures.push_back(std::async(
                std::launch::async, [&, bench] {
                    return runGuarded(suite_, bench, make_predictor,
                                      make_estimators, sourceWrapper_,
                                      options, policy);
                }));
        }
        for (std::size_t bench = 0; bench < suite_.size(); ++bench)
            bench_results[bench] = futures[bench].get();
    }

    if (fail_fast) {
        for (const auto &bench_result : bench_results) {
            if (bench_result.failed()) {
                fatal("benchmark '" + bench_result.name +
                      "' failed: " + bench_result.error);
            }
        }
    }

    double rate_sum = 0.0;
    std::size_t survivors = 0;
    for (auto &bench_result : bench_results) {
        if (!bench_result.failed()) {
            rate_sum += bench_result.mispredictRate;
            ++survivors;
        }
        result.perBenchmark.push_back(std::move(bench_result));
    }
    result.degraded = survivors != suite_.size();

    // Composites are equal-weight over the surviving subset.
    const BenchmarkRunResult *first_ok = nullptr;
    for (const auto &bench_result : result.perBenchmark) {
        if (!bench_result.failed()) {
            first_ok = &bench_result;
            break;
        }
    }
    if (first_ok != nullptr) {
        result.estimatorNames = first_ok->estimatorNames;
        const std::size_t num_estimators =
            result.estimatorNames.size();
        for (std::size_t e = 0; e < num_estimators; ++e) {
            EqualWeightComposite composite(
                first_ok->estimatorStats[e].numBuckets());
            for (const auto &bench_result : result.perBenchmark) {
                if (!bench_result.failed())
                    composite.add(bench_result.estimatorStats[e]);
            }
            result.compositeEstimatorStats.push_back(
                composite.result());
        }

        if (options.profileStatic) {
            constexpr double kCommonMass = 1e6;
            for (const auto &bench_result : result.perBenchmark) {
                if (bench_result.failed())
                    continue;
                const double refs =
                    bench_result.staticStats.totalRefs();
                if (refs > 0.0) {
                    result.compositeStaticStats.addWeighted(
                        bench_result.staticStats, kCommonMass / refs);
                }
            }
        }

        result.compositeMispredictRate =
            rate_sum / static_cast<double>(survivors);
    }
    return result;
}

} // namespace confsim
