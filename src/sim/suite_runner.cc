#include "sim/suite_runner.h"

#include <cstdlib>
#include <future>
#include <thread>

#include "util/status.h"

namespace confsim {

SuiteRunner::SuiteRunner(BenchmarkSuite suite)
    : suite_(std::move(suite))
{}

namespace {

/** Simulate one benchmark of a suite run. */
BenchmarkRunResult
runOneBenchmark(const BenchmarkSuite &suite, std::size_t bench,
                const PredictorFactory &make_predictor,
                const EstimatorSetFactory &make_estimators,
                const DriverOptions &options)
{
    auto predictor = make_predictor();
    if (!predictor)
        fatal("predictor factory returned null");
    auto estimators = make_estimators();
    std::vector<ConfidenceEstimator *> raw;
    raw.reserve(estimators.size());
    for (auto &estimator : estimators)
        raw.push_back(estimator.get());

    auto generator = suite.makeGenerator(bench);
    SimulationDriver driver(*predictor, raw, options);
    DriverResult run_result = driver.run(*generator);

    BenchmarkRunResult bench_result;
    bench_result.name = suite.profile(bench).name;
    bench_result.branches = run_result.branches;
    bench_result.mispredicts = run_result.mispredicts;
    bench_result.mispredictRate = run_result.mispredictRate();
    bench_result.estimatorStats = std::move(run_result.estimatorStats);

    if (options.profileStatic) {
        // Re-key per-PC entries so distinct benchmarks never alias.
        const std::uint64_t tag = static_cast<std::uint64_t>(bench)
                                  << 48;
        for (const auto &[pc, entry] :
             run_result.staticProfile.entries()) {
            bench_result.staticStats.recordAggregate(
                tag | pc, static_cast<double>(entry.executions),
                static_cast<double>(entry.mispredictions));
        }
    }
    return bench_result;
}

} // namespace

SuiteRunResult
SuiteRunner::run(const PredictorFactory &make_predictor,
                 const EstimatorSetFactory &make_estimators,
                 DriverOptions options) const
{
    SuiteRunResult result;
    double rate_sum = 0.0;

    // Benchmarks are independent; fan them out. Results are collected
    // in suite order, so output is identical to a sequential run.
    const bool sequential =
        std::getenv("CONFSIM_SEQUENTIAL") != nullptr ||
        std::thread::hardware_concurrency() <= 1;

    std::vector<BenchmarkRunResult> bench_results(suite_.size());
    if (sequential) {
        for (std::size_t bench = 0; bench < suite_.size(); ++bench) {
            bench_results[bench] =
                runOneBenchmark(suite_, bench, make_predictor,
                                make_estimators, options);
        }
    } else {
        std::vector<std::future<BenchmarkRunResult>> futures;
        futures.reserve(suite_.size());
        for (std::size_t bench = 0; bench < suite_.size(); ++bench) {
            futures.push_back(std::async(
                std::launch::async, [&, bench] {
                    return runOneBenchmark(suite_, bench,
                                           make_predictor,
                                           make_estimators, options);
                }));
        }
        for (std::size_t bench = 0; bench < suite_.size(); ++bench)
            bench_results[bench] = futures[bench].get();
    }

    for (auto &bench_result : bench_results) {
        rate_sum += bench_result.mispredictRate;
        result.perBenchmark.push_back(std::move(bench_result));
    }

    // Estimator names come from a throwaway instance set (factories
    // may have been invoked concurrently above; names are static per
    // configuration).
    for (const auto &estimator : make_estimators())
        result.estimatorNames.push_back(estimator->name());

    // Equal-weight composites.
    const std::size_t num_estimators = result.estimatorNames.size();
    for (std::size_t e = 0; e < num_estimators; ++e) {
        EqualWeightComposite composite(
            result.perBenchmark.front().estimatorStats[e].numBuckets());
        for (const auto &bench_result : result.perBenchmark)
            composite.add(bench_result.estimatorStats[e]);
        result.compositeEstimatorStats.push_back(composite.result());
    }

    if (options.profileStatic) {
        constexpr double kCommonMass = 1e6;
        for (const auto &bench_result : result.perBenchmark) {
            const double refs = bench_result.staticStats.totalRefs();
            if (refs > 0.0) {
                result.compositeStaticStats.addWeighted(
                    bench_result.staticStats, kCommonMass / refs);
            }
        }
    }

    result.compositeMispredictRate =
        rate_sum / static_cast<double>(suite_.size());
    return result;
}

} // namespace confsim
