#include "sim/suite_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <future>
#include <thread>

#include "obs/telemetry.h"
#include "trace/fault_injection.h"
#include "trace/trace_io.h"
#include "util/status.h"

namespace confsim {

SuiteRunner::SuiteRunner(BenchmarkSuite suite)
    : suite_(std::move(suite))
{}

namespace {

/** Milliseconds elapsed since @p start. */
double
elapsedMsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Forward fault-injection and corrupt-chunk-skip notifications from a
 * benchmark's trace source into the telemetry event stream. Only the
 * outermost decorator is inspected; call sites that build deeper
 * stacks can install hooks on inner layers themselves.
 */
void
wireSourceTelemetry(TraceSource &source, Telemetry *telemetry,
                    const std::string &benchmark)
{
    if (telemetry == nullptr)
        return;
    if (auto *faults =
            dynamic_cast<FaultInjectingTraceSource *>(&source)) {
        faults->setEventHook([telemetry, benchmark](
                                 const char *kind,
                                 std::uint64_t delivered) {
            telemetry->emit(TelemetryEvent(
                events::kFaultInjected,
                {field("benchmark", benchmark), field("kind", kind),
                 field("record", delivered)}));
            telemetry->registry().increment(std::string("faults.") +
                                            kind);
        });
    }
    if (auto *reader = dynamic_cast<TraceFileReader *>(&source)) {
        reader->setCorruptionHook(
            [telemetry, benchmark](const std::string &what,
                                   std::uint64_t chunk,
                                   std::uint64_t dropped) {
                telemetry->emit(TelemetryEvent(
                    events::kCorruptChunkSkipped,
                    {field("benchmark", benchmark),
                     field("what", what), field("chunk", chunk),
                     field("dropped_records", dropped)}));
                telemetry->registry().increment(
                    "trace.corrupt_chunks_skipped");
            });
    }
}

/** Simulate one benchmark of a suite run (one attempt). */
BenchmarkRunResult
runOneBenchmark(const BenchmarkSuite &suite, std::size_t bench,
                const PredictorFactory &make_predictor,
                const EstimatorSetFactory &make_estimators,
                const SourceWrapper &wrap_source,
                const DriverOptions &options)
{
    auto predictor = make_predictor();
    if (!predictor)
        fatal("predictor factory returned null");
    auto estimators = make_estimators();
    std::vector<ConfidenceEstimator *> raw;
    raw.reserve(estimators.size());
    for (auto &estimator : estimators)
        raw.push_back(estimator.get());

    BenchmarkRunResult bench_result;
    bench_result.name = suite.profile(bench).name;
    // Names come from this run's own instances, so the factories are
    // invoked exactly once per benchmark attempt.
    bench_result.estimatorNames.reserve(estimators.size());
    for (const auto &estimator : estimators)
        bench_result.estimatorNames.push_back(estimator->name());

    std::unique_ptr<TraceSource> source = suite.makeGenerator(bench);
    if (wrap_source) {
        source = wrap_source(bench, std::move(source));
        if (!source)
            fatal("source wrapper returned null for benchmark '" +
                  bench_result.name + "'");
    }
    wireSourceTelemetry(*source, options.telemetry,
                        bench_result.name);
    DriverOptions run_options = options;
    run_options.telemetryLabel = bench_result.name;
    SimulationDriver driver(*predictor, raw, run_options);
    DriverResult run_result = driver.run(*source);

    bench_result.wallMs = run_result.wallMs;
    bench_result.branches = run_result.branches;
    bench_result.mispredicts = run_result.mispredicts;
    bench_result.mispredictRate = run_result.mispredictRate();
    bench_result.estimatorStats = std::move(run_result.estimatorStats);

    if (options.profileStatic) {
        // Re-key per-PC entries so distinct benchmarks never alias.
        const std::uint64_t tag = static_cast<std::uint64_t>(bench)
                                  << 48;
        for (const auto &[pc, entry] :
             run_result.staticProfile.entries()) {
            bench_result.staticStats.recordAggregate(
                tag | pc, static_cast<double>(entry.executions),
                static_cast<double>(entry.mispredictions));
        }
    }
    return bench_result;
}

/**
 * Run one benchmark under the policy: exceptions become the result's
 * error field, transient failures get bounded retries, and watchdog
 * timeouts are terminal (re-running a blown budget just blows it
 * again). Never throws, so a failure cannot wedge the worker pool.
 */
BenchmarkRunResult
runGuardedImpl(const BenchmarkSuite &suite, std::size_t bench,
               const PredictorFactory &make_predictor,
               const EstimatorSetFactory &make_estimators,
               const SourceWrapper &wrap_source,
               const DriverOptions &options, const RunPolicy &policy)
{
    Telemetry *const telemetry = options.telemetry;
    const std::string bench_name = suite.profile(bench).name;
    const auto start = std::chrono::steady_clock::now();
    if (telemetry != nullptr) {
        telemetry->emit(
            TelemetryEvent(events::kBenchmarkStarted,
                           {field("benchmark", bench_name)}));
    }
    const unsigned max_attempts = std::max(1u, policy.maxAttempts);
    BenchmarkRunResult failed;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        try {
            BenchmarkRunResult ok =
                runOneBenchmark(suite, bench, make_predictor,
                                make_estimators, wrap_source, options);
            ok.attempts = attempt;
            ok.wallMs = elapsedMsSince(start);
            return ok;
        } catch (const WatchdogTimeout &e) {
            failed = BenchmarkRunResult{};
            failed.name = bench_name;
            failed.error = e.what();
            failed.attempts = attempt;
            failed.wallMs = elapsedMsSince(start);
            if (telemetry != nullptr) {
                telemetry->emit(TelemetryEvent(
                    events::kWatchdogTimeout,
                    {field("benchmark", bench_name),
                     field("attempt",
                           static_cast<std::uint64_t>(attempt)),
                     field("error", failed.error)}));
                telemetry->registry().increment(
                    "suite.watchdog_timeouts");
            }
            return failed;
        } catch (const std::exception &e) {
            failed = BenchmarkRunResult{};
            failed.name = bench_name;
            failed.error = e.what();
            failed.attempts = attempt;
        } catch (...) {
            failed = BenchmarkRunResult{};
            failed.name = bench_name;
            failed.error = "unknown exception";
            failed.attempts = attempt;
        }
        if (telemetry != nullptr && attempt < max_attempts) {
            telemetry->emit(TelemetryEvent(
                events::kBenchmarkRetry,
                {field("benchmark", bench_name),
                 field("attempt", static_cast<std::uint64_t>(attempt)),
                 field("error", failed.error)}));
            telemetry->registry().increment("suite.retries");
        }
    }
    failed.wallMs = elapsedMsSince(start);
    return failed;
}

/**
 * runGuardedImpl plus completion telemetry. The benchmark_finished
 * event is emitted here, as each benchmark completes, so progress
 * sinks (stderr heartbeat) see results live during parallel runs
 * rather than a burst after the join barrier. Telemetry::emit and
 * MetricsRegistry are thread-safe, so workers emit directly.
 */
BenchmarkRunResult
runGuarded(const BenchmarkSuite &suite, std::size_t bench,
           const PredictorFactory &make_predictor,
           const EstimatorSetFactory &make_estimators,
           const SourceWrapper &wrap_source,
           const DriverOptions &options, const RunPolicy &policy)
{
    BenchmarkRunResult bench_result =
        runGuardedImpl(suite, bench, make_predictor, make_estimators,
                       wrap_source, options, policy);
    if (Telemetry *const telemetry = options.telemetry) {
        telemetry->emit(TelemetryEvent(
            events::kBenchmarkFinished,
            {field("benchmark", bench_result.name),
             field("wall_ms", bench_result.wallMs),
             field("attempts",
                   static_cast<std::uint64_t>(bench_result.attempts)),
             field("branches", bench_result.branches),
             field("mispredicts", bench_result.mispredicts),
             field("mispredict_rate", bench_result.mispredictRate),
             field("error", bench_result.error)}));
        MetricsRegistry &registry = telemetry->registry();
        registry.increment("suite.benchmarks");
        registry.observe("suite.bench_wall_ms", bench_result.wallMs);
        if (bench_result.failed())
            registry.increment("suite.failures");
    }
    return bench_result;
}

} // namespace

SuiteRunResult
SuiteRunner::run(const PredictorFactory &make_predictor,
                 const EstimatorSetFactory &make_estimators,
                 DriverOptions options, RunPolicy policy) const
{
    SuiteRunResult result;
    if (policy.watchdogMs != 0)
        options.wallClockLimitMs = policy.watchdogMs;
    const bool fail_fast = policy.errorMode == ErrorMode::kFailFast;

    // Benchmarks are independent; fan them out. Results are collected
    // in suite order, so output is identical to a sequential run —
    // including which failure fail-fast reports (always the first in
    // suite order, regardless of completion order).
    const bool sequential =
        std::getenv("CONFSIM_SEQUENTIAL") != nullptr ||
        std::thread::hardware_concurrency() <= 1;

    Telemetry *const telemetry = options.telemetry;
    const auto suite_start = std::chrono::steady_clock::now();
    if (telemetry != nullptr) {
        telemetry->emit(TelemetryEvent(
            events::kSuiteRunStarted,
            {field("benchmarks",
                   static_cast<std::uint64_t>(suite_.size())),
             field("error_mode",
                   fail_fast ? "fail_fast" : "continue_on_error"),
             field("max_attempts",
                   static_cast<std::uint64_t>(
                       std::max(1u, policy.maxAttempts))),
             field("watchdog_ms", options.wallClockLimitMs),
             field("parallel", !sequential)}));
    }

    std::vector<BenchmarkRunResult> bench_results(suite_.size());
    if (sequential) {
        for (std::size_t bench = 0; bench < suite_.size(); ++bench) {
            bench_results[bench] =
                runGuarded(suite_, bench, make_predictor,
                           make_estimators, sourceWrapper_, options,
                           policy);
            if (fail_fast && bench_results[bench].failed())
                break; // the loud rethrow below picks this up
        }
    } else {
        std::vector<std::future<BenchmarkRunResult>> futures;
        futures.reserve(suite_.size());
        for (std::size_t bench = 0; bench < suite_.size(); ++bench) {
            futures.push_back(std::async(
                std::launch::async, [&, bench] {
                    return runGuarded(suite_, bench, make_predictor,
                                      make_estimators, sourceWrapper_,
                                      options, policy);
                }));
        }
        for (std::size_t bench = 0; bench < suite_.size(); ++bench)
            bench_results[bench] = futures[bench].get();
    }

    if (fail_fast) {
        for (const auto &bench_result : bench_results) {
            if (bench_result.failed()) {
                if (telemetry != nullptr) {
                    std::uint64_t failures = 0;
                    for (const auto &other : bench_results)
                        failures += other.failed() ? 1 : 0;
                    telemetry->emit(TelemetryEvent(
                        events::kSuiteRunFinished,
                        {field("wall_ms", elapsedMsSince(suite_start)),
                         field("degraded", true),
                         field("failed_benchmarks", failures),
                         field("survivors", std::uint64_t{0}),
                         field("error", bench_result.error)}));
                    // Flush now: if the caller doesn't catch the
                    // fatal() exception, std::terminate skips
                    // unwinding and buffered sink tails (including
                    // the event above) would be lost.
                    telemetry->finish();
                }
                fatal("benchmark '" + bench_result.name +
                      "' failed: " + bench_result.error);
            }
        }
    }

    double rate_sum = 0.0;
    std::size_t survivors = 0;
    for (auto &bench_result : bench_results) {
        if (!bench_result.failed()) {
            rate_sum += bench_result.mispredictRate;
            ++survivors;
        }
        result.perBenchmark.push_back(std::move(bench_result));
    }
    result.degraded = survivors != suite_.size();

    // Composites are equal-weight over the surviving subset.
    const BenchmarkRunResult *first_ok = nullptr;
    for (const auto &bench_result : result.perBenchmark) {
        if (!bench_result.failed()) {
            first_ok = &bench_result;
            break;
        }
    }
    if (first_ok != nullptr) {
        result.estimatorNames = first_ok->estimatorNames;
        const std::size_t num_estimators =
            result.estimatorNames.size();
        for (std::size_t e = 0; e < num_estimators; ++e) {
            EqualWeightComposite composite(
                first_ok->estimatorStats[e].numBuckets());
            for (const auto &bench_result : result.perBenchmark) {
                if (!bench_result.failed())
                    composite.add(bench_result.estimatorStats[e]);
            }
            result.compositeEstimatorStats.push_back(
                composite.result());
        }

        if (options.profileStatic) {
            constexpr double kCommonMass = 1e6;
            for (const auto &bench_result : result.perBenchmark) {
                if (bench_result.failed())
                    continue;
                const double refs =
                    bench_result.staticStats.totalRefs();
                if (refs > 0.0) {
                    result.compositeStaticStats.addWeighted(
                        bench_result.staticStats, kCommonMass / refs);
                }
            }
        }

        result.compositeMispredictRate =
            rate_sum / static_cast<double>(survivors);
    }

    result.wallMs = elapsedMsSince(suite_start);
    if (telemetry != nullptr) {
        telemetry->emit(TelemetryEvent(
            events::kSuiteRunFinished,
            {field("wall_ms", result.wallMs),
             field("composite_mispredict_rate",
                   result.compositeMispredictRate),
             field("degraded", result.degraded),
             field("failed_benchmarks",
                   static_cast<std::uint64_t>(
                       result.failedBenchmarks())),
             field("survivors",
                   static_cast<std::uint64_t>(survivors))}));
        telemetry->registry().observe("suite.wall_ms", result.wallMs);
    }
    return result;
}

} // namespace confsim
