#include "sim/sweep_engine.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "ckpt/checkpoint.h"
#include "ckpt/checkpoint_store.h"
#include "fault/fault_plan.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "predictor/history_register.h"
#include "sim/run_policy.h"
#include "util/cancellation.h"
#include "util/error.h"
#include "util/running_stats.h"
#include "util/shift_register.h"
#include "util/status.h"

namespace confsim {

namespace {

std::string
cfgPrefix(std::size_t config)
{
    return "cfg" + std::to_string(config) + ":";
}

/**
 * Cooperative unwinding inside worker shards: carries the pass's
 * cancellation token and wall-clock deadline into the per-record replay
 * loop, so a hung or cancelled configuration unwinds from inside the
 * shard (satellite of the pass-granularity check the consumer loop
 * performs between batches). Pure control flow — checking never
 * perturbs simulation results.
 */
struct ReplayGuard
{
    using Clock = std::chrono::steady_clock;

    const CancellationToken *cancel = nullptr;
    bool hasDeadline = false;
    Clock::time_point deadline{};
    std::uint64_t limitMs = 0;

    bool
    active() const
    {
        return cancel != nullptr || hasDeadline;
    }

    void
    checkNow(std::uint64_t at_records) const
    {
        if (cancel != nullptr)
            cancel->throwIfCancelled("sweep shard");
        if (hasDeadline && Clock::now() > deadline) {
            throw WatchdogTimeout(
                "sweep exceeded its wall-clock budget of " +
                std::to_string(limitMs) + " ms after " +
                std::to_string(at_records) + " records");
        }
    }

    /**
     * Injected hang: park until the watchdog or cancellation unwinds
     * this shard. A 30 s safety cap turns a hang nobody is set up to
     * interrupt into a timeout instead of a wedged test run.
     */
    [[noreturn]] void
    park() const
    {
        const Clock::time_point cap =
            Clock::now() + std::chrono::seconds(30);
        for (;;) {
            checkNow(0);
            if (Clock::now() > cap) {
                throw WatchdogTimeout(
                    "injected hang exceeded its 30 s safety cap with "
                    "no watchdog or cancellation configured");
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
};

} // namespace

/**
 * Everything one configuration owns: its predictor, estimator bank,
 * private replicas of the architectural context registers, and its
 * accumulating result. One worker shard touches one ConfigState at a
 * time, so no field needs synchronization.
 */
struct SweepEngine::ConfigState
{
    ConfigState(const DriverOptions &options)
        : bhr(options.bhrBits), gcir(options.gcirBits, 0)
    {
        ctx.bhrBits = options.bhrBits;
        ctx.gcirBits = options.gcirBits;
        until_switch = options.contextSwitchInterval;
    }

    std::unique_ptr<BranchPredictor> predictor;
    std::vector<std::unique_ptr<ConfidenceEstimator>> owned;
    std::vector<ConfidenceEstimator *> estimators;

    HistoryRegister bhr;
    ShiftRegister gcir;
    BranchContext ctx;
    std::uint64_t simulated = 0;
    std::uint64_t until_switch = 0;
    std::uint64_t guardTick = 0;

    /**
     * Recording plan (null = record everything) plus its cursor: the
     * current region's mode and how many conditionals of the region
     * remain. The cursor is a pure function of `simulated`, so plan
     * resolution is batch-boundary independent — the bit-exactness
     * contract extends to planned runs unchanged.
     */
    const SweepRecordingPlan *plan = nullptr;
    std::uint32_t planSlot = SweepRecordingPlan::kWarmOnly;
    std::uint64_t planLeft = 0;

    SweepConfigResult result;

    /**
     * Replay @p batch through this configuration. This is the
     * sequential driver's record loop verbatim (see
     * SimulationDriver::runImpl) minus the driver-owned concerns the
     * engine handles at batch granularity instead: the watchdog, the
     * checkpoint cadence, and telemetry sampling. Any change here must
     * keep tests/integration/sweep_differential_test.cc green.
     */
    void
    replay(const RecordBatch &batch, const DriverOptions &options,
           const ReplayGuard &guard)
    {
        // Amortize the guard over a stride of records (same idea as
        // the sequential driver's watchdog stride) so the hot loop
        // stays hot when neither a deadline nor a token is set.
        constexpr std::uint64_t kGuardStride = 4096;
        const bool guarded = guard.active();
        // Attribution profile (observation only — same hook points,
        // same values, as the sequential driver's loop).
        BranchProfile *const profile =
            result.branchProfile.enabled() ? &result.branchProfile
                                           : nullptr;
        for (const BranchRecord &record : batch) {
            if (guarded && (++guardTick % kGuardStride) == 0)
                guard.checkNow(simulated);
            if (!record.isConditional())
                continue;

            // Resolve the recording plan's mode at region boundaries
            // (a function of `simulated` only — see the field docs).
            if (plan != nullptr) {
                if (planLeft == 0) {
                    planSlot = plan->slotForRegion(
                        simulated / plan->regionBranches);
                    planLeft = plan->regionBranches;
                }
                --planLeft;
                if (planSlot == SweepRecordingPlan::kSkip) {
                    // Fast-forward: no predictor/estimator work;
                    // only the cursor and context-switch phase
                    // advance. A kWarmOnly window ahead of each
                    // detailed region re-converges the state.
                    ++simulated;
                    if (options.contextSwitchInterval != 0 &&
                        --until_switch == 0) {
                        until_switch = options.contextSwitchInterval;
                        if (options.flushPredictorOnSwitch)
                            predictor->reset();
                        if (options.flushEstimatorsOnSwitch) {
                            for (auto *estimator : estimators)
                                estimator->reset();
                        }
                        bhr.reset();
                        gcir.clear();
                        ++result.contextSwitches;
                    }
                    continue;
                }
            }

            ctx.pc = record.pc;
            ctx.bhr = bhr.value();
            ctx.gcir = gcir.value();

            const bool predicted = predictor->predict(record.pc);
            const bool correct = (predicted == record.taken);
            const bool recording =
                simulated >= options.warmupBranches &&
                (plan == nullptr ||
                 planSlot != SweepRecordingPlan::kWarmOnly);
            SweepSlotStats *const slot_bank =
                recording && plan != nullptr
                    ? &result.slotStats[planSlot]
                    : nullptr;

            if (recording) {
                ++result.branches;
                if (!correct)
                    ++result.mispredicts;
                if (slot_bank != nullptr) {
                    ++slot_bank->branches;
                    if (!correct)
                        ++slot_bank->mispredicts;
                }
            }

            for (std::size_t i = 0; i < estimators.size(); ++i) {
                const std::uint64_t bucket =
                    estimators[i]->bucketOf(ctx);
                if (recording) {
                    result.estimatorStats[i].record(bucket, !correct);
                    if (slot_bank != nullptr) {
                        slot_bank->estimatorStats[i].record(bucket,
                                                            !correct);
                    }
                }
                estimators[i]->update(ctx, correct, record.taken);
                if (profile != nullptr && recording)
                    profile->onBucket(i, bucket, correct);
            }

            if (options.profileStatic && recording) {
                result.staticProfile.record(record.pc, !correct,
                                            record.taken);
            }
            if (profile != nullptr && recording)
                profile->onBranch(record.pc, !correct);

            predictor->update(record.pc, record.taken);
            bhr.recordOutcome(record.taken);
            gcir.shiftIn(!correct);
            ++simulated;

            if (options.contextSwitchInterval != 0 &&
                --until_switch == 0) {
                until_switch = options.contextSwitchInterval;
                if (options.flushPredictorOnSwitch)
                    predictor->reset();
                if (options.flushEstimatorsOnSwitch) {
                    for (auto *estimator : estimators)
                        estimator->reset();
                }
                bhr.reset();
                gcir.clear();
                ++result.contextSwitches;
            }
        }
    }
};

SweepWorkerPool::SweepWorkerPool(unsigned workers)
{
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads_.emplace_back([this] { workerMain(); });
}

SweepWorkerPool::~SweepWorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cvWork_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
SweepWorkerPool::runAll(std::vector<std::function<void()>> tasks,
                        const CancellationToken *cancel)
{
    if (tasks.empty())
        return;
    if (threads_.empty()) {
        for (auto &task : tasks) {
            if (cancel != nullptr)
                cancel->throwIfCancelled("sweep task group");
            task();
        }
        return;
    }
    WaitGroup group;
    group.remaining = tasks.size();
    group.cancel = cancel;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &task : tasks)
            queue_.push_back(Task{std::move(task), &group});
    }
    cvWork_.notify_all();
    std::unique_lock<std::mutex> lock(group.mu);
    group.cv.wait(lock, [&group] { return group.remaining == 0; });
    if (group.error)
        std::rethrow_exception(group.error);
}

RunningStats
SweepWorkerPool::occupancyStats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return occupancy_;
}

unsigned
SweepWorkerPool::busyNow() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return busy_;
}

void
SweepWorkerPool::workerMain()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        cvWork_.wait(lock,
                     [this] { return stop_ || !queue_.empty(); });
        if (stop_)
            return;
        Task task = std::move(queue_.front());
        queue_.pop_front();
        ++busy_;
        occupancy_.add(static_cast<double>(busy_));
        lock.unlock();

        std::exception_ptr raised;
        try {
            // Skip tasks whose group was cancelled while they sat in
            // the queue; running tasks unwind via their own checks.
            if (task.group->cancel != nullptr)
                task.group->cancel->throwIfCancelled("sweep task group");
            task.fn();
        } catch (...) {
            raised = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> done(task.group->mu);
            if (raised && !task.group->error)
                task.group->error = raised;
            if (--task.group->remaining == 0)
                task.group->cv.notify_all();
        }

        lock.lock();
        --busy_;
    }
}

namespace {

/**
 * Decode-ahead batch ring. A producer thread refills slots from the
 * TraceSource while the consumer (the engine's broadcast loop) drains
 * them in order, so replay never waits on decode unless the ring runs
 * dry.
 *
 * The producer owns the shared cursors (records consumed, branches
 * simulated) and computes the checkpoint cadence with the exact
 * arithmetic the synchronous loop uses, so checkpoints land on the
 * same batch boundaries at any depth. A slot that crosses a
 * checkpoint multiple is flagged checkpointDue and the producer
 * *blocks before touching the source again* until the consumer has
 * written the checkpoint — the source is therefore quiescent and
 * positioned exactly at the checkpointed record when it is
 * serialized (or when its watermark is recorded), which is what makes
 * pipelined checkpoint/resume bit-exact.
 *
 * A decode error is published in order as an error slot: the consumer
 * replays every batch decoded before it, then rethrows — identical
 * observable behaviour to the synchronous loop.
 */
class DecodeAheadRing
{
  public:
    struct Slot
    {
        RecordBatch batch;
        std::uint64_t consumedAfter = 0;
        std::uint64_t simulatedAfter = 0;
        bool checkpointDue = false;
        std::exception_ptr error;
    };

    DecodeAheadRing(TraceSource &source, std::size_t depth,
                    std::size_t batch_size, std::uint64_t consumed,
                    std::uint64_t simulated, std::uint64_t ckpt_every,
                    std::string scope,
                    const CancellationToken *cancel,
                    SpanTracer *spans)
        : source_(source), ckptEvery_(ckpt_every), scope_(std::move(scope)),
          cancel_(cancel), spans_(spans), consumed_(consumed),
          simulated_(simulated)
    {
        nextCkpt_ = ckptEvery_ == 0
                        ? 0
                        : (simulated_ / ckptEvery_ + 1) * ckptEvery_;
        slots_.reserve(depth);
        for (std::size_t i = 0; i < depth; ++i) {
            Slot slot;
            slot.batch = RecordBatch(batch_size);
            slots_.push_back(std::move(slot));
        }
        producer_ = std::thread([this] { producerMain(); });
    }

    ~DecodeAheadRing()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cvFree_.notify_all();
        cvFilled_.notify_all();
        cvCkpt_.notify_all();
        producer_.join();
    }

    /**
     * @return the next filled slot in decode order, or nullptr at end
     * of stream. Blocks while the ring is empty; rethrows a producer
     * decode error at its in-order position.
     */
    Slot *
    next()
    {
        std::unique_lock<std::mutex> lock(mu_);
        cvFilled_.wait(lock,
                       [this] { return filled_ != 0 || done_; });
        if (filled_ == 0)
            return nullptr;
        Slot &slot = slots_[tail_ % slots_.size()];
        if (slot.error)
            std::rethrow_exception(slot.error);
        return &slot;
    }

    /**
     * Return the slot obtained from next() to the free list. If it
     * was checkpointDue the caller must have written the checkpoint;
     * this unblocks the producer.
     */
    void
    release(Slot &slot)
    {
        bool due = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            // The producer may reuse the slot the moment it is freed,
            // so read its flag before publishing the free slot.
            due = slot.checkpointDue;
            ++tail_;
            --filled_;
            if (due)
                ckptPending_ = false;
        }
        cvFree_.notify_one();
        if (due)
            cvCkpt_.notify_one();
    }

    /** @return producer time spent parked at checkpoint barriers. */
    RunningStats
    barrierWaitStats()
    {
        std::lock_guard<std::mutex> lock(mu_);
        return barrierWaitNs_;
    }

  private:
    void
    producerMain()
    {
        if (spans_ != nullptr)
            spans_->setCurrentThreadName("decode-producer");
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mu_);
                cvFree_.wait(lock, [this] {
                    return stop_ || filled_ != slots_.size();
                });
                if (stop_)
                    return;
            }
            // Only this thread touches head_ and the slot until it is
            // published under the mutex below.
            Slot &slot = slots_[head_ % slots_.size()];
            slot.checkpointDue = false;
            slot.error = nullptr;

            std::size_t got = 0;
            try {
                // Cancellation and injected decode faults surface as
                // in-order error slots — identical observable behavior
                // to the synchronous refill loop hitting them.
                ScopedSpan refill_span(spans_, "decode.refill");
                if (cancel_ != nullptr)
                    cancel_->throwIfCancelled("sweep decode");
                FaultInjector &injector = FaultInjector::instance();
                if (injector.armed())
                    injector.fire(FaultSite::kDecodeBatch, scope_);
                got = slot.batch.refill(source_);
            } catch (...) {
                slot.error = std::current_exception();
                slot.batch.clear();
            }
            if (got == 0 && !slot.error) {
                std::lock_guard<std::mutex> lock(mu_);
                done_ = true;
                cvFilled_.notify_all();
                return;
            }

            bool due = false;
            if (!slot.error) {
                consumed_ += slot.batch.size();
                simulated_ += slot.batch.conditionals();
                slot.consumedAfter = consumed_;
                slot.simulatedAfter = simulated_;
                if (ckptEvery_ != 0 && simulated_ >= nextCkpt_) {
                    slot.checkpointDue = due = true;
                    nextCkpt_ =
                        (simulated_ / ckptEvery_ + 1) * ckptEvery_;
                }
            }

            std::unique_lock<std::mutex> lock(mu_);
            ++head_;
            ++filled_;
            if (due)
                ckptPending_ = true;
            if (spans_ != nullptr) {
                spans_->counter(
                    "decode_ring.filled",
                    static_cast<std::uint64_t>(filled_));
            }
            cvFilled_.notify_one();
            if (slot.error) {
                // Nothing after an error can be decoded coherently;
                // park until destruction.
                done_ = true;
                return;
            }
            if (due) {
                // Pipeline barrier: the source must stay untouched at
                // exactly `consumed_` records until the checkpoint
                // containing it has been written.
                ScopedSpan barrier_span(spans_,
                                        "decode.barrier_wait");
                const std::chrono::steady_clock::time_point b0 =
                    std::chrono::steady_clock::now();
                cvCkpt_.wait(lock, [this] {
                    return stop_ || !ckptPending_;
                });
                barrierWaitNs_.add(
                    std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - b0)
                        .count());
                if (stop_)
                    return;
            }
        }
    }

    TraceSource &source_;
    const std::uint64_t ckptEvery_;
    const std::string scope_;
    const CancellationToken *const cancel_;
    SpanTracer *const spans_;
    std::uint64_t consumed_;
    std::uint64_t simulated_;
    std::uint64_t nextCkpt_ = 0;
    RunningStats barrierWaitNs_; //!< guarded by mu_

    std::vector<Slot> slots_;
    std::thread producer_;

    std::mutex mu_;
    std::condition_variable cvFilled_, cvFree_, cvCkpt_;
    std::size_t head_ = 0;   //!< slots produced
    std::size_t tail_ = 0;   //!< slots released
    std::size_t filled_ = 0; //!< produced, not yet released
    bool ckptPending_ = false;
    bool done_ = false;
    bool stop_ = false;
};

unsigned
resolveThreads(unsigned requested, std::size_t configs)
{
    // CONFSIM_SEQUENTIAL forces single-threaded operation everywhere
    // (same escape hatch SuiteRunner honours) — results are identical
    // either way, this only aids debugging under a debugger/sanitizer.
    if (std::getenv("CONFSIM_SEQUENTIAL") != nullptr)
        return 1;
    unsigned threads = requested;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    // A lone engine can't use more workers than it has configurations
    // (per-config replay is serial by the bit-exactness contract).
    // When more cores than configs are available, SuiteRunner::runSweep
    // recovers the surplus by pipelining benchmarks on a shared,
    // globally sized pool instead of capping here.
    if (static_cast<std::size_t>(threads) > configs)
        threads = static_cast<unsigned>(configs);
    return threads < 1 ? 1 : threads;
}

std::size_t
resolveDecodeAhead(std::size_t requested)
{
    if (std::getenv("CONFSIM_SEQUENTIAL") != nullptr)
        return 1;
    if (const char *env = std::getenv("CONFSIM_DECODE_AHEAD")) {
        char *end = nullptr;
        const long value = std::strtol(env, &end, 10);
        if (end != env && value >= 1)
            return static_cast<std::size_t>(value);
    }
    return requested == 0 ? SweepOptions::kDefaultDecodeAhead
                          : requested;
}

} // namespace

SweepEngine::SweepEngine(std::vector<SweepConfiguration> configs,
                         DriverOptions driver, SweepOptions sweep)
    : configs_(std::move(configs)), driver_(driver), sweep_(sweep)
{
    if (configs_.empty())
        fatal(ErrorCategory::kConfig, "SweepEngine needs at least one configuration");
    for (const auto &config : configs_) {
        if (!config.makePredictor || !config.makeEstimators) {
            fatal(ErrorCategory::kConfig, "sweep configuration '" + config.label +
                  "' is missing a factory");
        }
    }
}

SweepEngine::~SweepEngine() = default;

void
SweepEngine::checkpointEvery(std::uint64_t n_branches,
                             CheckpointStore *store)
{
    if (n_branches != 0 && store == nullptr)
        fatal(ErrorCategory::kConfig, "checkpointEvery: a period needs a CheckpointStore");
    ckptEvery_ = n_branches;
    ckptStore_ = store;
}

SweepRunResult
SweepEngine::run(TraceSource &source)
{
    return runImpl(source, nullptr);
}

SweepRunResult
SweepEngine::resume(TraceSource &source, const Checkpoint &from)
{
    return runImpl(source, &from);
}

void
SweepEngine::writeCheckpoint(TraceSource &source,
                             SweepRunResult &result,
                             std::uint64_t consumed,
                             std::uint64_t simulated)
{
    ScopedSpan span(driver_.spans, "ckpt.write");
    Checkpoint ckpt;
    ckpt.label = driver_.telemetryLabel;
    ckpt.watermark = consumed;
    ckpt.branches = simulated;

    StateWriter meta;
    meta.putU64(driver_.bhrBits);
    meta.putU64(driver_.gcirBits);
    meta.putU64(configs_.size());
    meta.putU64(driver_.profileStatic ? 1 : 0);
    ckpt.add("sweep:meta", 1, meta.take());

    for (std::size_t c = 0; c < states_.size(); ++c) {
        ConfigState &state = *states_[c];
        const std::string prefix = cfgPrefix(c);

        StateWriter cfg;
        cfg.putString(configs_[c].label);
        cfg.putU64(state.estimators.size());
        cfg.putU64(state.until_switch);
        cfg.putU64(state.bhr.value());
        cfg.putU64(state.gcir.value());
        cfg.putU64(state.result.branches);
        cfg.putU64(state.result.mispredicts);
        cfg.putU64(state.result.contextSwitches);
        ckpt.add(prefix + "meta", 1, cfg.take());

        ckpt.addComponent(prefix + "predictor:" +
                              state.predictor->name(),
                          *state.predictor);
        for (std::size_t i = 0; i < state.estimators.size(); ++i) {
            ckpt.addComponent(prefix + "estimator" +
                                  std::to_string(i) + ":" +
                                  state.estimators[i]->name(),
                              *state.estimators[i]);
            ckpt.addState(prefix + "stats" + std::to_string(i), 1,
                          state.result.estimatorStats[i]);
        }
        if (driver_.profileStatic) {
            ckpt.addState(prefix + "static_profile", 1,
                          state.result.staticProfile);
        }
    }
    if (source.checkpointable())
        ckpt.addComponent("source", source);

    // Same degradation contract as the sequential driver: a failed
    // periodic write (ENOSPC, failed fsync, injected fault) loses
    // checkpoint freshness, not the sweep — the atomic writer never
    // publishes a partial file, so the previous generation remains
    // loadable and resumable. Cancellation still propagates.
    try {
        ckptStore_->write(ckpt);
    } catch (const std::exception &e) {
        if (categoryOf(e) == ErrorCategory::kCancelled)
            throw;
        if (driver_.telemetry != nullptr) {
            driver_.telemetry->registry().increment("ckpt.write_failed");
            driver_.telemetry->emit(TelemetryEvent(
                events::kCheckpointWriteFailed,
                {field("benchmark", driver_.telemetryLabel),
                 field("at_branch", ckpt.branches),
                 field("error", std::string(e.what()))}));
        }
        return;
    }
    ++result.checkpointsWritten;
}

SweepRunResult
SweepEngine::runImpl(TraceSource &source,
                     const Checkpoint *resume_from)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point run_start = Clock::now();

    SweepRunResult result;

    // Build every configuration's private state from its factories.
    states_.clear();
    states_.reserve(configs_.size());
    for (const auto &config : configs_) {
        auto state = std::make_unique<ConfigState>(driver_);
        state->predictor = config.makePredictor();
        if (state->predictor == nullptr) {
            fatal(ErrorCategory::kConfig, "sweep configuration '" + config.label +
                  "' produced a null predictor");
        }
        state->owned = config.makeEstimators();
        state->estimators.reserve(state->owned.size());
        state->result.label = config.label;
        for (const auto &estimator : state->owned) {
            state->estimators.push_back(estimator.get());
            state->result.estimatorStats.emplace_back(
                estimator->numBuckets());
            state->result.estimatorNames.push_back(estimator->name());
        }
        if (driver_.profileBranches) {
            std::vector<BranchProfileEstimatorInfo> infos;
            infos.reserve(state->owned.size());
            for (const auto &estimator : state->owned) {
                infos.push_back({estimator->name(),
                                 estimator->numBuckets(),
                                 estimator->bucketsAreOrdered()});
            }
            state->result.branchProfile.configure(
                driver_.branchProfile, std::move(infos));
        }
        states_.push_back(std::move(state));
    }

    const SweepRecordingPlan *const plan = sweep_.recordingPlan;
    if (plan != nullptr) {
        if (plan->regionBranches == 0) {
            fatal(ErrorCategory::kConfig,
                  "recording plan needs regionBranches > 0");
        }
        for (const std::uint32_t slot : plan->regionSlots) {
            if (slot >= plan->numSlots &&
                slot != SweepRecordingPlan::kWarmOnly &&
                slot != SweepRecordingPlan::kSkip) {
                fatal(ErrorCategory::kConfig,
                      "recording plan slot " + std::to_string(slot) +
                          " is out of range (numSlots " +
                          std::to_string(plan->numSlots) + ")");
            }
        }
        if (ckptEvery_ != 0 || resume_from != nullptr) {
            fatal(ErrorCategory::kConfig,
                  "a recording plan composes with neither "
                  "checkpointing nor resume: a partially recorded "
                  "plan cannot be audited for bit-exact restoration");
        }
        for (auto &state : states_) {
            state->plan = plan;
            state->result.slotStats.resize(plan->numSlots);
            for (auto &slot_bank : state->result.slotStats) {
                slot_bank.estimatorStats.reserve(
                    state->estimators.size());
                for (const auto *estimator : state->estimators) {
                    slot_bank.estimatorStats.emplace_back(
                        estimator->numBuckets());
                }
            }
        }
    }

    if (ckptEvery_ != 0) {
        // Same up-front audit the sequential driver performs: an
        // unauditable configuration must fail loudly, not resume wrong.
        for (const auto &state : states_) {
            if (!state->predictor->checkpointable()) {
                fatal(ErrorCategory::kConfig, "predictor '" + state->predictor->name() +
                      "' is not checkpointable");
            }
            for (const auto *estimator : state->estimators) {
                if (!estimator->checkpointable()) {
                    fatal(ErrorCategory::kConfig, "estimator '" + estimator->name() +
                          "' is not checkpointable");
                }
            }
        }
    }

    std::uint64_t simulated = 0; // conditional branches, shared cursor
    std::uint64_t consumed = 0;  // all records, shared cursor

    if (resume_from != nullptr) {
        const CheckpointComponent *meta =
            resume_from->find("sweep:meta");
        if (meta == nullptr)
            fatal(ErrorCategory::kCheckpoint, "checkpoint has no sweep:meta component");
        if (meta->version != 1) {
            fatal(ErrorCategory::kCheckpoint, "sweep:meta is version " +
                  std::to_string(meta->version) + ", expected 1");
        }
        StateReader in(meta->payload);
        in.expectU64(driver_.bhrBits, "checkpoint BHR width");
        in.expectU64(driver_.gcirBits, "checkpoint GCIR width");
        in.expectU64(configs_.size(), "checkpoint config count");
        in.expectU64(driver_.profileStatic ? 1 : 0,
                     "checkpoint static-profile flag");
        if (!in.atEnd())
            fatal(ErrorCategory::kCheckpoint, "sweep:meta has unconsumed bytes");

        for (std::size_t c = 0; c < states_.size(); ++c) {
            ConfigState &state = *states_[c];
            const std::string prefix = cfgPrefix(c);
            const CheckpointComponent *cfg_meta =
                resume_from->find(prefix + "meta");
            if (cfg_meta == nullptr)
                fatal(ErrorCategory::kCheckpoint, "checkpoint has no " + prefix +
                      "meta component");
            if (cfg_meta->version != 1) {
                fatal(ErrorCategory::kCheckpoint, prefix + "meta is version " +
                      std::to_string(cfg_meta->version) +
                      ", expected 1");
            }
            StateReader cfg(cfg_meta->payload);
            const std::string label = cfg.getString();
            if (label != configs_[c].label) {
                fatal(ErrorCategory::kCheckpoint, "checkpoint config " + std::to_string(c) +
                      " is '" + label + "', expected '" +
                      configs_[c].label + "'");
            }
            cfg.expectU64(state.estimators.size(),
                          "checkpoint estimator count");
            state.until_switch = cfg.getU64();
            state.bhr.setValue(cfg.getU64());
            state.gcir.set(cfg.getU64());
            state.result.branches = cfg.getU64();
            state.result.mispredicts = cfg.getU64();
            state.result.contextSwitches = cfg.getU64();
            if (!cfg.atEnd())
                fatal(ErrorCategory::kCheckpoint, prefix + "meta has unconsumed bytes");

            resume_from->restoreComponent(
                prefix + "predictor:" + state.predictor->name(),
                *state.predictor);
            for (std::size_t i = 0; i < state.estimators.size();
                 ++i) {
                resume_from->restoreComponent(
                    prefix + "estimator" + std::to_string(i) + ":" +
                        state.estimators[i]->name(),
                    *state.estimators[i]);
                resume_from->restoreState(
                    prefix + "stats" + std::to_string(i), 1,
                    state.result.estimatorStats[i]);
            }
            if (driver_.profileStatic) {
                resume_from->restoreState(
                    prefix + "static_profile", 1,
                    state.result.staticProfile);
            }
            state.simulated = resume_from->branches;
        }

        simulated = resume_from->branches;
        if (resume_from->find("source") != nullptr) {
            resume_from->restoreComponent("source", source);
        } else {
            BranchRecord skipped;
            for (std::uint64_t i = 0; i < resume_from->watermark;
                 ++i) {
                if (!source.next(skipped)) {
                    fatal(ErrorCategory::kTrace, "trace ended after " + std::to_string(i) +
                          " record(s), before the resume watermark " +
                          std::to_string(resume_from->watermark));
                }
            }
        }
        consumed = resume_from->watermark;
    }

    // Parallelism: a shared pool (if provided) or an engine-owned one.
    // Either way shards never exceed the configuration count — a batch
    // is split into min(workers, configs) contiguous config ranges.
    SweepWorkerPool *pool = sweep_.pool;
    std::unique_ptr<SweepWorkerPool> owned_pool;
    if (pool == nullptr) {
        const unsigned threads =
            resolveThreads(sweep_.threads, configs_.size());
        if (threads > 1) {
            owned_pool = std::make_unique<SweepWorkerPool>(threads);
            pool = owned_pool.get();
        }
    }
    const std::size_t shard_count =
        pool == nullptr
            ? 1
            : std::max<std::size_t>(
                  1, std::min<std::size_t>(pool->workers(),
                                           states_.size()));
    const std::size_t decode_ahead =
        resolveDecodeAhead(sweep_.decodeAhead);

    Telemetry *const telemetry = driver_.telemetry;
    if (telemetry != nullptr) {
        telemetry->emit(TelemetryEvent(
            events::kSweepRunStarted,
            {field("benchmark", driver_.telemetryLabel),
             field("configs",
                   static_cast<std::uint64_t>(configs_.size())),
             field("threads",
                   static_cast<std::uint64_t>(shard_count)),
             field("batch_size",
                   static_cast<std::uint64_t>(sweep_.batchSize)),
             field("decode_ahead",
                   static_cast<std::uint64_t>(decode_ahead)),
             field("resumed", resume_from != nullptr)}));
    }

    // One guard for the whole pass: the consumer loop checks it at
    // batch granularity, worker shards at record granularity, and the
    // producer before every refill — so watchdog expiry or a cancel()
    // unwinds the pipeline from whichever stage notices first.
    ReplayGuard guard;
    guard.cancel = driver_.cancel;
    guard.limitMs = driver_.wallClockLimitMs;
    guard.hasDeadline = driver_.wallClockLimitMs != 0;
    if (guard.hasDeadline) {
        guard.deadline = Clock::now() + std::chrono::milliseconds(
                                            driver_.wallClockLimitMs);
    }

    RunningStats batch_ns;
    RunningStats stall_ns;

    const bool isolate = sweep_.isolateConfigFailures;
    std::atomic<bool> config_failed{false};

    // Shard-level fault isolation: a configuration whose replay (or
    // injected fault) throws a retryable/internal error is marked
    // failed and skipped from then on; the remaining configurations
    // never see a perturbed replay order, so their results stay
    // bit-exact. Timeouts and cancellation always fail the pass.
    const auto replayConfig = [&](std::size_t c,
                                  const RecordBatch &batch) {
        ConfigState &state = *states_[c];
        if (state.result.failed())
            return;
        try {
            FaultInjector &injector = FaultInjector::instance();
            if (injector.armed() &&
                injector.fire(FaultSite::kShardReplay,
                              driver_.telemetryLabel,
                              c) == FaultAction::kHang) {
                guard.park();
            }
            state.replay(batch, driver_, guard);
        } catch (const std::exception &e) {
            const ErrorCategory category = categoryOf(e);
            if (!isolate || category == ErrorCategory::kTimeout ||
                category == ErrorCategory::kCancelled) {
                throw;
            }
            state.result.error = e.what();
            config_failed.store(true, std::memory_order_relaxed);
            if (driver_.telemetry != nullptr) {
                driver_.telemetry->registry().increment(
                    "sweep.config_failed");
                driver_.telemetry->emit(TelemetryEvent(
                    events::kSweepConfigFailed,
                    {field("benchmark", driver_.telemetryLabel),
                     field("config", configs_[c].label),
                     field("at_branch", state.simulated),
                     field("category", std::string(toString(category))),
                     field("error", std::string(e.what()))}));
            }
        }
    };

    // Contiguous config shards, one task per shard per batch. runAll
    // blocks until every shard finishes, so the states are quiescent
    // between batches (which keeps batch-boundary checkpoints
    // race-free) regardless of who owns the pool.
    std::vector<std::pair<std::size_t, std::size_t>> shards;
    shards.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
        shards.emplace_back(states_.size() * s / shard_count,
                            states_.size() * (s + 1) / shard_count);
    }
    // Per-shard replay time, one slot per shard. Each task writes
    // only its own slot and runAll() is a barrier between batches, so
    // no synchronization is needed; the sum over slots against
    // wall x shards is the pipeline-occupancy headline.
    SpanTracer *const spans = driver_.spans;
    std::vector<std::uint64_t> shard_busy_ns(shard_count, 0);
    const auto broadcast = [&](const RecordBatch &batch) {
        if (pool == nullptr || shard_count <= 1) {
            const Clock::time_point s0 = Clock::now();
            {
                ScopedSpan replay_span(spans, "shard.replay");
                for (std::size_t c = 0; c < states_.size(); ++c)
                    replayConfig(c, batch);
            }
            shard_busy_ns[0] += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - s0)
                    .count());
            return;
        }
        std::vector<std::function<void()>> tasks;
        tasks.reserve(shards.size());
        for (std::size_t s = 0; s < shards.size(); ++s) {
            tasks.push_back([&, s, begin = shards[s].first,
                             end = shards[s].second] {
                if (spans != nullptr) {
                    spans->setCurrentThreadName("sweep-worker");
                    spans->counter(
                        "sweep.pool_occupancy",
                        static_cast<std::uint64_t>(pool->busyNow()));
                }
                const Clock::time_point s0 = Clock::now();
                {
                    ScopedSpan replay_span(spans, "shard.replay");
                    for (std::size_t c = begin; c < end; ++c)
                        replayConfig(c, batch);
                }
                shard_busy_ns[s] += static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(Clock::now() - s0)
                        .count());
            });
        }
        pool->runAll(std::move(tasks), guard.cancel);
    };
    const auto checkWatchdog = [&](std::uint64_t at_records) {
        guard.checkNow(at_records);
    };

    RunningStats barrier_wait_ns;
    if (decode_ahead >= 2) {
        // Pipelined: a producer thread keeps the ring topped up while
        // shards replay; the ring owns cursor bookkeeping and flags
        // checkpoint boundaries (see DecodeAheadRing).
        DecodeAheadRing ring(source, decode_ahead, sweep_.batchSize,
                             consumed, simulated, ckptEvery_,
                             driver_.telemetryLabel, guard.cancel,
                             spans);
        for (;;) {
            const Clock::time_point w0 = Clock::now();
            DecodeAheadRing::Slot *slot = ring.next();
            stall_ns.add(std::chrono::duration<double, std::nano>(
                             Clock::now() - w0)
                             .count());
            if (slot == nullptr)
                break;

            const Clock::time_point t0 = Clock::now();
            broadcast(slot->batch);
            batch_ns.add(std::chrono::duration<double, std::nano>(
                             Clock::now() - t0)
                             .count());

            consumed = slot->consumedAfter;
            simulated = slot->simulatedAfter;
            ++result.batches;

            checkWatchdog(consumed);
            // Once any configuration has failed, later checkpoints
            // would freeze a mixed-health sweep; skip them so every
            // published generation snapshots a fully healthy pass and
            // resuming any of them is bit-exact. The slot must still
            // be released to unblock the producer's barrier.
            if (slot->checkpointDue &&
                !config_failed.load(std::memory_order_relaxed))
                writeCheckpoint(source, result, consumed, simulated);
            ring.release(*slot);
        }
        barrier_wait_ns = ring.barrierWaitStats();
    } else {
        // Synchronous refill between broadcasts (decodeAhead == 1).
        // Checkpoint cadence: first batch boundary at or after each
        // multiple of ckptEvery_ simulated branches.
        std::uint64_t next_ckpt =
            ckptEvery_ == 0
                ? 0
                : (simulated / ckptEvery_ + 1) * ckptEvery_;

        RecordBatch batch(sweep_.batchSize);
        for (;;) {
            const Clock::time_point w0 = Clock::now();
            {
                FaultInjector &injector = FaultInjector::instance();
                if (injector.armed())
                    injector.fire(FaultSite::kDecodeBatch,
                                  driver_.telemetryLabel);
            }
            const std::size_t got = batch.refill(source);
            stall_ns.add(std::chrono::duration<double, std::nano>(
                             Clock::now() - w0)
                             .count());
            if (got == 0)
                break;

            const Clock::time_point t0 = Clock::now();
            broadcast(batch);
            batch_ns.add(std::chrono::duration<double, std::nano>(
                             Clock::now() - t0)
                             .count());

            consumed += batch.size();
            simulated += batch.conditionals();
            ++result.batches;

            checkWatchdog(consumed);
            if (ckptEvery_ != 0 && simulated >= next_ckpt) {
                if (!config_failed.load(std::memory_order_relaxed))
                    writeCheckpoint(source, result, consumed,
                                    simulated);
                next_ckpt = (simulated / ckptEvery_ + 1) * ckptEvery_;
            }
        }
    }

    // Harvest the engine-owned pool's occupancy before retiring it;
    // a shared pool's occupancy is reported by its owner instead.
    RunningStats owned_occupancy;
    if (owned_pool != nullptr)
        owned_occupancy = owned_pool->occupancyStats();
    owned_pool.reset();

    result.records = consumed;
    result.branches = simulated;
    // The states themselves (predictors, estimators, history
    // replicas) stay alive until the next run() or destruction, so
    // callers holding component pointers from the factories can still
    // inspect or serialize the final trained state.
    result.perConfig.reserve(states_.size());
    for (auto &state : states_)
        result.perConfig.push_back(std::move(state->result));

    result.wallMs = std::chrono::duration<double, std::milli>(
                        Clock::now() - run_start)
                        .count();
    result.decodeStallMs =
        stall_ns.count() == 0
            ? 0.0
            : stall_ns.mean() * static_cast<double>(stall_ns.count()) *
                  1e-6;
    result.barrierWaitMs =
        barrier_wait_ns.count() == 0
            ? 0.0
            : barrier_wait_ns.mean() *
                  static_cast<double>(barrier_wait_ns.count()) * 1e-6;
    std::uint64_t busy_total_ns = 0;
    for (const std::uint64_t ns : shard_busy_ns)
        busy_total_ns += ns;
    const double wall_ns = result.wallMs * 1e6;
    result.shardBusyFrac =
        wall_ns <= 0.0
            ? 0.0
            : static_cast<double>(busy_total_ns) /
                  (wall_ns * static_cast<double>(shard_count));

    if (telemetry != nullptr) {
        for (const auto &config : result.perConfig) {
            if (config.failed())
                continue; // its sweep_config_failed event already fired
            telemetry->emit(TelemetryEvent(
                events::kSweepConfigFinished,
                {field("benchmark", driver_.telemetryLabel),
                 field("config", config.label),
                 field("branches", config.branches),
                 field("mispredicts", config.mispredicts),
                 field("mispredict_rate", config.mispredictRate()),
                 field("context_switches", config.contextSwitches)}));
        }

        const std::uint64_t branch_updates =
            simulated * result.perConfig.size();
        const double ns_per_update =
            branch_updates == 0 ? 0.0
                                : result.wallMs * 1e6 /
                                      static_cast<double>(
                                          branch_updates);
        telemetry->emit(TelemetryEvent(
            events::kSweepRunFinished,
            {field("benchmark", driver_.telemetryLabel),
             field("configs",
                   static_cast<std::uint64_t>(
                       result.perConfig.size())),
             field("threads",
                   static_cast<std::uint64_t>(shard_count)),
             field("records", result.records),
             field("branches", result.branches),
             field("batches", result.batches),
             field("wall_ms", result.wallMs),
             field("decode_stall_ms", result.decodeStallMs),
             field("shard_busy_frac", result.shardBusyFrac),
             field("barrier_wait_ms", result.barrierWaitMs),
             field("ns_per_branch_update", ns_per_update),
             field("checkpoints_written",
                   result.checkpointsWritten)}));

        MetricsRegistry &registry = telemetry->registry();
        registry.increment("sweep.runs");
        registry.increment("sweep.records", result.records);
        registry.increment("sweep.branches", result.branches);
        registry.increment("sweep.batches", result.batches);
        registry.observe("sweep.configs_per_pass",
                         static_cast<double>(result.perConfig.size()));
        registry.observe("sweep.wall_ms", result.wallMs);
        registry.mergeStats("sweep.batch_ns", batch_ns);
        registry.mergeStats("sweep.decode_stall_ns", stall_ns);
        registry.setGauge("sweep.shard_busy_frac",
                          result.shardBusyFrac);
        if (barrier_wait_ns.count() != 0) {
            registry.mergeStats("sweep.barrier_wait_ns",
                                barrier_wait_ns);
        }
        if (owned_occupancy.count() != 0) {
            registry.mergeStats("sweep.pool_occupancy",
                                owned_occupancy);
        }
    }

    return result;
}

} // namespace confsim
