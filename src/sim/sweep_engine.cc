#include "sim/sweep_engine.h"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "ckpt/checkpoint.h"
#include "ckpt/checkpoint_store.h"
#include "obs/telemetry.h"
#include "predictor/history_register.h"
#include "sim/run_policy.h"
#include "util/running_stats.h"
#include "util/shift_register.h"
#include "util/status.h"

namespace confsim {

namespace {

std::string
cfgPrefix(std::size_t config)
{
    return "cfg" + std::to_string(config) + ":";
}

} // namespace

/**
 * Everything one configuration owns: its predictor, estimator bank,
 * private replicas of the architectural context registers, and its
 * accumulating result. One worker shard touches one ConfigState at a
 * time, so no field needs synchronization.
 */
struct SweepEngine::ConfigState
{
    ConfigState(const DriverOptions &options)
        : bhr(options.bhrBits), gcir(options.gcirBits, 0)
    {
        ctx.bhrBits = options.bhrBits;
        ctx.gcirBits = options.gcirBits;
        until_switch = options.contextSwitchInterval;
    }

    std::unique_ptr<BranchPredictor> predictor;
    std::vector<std::unique_ptr<ConfidenceEstimator>> owned;
    std::vector<ConfidenceEstimator *> estimators;

    HistoryRegister bhr;
    ShiftRegister gcir;
    BranchContext ctx;
    std::uint64_t simulated = 0;
    std::uint64_t until_switch = 0;

    SweepConfigResult result;

    /**
     * Replay @p batch through this configuration. This is the
     * sequential driver's record loop verbatim (see
     * SimulationDriver::runImpl) minus the driver-owned concerns the
     * engine handles at batch granularity instead: the watchdog, the
     * checkpoint cadence, and telemetry sampling. Any change here must
     * keep tests/integration/sweep_differential_test.cc green.
     */
    void
    replay(const RecordBatch &batch, const DriverOptions &options)
    {
        for (const BranchRecord &record : batch) {
            if (!record.isConditional())
                continue;

            ctx.pc = record.pc;
            ctx.bhr = bhr.value();
            ctx.gcir = gcir.value();

            const bool predicted = predictor->predict(record.pc);
            const bool correct = (predicted == record.taken);
            const bool recording =
                simulated >= options.warmupBranches;

            if (recording) {
                ++result.branches;
                if (!correct)
                    ++result.mispredicts;
            }

            for (std::size_t i = 0; i < estimators.size(); ++i) {
                const std::uint64_t bucket =
                    estimators[i]->bucketOf(ctx);
                if (recording)
                    result.estimatorStats[i].record(bucket, !correct);
                estimators[i]->update(ctx, correct, record.taken);
            }

            if (options.profileStatic && recording) {
                result.staticProfile.record(record.pc, !correct,
                                            record.taken);
            }

            predictor->update(record.pc, record.taken);
            bhr.recordOutcome(record.taken);
            gcir.shiftIn(!correct);
            ++simulated;

            if (options.contextSwitchInterval != 0 &&
                --until_switch == 0) {
                until_switch = options.contextSwitchInterval;
                if (options.flushPredictorOnSwitch)
                    predictor->reset();
                if (options.flushEstimatorsOnSwitch) {
                    for (auto *estimator : estimators)
                        estimator->reset();
                }
                bhr.reset();
                gcir.clear();
                ++result.contextSwitches;
            }
        }
    }
};

namespace {

/**
 * Persistent worker pool broadcasting one batch per generation.
 * Configurations are split into contiguous shards, one per worker; the
 * main thread publishes a batch, bumps the generation, and waits for
 * every shard to finish before touching any ConfigState again (which
 * is what makes batch-boundary checkpoints race-free).
 */
class ShardPool
{
  public:
    ShardPool(std::vector<std::unique_ptr<SweepEngine::ConfigState>>
                  &states,
              const DriverOptions &options, unsigned workers)
        : states_(states), options_(options),
          errors_(workers)
    {
        const std::size_t configs = states_.size();
        threads_.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            // Contiguous shard [begin, end) for worker w.
            const std::size_t begin = configs * w / workers;
            const std::size_t end = configs * (w + 1) / workers;
            threads_.emplace_back(
                [this, w, begin, end] { workerMain(w, begin, end); });
        }
    }

    ~ShardPool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cvWork_.notify_all();
        for (auto &thread : threads_)
            thread.join();
    }

    /** Run @p batch through every shard; blocks until all finish. */
    void
    broadcast(const RecordBatch &batch)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            batch_ = &batch;
            remaining_ = threads_.size();
            ++generation_;
        }
        cvWork_.notify_all();
        std::unique_lock<std::mutex> lock(mu_);
        cvDone_.wait(lock, [this] { return remaining_ == 0; });
        for (auto &error : errors_) {
            if (error) {
                const std::exception_ptr raised =
                    std::exchange(error, nullptr);
                std::rethrow_exception(raised);
            }
        }
    }

  private:
    void
    workerMain(unsigned index, std::size_t begin, std::size_t end)
    {
        std::uint64_t seen = 0;
        for (;;) {
            const RecordBatch *batch = nullptr;
            {
                std::unique_lock<std::mutex> lock(mu_);
                cvWork_.wait(lock, [this, seen] {
                    return stop_ || generation_ != seen;
                });
                if (stop_)
                    return;
                seen = generation_;
                batch = batch_;
            }
            try {
                for (std::size_t c = begin; c < end; ++c)
                    states_[c]->replay(*batch, options_);
            } catch (...) {
                errors_[index] = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (--remaining_ == 0)
                    cvDone_.notify_all();
            }
        }
    }

    std::vector<std::unique_ptr<SweepEngine::ConfigState>> &states_;
    const DriverOptions &options_;
    std::vector<std::exception_ptr> errors_;
    std::vector<std::thread> threads_;

    std::mutex mu_;
    std::condition_variable cvWork_, cvDone_;
    const RecordBatch *batch_ = nullptr;
    std::uint64_t generation_ = 0;
    std::size_t remaining_ = 0;
    bool stop_ = false;
};

unsigned
resolveThreads(unsigned requested, std::size_t configs)
{
    // CONFSIM_SEQUENTIAL forces single-threaded operation everywhere
    // (same escape hatch SuiteRunner honours) — results are identical
    // either way, this only aids debugging under a debugger/sanitizer.
    if (std::getenv("CONFSIM_SEQUENTIAL") != nullptr)
        return 1;
    unsigned threads = requested;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (static_cast<std::size_t>(threads) > configs)
        threads = static_cast<unsigned>(configs);
    return threads < 1 ? 1 : threads;
}

} // namespace

SweepEngine::SweepEngine(std::vector<SweepConfiguration> configs,
                         DriverOptions driver, SweepOptions sweep)
    : configs_(std::move(configs)), driver_(driver), sweep_(sweep)
{
    if (configs_.empty())
        fatal("SweepEngine needs at least one configuration");
    for (const auto &config : configs_) {
        if (!config.makePredictor || !config.makeEstimators) {
            fatal("sweep configuration '" + config.label +
                  "' is missing a factory");
        }
    }
}

SweepEngine::~SweepEngine() = default;

void
SweepEngine::checkpointEvery(std::uint64_t n_branches,
                             CheckpointStore *store)
{
    if (n_branches != 0 && store == nullptr)
        fatal("checkpointEvery: a period needs a CheckpointStore");
    ckptEvery_ = n_branches;
    ckptStore_ = store;
}

SweepRunResult
SweepEngine::run(TraceSource &source)
{
    return runImpl(source, nullptr);
}

SweepRunResult
SweepEngine::resume(TraceSource &source, const Checkpoint &from)
{
    return runImpl(source, &from);
}

void
SweepEngine::writeCheckpoint(TraceSource &source,
                             SweepRunResult &result,
                             std::uint64_t consumed,
                             std::uint64_t simulated)
{
    Checkpoint ckpt;
    ckpt.label = driver_.telemetryLabel;
    ckpt.watermark = consumed;
    ckpt.branches = simulated;

    StateWriter meta;
    meta.putU64(driver_.bhrBits);
    meta.putU64(driver_.gcirBits);
    meta.putU64(configs_.size());
    meta.putU64(driver_.profileStatic ? 1 : 0);
    ckpt.add("sweep:meta", 1, meta.take());

    for (std::size_t c = 0; c < states_.size(); ++c) {
        ConfigState &state = *states_[c];
        const std::string prefix = cfgPrefix(c);

        StateWriter cfg;
        cfg.putString(configs_[c].label);
        cfg.putU64(state.estimators.size());
        cfg.putU64(state.until_switch);
        cfg.putU64(state.bhr.value());
        cfg.putU64(state.gcir.value());
        cfg.putU64(state.result.branches);
        cfg.putU64(state.result.mispredicts);
        cfg.putU64(state.result.contextSwitches);
        ckpt.add(prefix + "meta", 1, cfg.take());

        ckpt.addComponent(prefix + "predictor:" +
                              state.predictor->name(),
                          *state.predictor);
        for (std::size_t i = 0; i < state.estimators.size(); ++i) {
            ckpt.addComponent(prefix + "estimator" +
                                  std::to_string(i) + ":" +
                                  state.estimators[i]->name(),
                              *state.estimators[i]);
            ckpt.addState(prefix + "stats" + std::to_string(i), 1,
                          state.result.estimatorStats[i]);
        }
        if (driver_.profileStatic) {
            ckpt.addState(prefix + "static_profile", 1,
                          state.result.staticProfile);
        }
    }
    if (source.checkpointable())
        ckpt.addComponent("source", source);

    ckptStore_->write(ckpt);
    ++result.checkpointsWritten;
}

SweepRunResult
SweepEngine::runImpl(TraceSource &source,
                     const Checkpoint *resume_from)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point run_start = Clock::now();

    SweepRunResult result;

    // Build every configuration's private state from its factories.
    states_.clear();
    states_.reserve(configs_.size());
    for (const auto &config : configs_) {
        auto state = std::make_unique<ConfigState>(driver_);
        state->predictor = config.makePredictor();
        if (state->predictor == nullptr) {
            fatal("sweep configuration '" + config.label +
                  "' produced a null predictor");
        }
        state->owned = config.makeEstimators();
        state->estimators.reserve(state->owned.size());
        state->result.label = config.label;
        for (const auto &estimator : state->owned) {
            state->estimators.push_back(estimator.get());
            state->result.estimatorStats.emplace_back(
                estimator->numBuckets());
            state->result.estimatorNames.push_back(estimator->name());
        }
        states_.push_back(std::move(state));
    }

    if (ckptEvery_ != 0) {
        // Same up-front audit the sequential driver performs: an
        // unauditable configuration must fail loudly, not resume wrong.
        for (const auto &state : states_) {
            if (!state->predictor->checkpointable()) {
                fatal("predictor '" + state->predictor->name() +
                      "' is not checkpointable");
            }
            for (const auto *estimator : state->estimators) {
                if (!estimator->checkpointable()) {
                    fatal("estimator '" + estimator->name() +
                          "' is not checkpointable");
                }
            }
        }
    }

    std::uint64_t simulated = 0; // conditional branches, shared cursor
    std::uint64_t consumed = 0;  // all records, shared cursor

    if (resume_from != nullptr) {
        const CheckpointComponent *meta =
            resume_from->find("sweep:meta");
        if (meta == nullptr)
            fatal("checkpoint has no sweep:meta component");
        if (meta->version != 1) {
            fatal("sweep:meta is version " +
                  std::to_string(meta->version) + ", expected 1");
        }
        StateReader in(meta->payload);
        in.expectU64(driver_.bhrBits, "checkpoint BHR width");
        in.expectU64(driver_.gcirBits, "checkpoint GCIR width");
        in.expectU64(configs_.size(), "checkpoint config count");
        in.expectU64(driver_.profileStatic ? 1 : 0,
                     "checkpoint static-profile flag");
        if (!in.atEnd())
            fatal("sweep:meta has unconsumed bytes");

        for (std::size_t c = 0; c < states_.size(); ++c) {
            ConfigState &state = *states_[c];
            const std::string prefix = cfgPrefix(c);
            const CheckpointComponent *cfg_meta =
                resume_from->find(prefix + "meta");
            if (cfg_meta == nullptr)
                fatal("checkpoint has no " + prefix +
                      "meta component");
            if (cfg_meta->version != 1) {
                fatal(prefix + "meta is version " +
                      std::to_string(cfg_meta->version) +
                      ", expected 1");
            }
            StateReader cfg(cfg_meta->payload);
            const std::string label = cfg.getString();
            if (label != configs_[c].label) {
                fatal("checkpoint config " + std::to_string(c) +
                      " is '" + label + "', expected '" +
                      configs_[c].label + "'");
            }
            cfg.expectU64(state.estimators.size(),
                          "checkpoint estimator count");
            state.until_switch = cfg.getU64();
            state.bhr.setValue(cfg.getU64());
            state.gcir.set(cfg.getU64());
            state.result.branches = cfg.getU64();
            state.result.mispredicts = cfg.getU64();
            state.result.contextSwitches = cfg.getU64();
            if (!cfg.atEnd())
                fatal(prefix + "meta has unconsumed bytes");

            resume_from->restoreComponent(
                prefix + "predictor:" + state.predictor->name(),
                *state.predictor);
            for (std::size_t i = 0; i < state.estimators.size();
                 ++i) {
                resume_from->restoreComponent(
                    prefix + "estimator" + std::to_string(i) + ":" +
                        state.estimators[i]->name(),
                    *state.estimators[i]);
                resume_from->restoreState(
                    prefix + "stats" + std::to_string(i), 1,
                    state.result.estimatorStats[i]);
            }
            if (driver_.profileStatic) {
                resume_from->restoreState(
                    prefix + "static_profile", 1,
                    state.result.staticProfile);
            }
            state.simulated = resume_from->branches;
        }

        simulated = resume_from->branches;
        if (resume_from->find("source") != nullptr) {
            resume_from->restoreComponent("source", source);
        } else {
            BranchRecord skipped;
            for (std::uint64_t i = 0; i < resume_from->watermark;
                 ++i) {
                if (!source.next(skipped)) {
                    fatal("trace ended after " + std::to_string(i) +
                          " record(s), before the resume watermark " +
                          std::to_string(resume_from->watermark));
                }
            }
        }
        consumed = resume_from->watermark;
    }

    const unsigned threads =
        resolveThreads(sweep_.threads, configs_.size());

    Telemetry *const telemetry = driver_.telemetry;
    if (telemetry != nullptr) {
        telemetry->emit(TelemetryEvent(
            events::kSweepRunStarted,
            {field("benchmark", driver_.telemetryLabel),
             field("configs",
                   static_cast<std::uint64_t>(configs_.size())),
             field("threads", static_cast<std::uint64_t>(threads)),
             field("batch_size",
                   static_cast<std::uint64_t>(sweep_.batchSize)),
             field("resumed", resume_from != nullptr)}));
    }

    const bool watchdog = driver_.wallClockLimitMs != 0;
    const Clock::time_point deadline =
        watchdog ? Clock::now() + std::chrono::milliseconds(
                                      driver_.wallClockLimitMs)
                 : Clock::time_point{};

    // Checkpoint cadence: first batch boundary at or after each
    // multiple of ckptEvery_ simulated branches.
    std::uint64_t next_ckpt =
        ckptEvery_ == 0
            ? 0
            : (simulated / ckptEvery_ + 1) * ckptEvery_;

    RecordBatch batch(sweep_.batchSize);
    RunningStats batch_ns;

    // Workers only exist for multi-threaded runs; T == 1 replays every
    // configuration inline on this thread (identical results, no pool).
    std::unique_ptr<ShardPool> pool;
    if (threads > 1)
        pool = std::make_unique<ShardPool>(states_, driver_, threads);

    while (batch.refill(source) != 0) {
        const Clock::time_point t0 = Clock::now();
        if (pool != nullptr) {
            pool->broadcast(batch);
        } else {
            for (auto &state : states_)
                state->replay(batch, driver_);
        }
        batch_ns.add(std::chrono::duration<double, std::nano>(
                         Clock::now() - t0)
                         .count());

        consumed += batch.size();
        simulated += batch.conditionals();
        ++result.batches;

        if (watchdog && Clock::now() > deadline) {
            throw WatchdogTimeout(
                "sweep exceeded its wall-clock budget of " +
                std::to_string(driver_.wallClockLimitMs) +
                " ms after " + std::to_string(consumed) +
                " records");
        }

        if (ckptEvery_ != 0 && simulated >= next_ckpt) {
            writeCheckpoint(source, result, consumed, simulated);
            next_ckpt = (simulated / ckptEvery_ + 1) * ckptEvery_;
        }
    }

    // The pool must be quiescent before results are harvested.
    pool.reset();

    result.records = consumed;
    result.branches = simulated;
    // The states themselves (predictors, estimators, history
    // replicas) stay alive until the next run() or destruction, so
    // callers holding component pointers from the factories can still
    // inspect or serialize the final trained state.
    result.perConfig.reserve(states_.size());
    for (auto &state : states_)
        result.perConfig.push_back(std::move(state->result));

    result.wallMs = std::chrono::duration<double, std::milli>(
                        Clock::now() - run_start)
                        .count();

    if (telemetry != nullptr) {
        for (const auto &config : result.perConfig) {
            telemetry->emit(TelemetryEvent(
                events::kSweepConfigFinished,
                {field("benchmark", driver_.telemetryLabel),
                 field("config", config.label),
                 field("branches", config.branches),
                 field("mispredicts", config.mispredicts),
                 field("mispredict_rate", config.mispredictRate()),
                 field("context_switches", config.contextSwitches)}));
        }

        const std::uint64_t branch_updates =
            simulated * result.perConfig.size();
        const double ns_per_update =
            branch_updates == 0 ? 0.0
                                : result.wallMs * 1e6 /
                                      static_cast<double>(
                                          branch_updates);
        telemetry->emit(TelemetryEvent(
            events::kSweepRunFinished,
            {field("benchmark", driver_.telemetryLabel),
             field("configs",
                   static_cast<std::uint64_t>(
                       result.perConfig.size())),
             field("threads", static_cast<std::uint64_t>(threads)),
             field("records", result.records),
             field("branches", result.branches),
             field("batches", result.batches),
             field("wall_ms", result.wallMs),
             field("ns_per_branch_update", ns_per_update),
             field("checkpoints_written",
                   result.checkpointsWritten)}));

        MetricsRegistry &registry = telemetry->registry();
        registry.increment("sweep.runs");
        registry.increment("sweep.records", result.records);
        registry.increment("sweep.branches", result.branches);
        registry.increment("sweep.batches", result.batches);
        registry.observe("sweep.configs_per_pass",
                         static_cast<double>(result.perConfig.size()));
        registry.observe("sweep.wall_ms", result.wallMs);
        registry.mergeStats("sweep.batch_ns", batch_ns);
    }

    return result;
}

} // namespace confsim
