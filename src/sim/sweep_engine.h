/**
 * @file
 * Single-pass multi-configuration sweep engine.
 *
 * The paper's figures are design-space sweeps: many (predictor x
 * estimator x geometry) configurations evaluated over the same
 * benchmark traces. Replaying the trace once per configuration makes
 * sweep cost grow linearly with configuration count even though the
 * expensive part — decoding or generating the trace — is identical
 * every time. The SweepEngine decodes each trace exactly once, buffers
 * records into cache-friendly fixed-size batches (trace/record_batch.h)
 * and broadcasts every batch to N attached configurations.
 *
 * Configurations are sharded across a pool of persistent worker
 * threads. Each configuration owns private replicas of the
 * architectural context registers (BHR and global CIR) and its own
 * predictor, estimator bank, bucket statistics, and static profile, so
 * per-configuration simulation is exactly the sequential Driver's
 * record loop — results are bit-exact with running SimulationDriver
 * once per configuration (the contract
 * tests/integration/sweep_differential_test.cc enforces for every
 * estimator family). Thread count and batch size only change wall
 * time, never results.
 *
 * Two pipelining layers overlap the remaining serial phases, both
 * pure performance knobs that never change results:
 *  - **Decode-ahead**: a small ring of batches is refilled by a
 *    dedicated producer thread while worker shards replay the
 *    previous batch, so workers never wait on TraceSource::next.
 *    Checkpoints act as pipeline barriers — the producer pauses with
 *    the source quiescent exactly at the checkpointed record, so
 *    serialized cursors (and watermark replay) are identical to the
 *    synchronous engine's.
 *  - **Shared worker pool**: engines can share one globally sized
 *    SweepWorkerPool, letting SuiteRunner::runSweep() pipeline
 *    multiple benchmarks' sweep passes concurrently instead of
 *    leaving cores idle whenever configs < hardware threads.
 *
 * Differences from the sequential driver, by design:
 *  - per-branch estimator update-cost sampling is not performed (the
 *    engine reports batch-level sweep.batch_ns instead);
 *  - context_switch_flush telemetry events are not emitted per flush
 *    (the per-config flush *count* is still reported);
 *  - checkpoints snapshot the whole sweep — shared trace cursor plus
 *    every configuration's state — and are taken at the first batch
 *    boundary at or after each checkpointEvery() multiple, not at the
 *    exact branch. Resume is bit-exact from either cadence.
 */

#ifndef CONFSIM_SIM_SWEEP_ENGINE_H
#define CONFSIM_SIM_SWEEP_ENGINE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/driver.h"
#include "sim/suite_runner.h"
#include "trace/record_batch.h"
#include "util/running_stats.h"

namespace confsim {

class Checkpoint;
class CheckpointStore;

/**
 * A generic shared pool of persistent worker threads. Callers submit
 * a group of closures with runAll(), which blocks until every closure
 * has run and rethrows the first captured exception. Multiple callers
 * (e.g. several SweepEngines pipelining different benchmarks) may
 * submit concurrently; tasks interleave on the same workers, and each
 * caller waits only for its own group.
 *
 * Occupancy is sampled at every task start (busy workers including
 * the starting one) into a RunningStats, so telemetry can report how
 * well a globally sized pool was utilised.
 */
class SweepWorkerPool
{
  public:
    /** Spawn @p workers persistent threads (0 runs tasks inline). */
    explicit SweepWorkerPool(unsigned workers);
    ~SweepWorkerPool();

    SweepWorkerPool(const SweepWorkerPool &) = delete;
    SweepWorkerPool &operator=(const SweepWorkerPool &) = delete;

    /** @return the number of worker threads. */
    unsigned
    workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Run every task on the pool; blocks until all complete. The
     * first exception any task raises is rethrown here (after every
     * task in the group has finished). When @p cancel is set and
     * becomes cancelled, tasks not yet started are skipped (recorded
     * as one Error{kCancelled}) so a fail-fast teardown never waits
     * on a deep queue; tasks already running unwind via their own
     * cooperative checks.
     */
    void runAll(std::vector<std::function<void()>> tasks,
                const CancellationToken *cancel = nullptr);

    /** @return busy-worker samples taken at each task start. */
    RunningStats occupancyStats() const;

    /** @return workers currently running a task (point-in-time). */
    unsigned busyNow() const;

  private:
    /** Completion latch for one runAll() group. */
    struct WaitGroup
    {
        std::mutex mu;
        std::condition_variable cv;
        std::size_t remaining = 0;
        std::exception_ptr error;
        const CancellationToken *cancel = nullptr;
    };
    struct Task
    {
        std::function<void()> fn;
        WaitGroup *group;
    };

    void workerMain();

    mutable std::mutex mu_;
    std::condition_variable cvWork_;
    std::deque<Task> queue_;
    bool stop_ = false;
    unsigned busy_ = 0;
    RunningStats occupancy_;
    std::vector<std::thread> threads_;
};

/** One attached (predictor, estimator set) configuration. */
struct SweepConfiguration
{
    /** Label used in results, telemetry, and checkpoint components. */
    std::string label;

    /** Fresh-predictor factory (invoked once per run()). */
    PredictorFactory makePredictor;

    /** Fresh-estimator-set factory (invoked once per run()). */
    EstimatorSetFactory makeEstimators;
};

/**
 * A region-granular recording plan for statistical sampling
 * (sim/sampling_engine.h). The trace is viewed as consecutive regions
 * of regionBranches conditional branches; each region is replayed in
 * one of three modes chosen by regionSlots:
 *
 *  - a slot id < numSlots: **detailed** — predictor and estimators
 *    update AND statistics are recorded, both into the aggregate
 *    result fields and into that slot's SweepSlotStats bank (slots
 *    separate sampled regions into repeated-subsampling groups);
 *  - kWarmOnly: **functional warming** — predictor/estimator state
 *    updates normally but nothing is recorded, keeping the state a
 *    sampled region sees identical to a full replay's;
 *  - kSkip: **fast-forward** — no predictor or estimator work at all;
 *    only the branch cursor and context-switch phase advance. This is
 *    the wall-clock lever: state diverges, so plans place a kWarmOnly
 *    window before each detailed region to re-converge it.
 *
 * The plan is indexed purely by each configuration's private count of
 * simulated conditional branches, so results are bit-exact at any
 * thread count, batch size, or decode-ahead depth — the same contract
 * as every other sweep knob. Plans compose with neither checkpointing
 * nor resume (fatal at run time): a partially recorded plan cannot be
 * audited for bit-exact restoration.
 */
struct SweepRecordingPlan
{
    /** Region mode: functionally warm, record nothing. */
    static constexpr std::uint32_t kWarmOnly = 0xFFFFFFFFu;

    /** Region mode: skip all predictor/estimator work. */
    static constexpr std::uint32_t kSkip = 0xFFFFFFFEu;

    /** Conditional branches per region (> 0). */
    std::uint64_t regionBranches = 0;

    /** Per-region mode: a slot id, kWarmOnly, or kSkip. */
    std::vector<std::uint32_t> regionSlots;

    /** Number of detailed slots (slot ids are < numSlots). */
    std::uint32_t numSlots = 0;

    /** @return the mode for @p region (past-the-end warms only). */
    std::uint32_t
    slotForRegion(std::uint64_t region) const
    {
        return region < regionSlots.size() ? regionSlots[region]
                                           : kWarmOnly;
    }
};

/** Sweep-engine knobs (simulation semantics come from DriverOptions). */
struct SweepOptions
{
    /**
     * Worker threads to shard configurations across; 0 = one per
     * hardware thread, capped at the configuration count. 1 runs
     * inline on the calling thread. Thread count never changes
     * results. Ignored when @ref pool is set (the shared pool's size
     * governs; shards are still capped at the configuration count).
     */
    unsigned threads = 0;

    /** Records per broadcast batch (see RecordBatch). */
    std::size_t batchSize = RecordBatch::kDefaultCapacity;

    /**
     * Decode-ahead ring depth: how many batches may be decoded ahead
     * of the one being replayed. >= 2 runs a producer thread that
     * refills batches while workers replay (the default); 1 refills
     * synchronously between broadcasts (the pre-pipelining engine);
     * 0 = default depth. Pure performance knob — results, checkpoint
     * cadence, and resume behaviour are bit-identical at any depth.
     * CONFSIM_DECODE_AHEAD overrides, CONFSIM_SEQUENTIAL forces 1.
     */
    std::size_t decodeAhead = kDefaultDecodeAhead;

    /**
     * SuiteRunner::runSweep() only: how many benchmarks' sweep passes
     * may run concurrently on the shared pool. 0 sizes automatically
     * (pool workers / shards per benchmark). 1 runs benchmarks
     * sequentially. Never changes results; per-benchmark error
     * isolation and suite-order merging are preserved.
     * CONFSIM_BENCH_PARALLEL overrides, CONFSIM_SEQUENTIAL forces 1.
     */
    unsigned benchParallel = 0;

    /**
     * Optional shared worker pool (non-owning). When set, the engine
     * broadcasts batches through it instead of creating a private
     * pool, so several engines can share globally sized parallelism.
     * The pool must outlive every run()/resume() call.
     */
    SweepWorkerPool *pool = nullptr;

    /**
     * Per-configuration failure isolation. When set, a configuration
     * whose replay throws a retryable/internal error is marked failed
     * (SweepConfigResult::error) and dropped from subsequent batches
     * while the surviving configurations continue bit-exactly; the
     * engine also stops writing further sweep checkpoints (previously
     * written generations stay valid and resumable). Watchdog
     * timeouts and cancellation always fail the whole pass.
     * SuiteRunner::runSweep() sets this for kContinueOnError
     * policies, mirroring benchmark-level isolation.
     */
    bool isolateConfigFailures = false;

    /**
     * Optional region-granular recording plan (non-owning; must
     * outlive the run). Null replays and records everything — the
     * exact-simulation default. See SweepRecordingPlan.
     */
    const SweepRecordingPlan *recordingPlan = nullptr;

    static constexpr std::size_t kDefaultDecodeAhead = 3;
};

/**
 * Statistics one detailed recording-plan slot accumulated (see
 * SweepRecordingPlan): the per-subsample banks the sampling layer
 * turns into between-subsample variance.
 */
struct SweepSlotStats
{
    std::uint64_t branches = 0;    //!< recorded conditional branches
    std::uint64_t mispredicts = 0; //!< predictor misses (recorded)
    std::vector<BucketStats> estimatorStats; //!< per estimator
};

/**
 * Everything one configuration produced — the same quantities a
 * sequential DriverResult carries, per attached configuration.
 */
struct SweepConfigResult
{
    std::string label;
    std::uint64_t branches = 0;    //!< recorded conditional branches
    std::uint64_t mispredicts = 0; //!< predictor misses (recorded)
    std::uint64_t contextSwitches = 0;
    std::vector<BucketStats> estimatorStats;
    std::vector<std::string> estimatorNames;
    StaticBranchProfile staticProfile;

    /**
     * Per-branch attribution profile
     * (DriverOptions::profileBranches). Collected by the replica's
     * own replay loop, so it matches a sequential driver run of the
     * same configuration entry for entry.
     */
    BranchProfile branchProfile;

    /**
     * Per-slot statistic banks, one per SweepRecordingPlan slot;
     * empty when the sweep ran without a recording plan. Detailed
     * records land both here and in the aggregate fields above, so a
     * full-coverage single-slot plan reproduces a plain sweep's
     * aggregates exactly with slotStats[0] equal to them.
     */
    std::vector<SweepSlotStats> slotStats;

    /**
     * Empty on success. With SweepOptions::isolateConfigFailures set,
     * a failed configuration carries its error here (counts frozen at
     * the last completed batch) while the other configurations'
     * results remain bit-exact and trustworthy.
     */
    std::string error;

    /** @return true when this configuration failed mid-sweep. */
    bool failed() const { return !error.empty(); }

    /** @return overall misprediction rate. */
    double
    mispredictRate() const
    {
        return branches == 0
                   ? 0.0
                   : static_cast<double>(mispredicts) /
                         static_cast<double>(branches);
    }
};

/** Results of one sweep pass over one trace. */
struct SweepRunResult
{
    /** Per-configuration results (configuration order preserved). */
    std::vector<SweepConfigResult> perConfig;

    std::uint64_t records = 0;  //!< records consumed from the source
    std::uint64_t branches = 0; //!< conditional branches simulated
    std::uint64_t batches = 0;  //!< broadcast batches processed
    double wallMs = 0.0;        //!< wall time of the run() call
    /** Total time the replay side waited on trace decode. With
     *  decode-ahead this is genuine pipeline stall; at depth 1 it is
     *  the full (serial) refill time. */
    double decodeStallMs = 0.0;
    std::uint64_t checkpointsWritten = 0;

    /**
     * Fraction of (wall time x shards) the worker shards spent
     * replaying batches — the pipeline-occupancy headline. 1.0 means
     * every shard was busy for the whole pass; the gap is barrier
     * wait, decode stall, and checkpoint serialization.
     */
    double shardBusyFrac = 0.0;

    /** Total time the decode producer spent parked at checkpoint
     *  barriers (0 without decode-ahead or checkpointing). */
    double barrierWaitMs = 0.0;
};

/** Runs N configurations over a trace decoded exactly once. */
class SweepEngine
{
  public:
    /** Per-configuration private state (opaque; defined in the .cc). */
    struct ConfigState;

    /**
     * @param configs Attached configurations (>= 1).
     * @param driver Simulation knobs shared by every configuration
     *        (BHR/GCIR widths, warmup, context-switch modelling,
     *        static profiling, telemetry).
     * @param sweep Thread/batch tuning knobs.
     */
    SweepEngine(std::vector<SweepConfiguration> configs,
                DriverOptions driver = {}, SweepOptions sweep = {});

    ~SweepEngine();

    SweepEngine(const SweepEngine &) = delete;
    SweepEngine &operator=(const SweepEngine &) = delete;

    /** Consume @p source to exhaustion, feeding every configuration. */
    SweepRunResult run(TraceSource &source);

    /**
     * Continue a sweep from @p from (a checkpoint this engine's
     * configuration list wrote). The shared cursor is restored into
     * @p source when the checkpoint carries one; otherwise @p source
     * must be a fresh deterministic stream and the engine replays and
     * discards `from.watermark` records. fatal() on any configuration
     * mismatch.
     */
    SweepRunResult resume(TraceSource &source, const Checkpoint &from);

    /**
     * Enable sweep checkpointing: at the first batch boundary at or
     * after every @p n_branches simulated conditional branches, the
     * shared trace cursor plus every configuration's full state is
     * written atomically to @p store as the next generation. 0
     * disables. fatal() at run() time if any configuration is not
     * checkpointable.
     */
    void checkpointEvery(std::uint64_t n_branches,
                         CheckpointStore *store);

    /** @return the number of attached configurations. */
    std::size_t numConfigs() const { return configs_.size(); }

  private:
    SweepRunResult runImpl(TraceSource &source,
                           const Checkpoint *resume_from);
    void writeCheckpoint(TraceSource &source, SweepRunResult &result,
                         std::uint64_t consumed,
                         std::uint64_t simulated);

    std::vector<SweepConfiguration> configs_;
    DriverOptions driver_;
    SweepOptions sweep_;
    std::uint64_t ckptEvery_ = 0;
    CheckpointStore *ckptStore_ = nullptr;
    std::vector<std::unique_ptr<ConfigState>> states_;
};

} // namespace confsim

#endif // CONFSIM_SIM_SWEEP_ENGINE_H
