/**
 * @file
 * Single-pass multi-configuration sweep engine.
 *
 * The paper's figures are design-space sweeps: many (predictor x
 * estimator x geometry) configurations evaluated over the same
 * benchmark traces. Replaying the trace once per configuration makes
 * sweep cost grow linearly with configuration count even though the
 * expensive part — decoding or generating the trace — is identical
 * every time. The SweepEngine decodes each trace exactly once, buffers
 * records into cache-friendly fixed-size batches (trace/record_batch.h)
 * and broadcasts every batch to N attached configurations.
 *
 * Configurations are sharded across a pool of persistent worker
 * threads. Each configuration owns private replicas of the
 * architectural context registers (BHR and global CIR) and its own
 * predictor, estimator bank, bucket statistics, and static profile, so
 * per-configuration simulation is exactly the sequential Driver's
 * record loop — results are bit-exact with running SimulationDriver
 * once per configuration (the contract
 * tests/integration/sweep_differential_test.cc enforces for every
 * estimator family). Thread count and batch size only change wall
 * time, never results.
 *
 * Differences from the sequential driver, by design:
 *  - per-branch estimator update-cost sampling is not performed (the
 *    engine reports batch-level sweep.batch_ns instead);
 *  - context_switch_flush telemetry events are not emitted per flush
 *    (the per-config flush *count* is still reported);
 *  - checkpoints snapshot the whole sweep — shared trace cursor plus
 *    every configuration's state — and are taken at the first batch
 *    boundary at or after each checkpointEvery() multiple, not at the
 *    exact branch. Resume is bit-exact from either cadence.
 */

#ifndef CONFSIM_SIM_SWEEP_ENGINE_H
#define CONFSIM_SIM_SWEEP_ENGINE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/driver.h"
#include "sim/suite_runner.h"
#include "trace/record_batch.h"

namespace confsim {

class Checkpoint;
class CheckpointStore;

/** One attached (predictor, estimator set) configuration. */
struct SweepConfiguration
{
    /** Label used in results, telemetry, and checkpoint components. */
    std::string label;

    /** Fresh-predictor factory (invoked once per run()). */
    PredictorFactory makePredictor;

    /** Fresh-estimator-set factory (invoked once per run()). */
    EstimatorSetFactory makeEstimators;
};

/** Sweep-engine knobs (simulation semantics come from DriverOptions). */
struct SweepOptions
{
    /**
     * Worker threads to shard configurations across; 0 = one per
     * hardware thread, capped at the configuration count. 1 runs
     * inline on the calling thread. Thread count never changes
     * results.
     */
    unsigned threads = 0;

    /** Records per broadcast batch (see RecordBatch). */
    std::size_t batchSize = RecordBatch::kDefaultCapacity;
};

/**
 * Everything one configuration produced — the same quantities a
 * sequential DriverResult carries, per attached configuration.
 */
struct SweepConfigResult
{
    std::string label;
    std::uint64_t branches = 0;    //!< recorded conditional branches
    std::uint64_t mispredicts = 0; //!< predictor misses (recorded)
    std::uint64_t contextSwitches = 0;
    std::vector<BucketStats> estimatorStats;
    std::vector<std::string> estimatorNames;
    StaticBranchProfile staticProfile;

    /** @return overall misprediction rate. */
    double
    mispredictRate() const
    {
        return branches == 0
                   ? 0.0
                   : static_cast<double>(mispredicts) /
                         static_cast<double>(branches);
    }
};

/** Results of one sweep pass over one trace. */
struct SweepRunResult
{
    /** Per-configuration results (configuration order preserved). */
    std::vector<SweepConfigResult> perConfig;

    std::uint64_t records = 0;  //!< records consumed from the source
    std::uint64_t branches = 0; //!< conditional branches simulated
    std::uint64_t batches = 0;  //!< broadcast batches processed
    double wallMs = 0.0;        //!< wall time of the run() call
    std::uint64_t checkpointsWritten = 0;
};

/** Runs N configurations over a trace decoded exactly once. */
class SweepEngine
{
  public:
    /** Per-configuration private state (opaque; defined in the .cc). */
    struct ConfigState;

    /**
     * @param configs Attached configurations (>= 1).
     * @param driver Simulation knobs shared by every configuration
     *        (BHR/GCIR widths, warmup, context-switch modelling,
     *        static profiling, telemetry).
     * @param sweep Thread/batch tuning knobs.
     */
    SweepEngine(std::vector<SweepConfiguration> configs,
                DriverOptions driver = {}, SweepOptions sweep = {});

    ~SweepEngine();

    SweepEngine(const SweepEngine &) = delete;
    SweepEngine &operator=(const SweepEngine &) = delete;

    /** Consume @p source to exhaustion, feeding every configuration. */
    SweepRunResult run(TraceSource &source);

    /**
     * Continue a sweep from @p from (a checkpoint this engine's
     * configuration list wrote). The shared cursor is restored into
     * @p source when the checkpoint carries one; otherwise @p source
     * must be a fresh deterministic stream and the engine replays and
     * discards `from.watermark` records. fatal() on any configuration
     * mismatch.
     */
    SweepRunResult resume(TraceSource &source, const Checkpoint &from);

    /**
     * Enable sweep checkpointing: at the first batch boundary at or
     * after every @p n_branches simulated conditional branches, the
     * shared trace cursor plus every configuration's full state is
     * written atomically to @p store as the next generation. 0
     * disables. fatal() at run() time if any configuration is not
     * checkpointable.
     */
    void checkpointEvery(std::uint64_t n_branches,
                         CheckpointStore *store);

    /** @return the number of attached configurations. */
    std::size_t numConfigs() const { return configs_.size(); }

  private:
    SweepRunResult runImpl(TraceSource &source,
                           const Checkpoint *resume_from);
    void writeCheckpoint(TraceSource &source, SweepRunResult &result,
                         std::uint64_t consumed,
                         std::uint64_t simulated);

    std::vector<SweepConfiguration> configs_;
    DriverOptions driver_;
    SweepOptions sweep_;
    std::uint64_t ckptEvery_ = 0;
    CheckpointStore *ckptStore_ = nullptr;
    std::vector<std::unique_ptr<ConfigState>> states_;
};

} // namespace confsim

#endif // CONFSIM_SIM_SWEEP_ENGINE_H
