/**
 * @file
 * Shared experiment plumbing for the figure/table bench harnesses.
 *
 * Centralizes the paper's canonical configurations (predictors, table
 * geometries, trace lengths) plus the report helpers every bench binary
 * uses: composite curve extraction, coverage summaries at reference
 * operating points, ASCII figure plotting, and CSV emission. Keeping
 * these here means each bench/figNN binary is a short declarative list
 * of configurations — and that all figures share identical methodology.
 */

#ifndef CONFSIM_SIM_EXPERIMENT_H
#define CONFSIM_SIM_EXPERIMENT_H

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "confidence/one_level.h"
#include "confidence/perceptron_margin.h"
#include "confidence/tage_confidence.h"
#include "confidence/two_level.h"
#include "metrics/confidence_curve.h"
#include "obs/telemetry.h"
#include "predictor/gshare.h"
#include "predictor/perceptron.h"
#include "predictor/tage.h"
#include "sim/sampling_engine.h"
#include "sim/suite_runner.h"
#include "sim/sweep_engine.h"
#include "util/cli.h"

namespace confsim {

/** Paper-canonical geometry constants. */
namespace paper {

constexpr std::size_t kLargePredictorEntries = std::size_t{1} << 16;
constexpr unsigned kLargeHistoryBits = 16;
constexpr std::size_t kSmallPredictorEntries = std::size_t{1} << 12;
constexpr unsigned kSmallHistoryBits = 12;
constexpr std::size_t kLargeCtEntries = std::size_t{1} << 16;
constexpr unsigned kCirBits = 16;
constexpr std::uint32_t kCounterMax = 16;

} // namespace paper

/** Runtime environment for a bench binary, parsed from its CLI. */
struct ExperimentEnv
{
    std::uint64_t branchesPerBenchmark = 2'000'000;
    std::string csvDir = ".";
    bool fullSuite = true;

    /** Checkpoint directory ("" = checkpointing off). */
    std::string checkpointDir;

    /** Branches between mid-run checkpoints (--checkpoint-every). */
    std::uint64_t checkpointEvery = 250'000;

    /** Resume from checkpointDir's prior state (--resume). */
    bool resume = false;

    /** Producing binary's description (the manifest "tool" field). */
    std::string tool;

    /**
     * Worker threads for sweep-engine runs (--sweep-threads); 0 = one
     * per hardware thread. Thread count never changes results.
     */
    unsigned sweepThreads = 0;

    /** Records per sweep broadcast batch (--batch-size). */
    std::size_t batchSize = RecordBatch::kDefaultCapacity;

    /**
     * Sweep decode-ahead ring depth (--decode-ahead); 1 = refill
     * synchronously between broadcasts, >= 2 = decode batches ahead
     * on a producer thread. Never changes results.
     */
    std::size_t decodeAhead = SweepOptions::kDefaultDecodeAhead;

    /**
     * Concurrent benchmark sweep passes (--bench-parallel); 0 =
     * auto-size to the worker pool. Never changes results.
     */
    unsigned benchParallel = 0;

    /**
     * Deterministic fault schedule (--fault-plan, or the
     * CONFSIM_FAULT_PLAN environment variable when the flag is not
     * given); "" = no faults. Grammar in fault/fault_plan.h.
     * fromCli() arms the process-wide FaultInjector with the parsed
     * plan and wires an observer that counts fault.injected.<site>
     * and emits fault_injected telemetry events.
     */
    std::string faultPlan;

    /**
     * Base exponential retry backoff in milliseconds
     * (--retry-backoff-ms); see RunPolicy::retryBackoffMs.
     */
    std::uint64_t retryBackoffMs = 0;

    /**
     * Suite wall-clock budget in milliseconds (--deadline-ms, 0 =
     * unlimited); see RunPolicy::deadlineMs.
     */
    std::uint64_t deadlineMs = 0;

    /**
     * Predictor family name (--predictor); one of
     * knownPredictorNames(). Benches that honor it build their
     * predictor with predictorFactory().
     */
    std::string predictor = "gshare-large";

    /** Sampled-replay region fraction (--sample-rate), in (0, 1]. */
    double sampleRate = 0.1;

    /** Conditionals per sampling region (--region-branches). */
    std::uint64_t regionBranches = 10'000;

    /** Quantile strata for sampled replay (--strata). */
    std::uint32_t strata = 4;

    /** Repeated-subsampling groups (--subsamples). */
    std::uint32_t subsamples = 5;

    /** Region-selection seed (--sample-seed). */
    std::uint64_t sampleSeed = 0x5eed;

    /**
     * Functional-warming window in regions (--warmup-regions);
     * SamplingOptions::kWarmAll (the default) warms every non-sampled
     * region instead of fast-forwarding.
     */
    std::uint64_t warmupRegions = ~0ull;

    /** Telemetry knobs (--telemetry/--telemetry-csv/--progress). */
    TelemetryOptions telemetry;

    /**
     * Shared telemetry context, or null when no sink is enabled.
     * Created by fromCli(); shared so copies of the env feed one
     * stream. runSuiteExperiment() wires it into the driver.
     */
    std::shared_ptr<Telemetry> telemetryContext;

    /**
     * Parse standard bench options (--branches, --csv-dir, --fast,
     * --telemetry, --telemetry-csv, --progress, --heartbeat).
     * @return false if --help was printed (caller should exit 0).
     */
    static bool fromCli(int argc, const char *const *argv,
                        const std::string &description,
                        ExperimentEnv &env);

    /** @return the configured IBS suite (full or reduced). */
    BenchmarkSuite makeSuite() const;

    /** @return makeNamedPredictorFactory(predictor). */
    PredictorFactory predictorFactory() const;
};

/** A labelled estimator configuration. */
struct EstimatorConfig
{
    std::string label;
    std::function<std::unique_ptr<ConfidenceEstimator>()> make;
};

/** Factory for the paper's 64K-entry gshare. */
PredictorFactory largeGshareFactory();

/** Factory for the paper's 4K-entry gshare. */
PredictorFactory smallGshareFactory();

/** Factory for the reference-scale TAGE predictor. */
PredictorFactory tageFactory(TageConfig config = TageConfig::makeDefault());

/** Factory for the reference-scale perceptron predictor. */
PredictorFactory perceptronFactory(
    PerceptronConfig config = PerceptronConfig::makeDefault());

/**
 * The CLI predictor-name registry shared by --predictor and the sweep
 * server: "gshare-large", "gshare-small", "tage", "perceptron".
 */
std::vector<std::string> knownPredictorNames();

/**
 * Build the predictor factory named @p name.
 * @throws Error{kConfig} on an unknown name.
 */
PredictorFactory makeNamedPredictorFactory(const std::string &name);

/** One-level CT with full CIRs and raw-pattern (ideal-ready) buckets. */
EstimatorConfig
oneLevelIdealConfig(IndexScheme scheme,
                    std::size_t entries = paper::kLargeCtEntries,
                    unsigned cir_bits = paper::kCirBits,
                    CtInit init = CtInit::Ones);

/** One-level CT with full CIRs and ones-count buckets. */
EstimatorConfig
oneLevelOnesCountConfig(IndexScheme scheme,
                        std::size_t entries = paper::kLargeCtEntries,
                        unsigned cir_bits = paper::kCirBits);

/** One-level CT with embedded counters. */
EstimatorConfig
oneLevelCounterConfig(IndexScheme scheme, CounterKind kind,
                      std::size_t entries = paper::kLargeCtEntries,
                      std::uint32_t max_value = paper::kCounterMax);

/** Two-level configuration with raw-pattern level-2 buckets. */
EstimatorConfig
twoLevelConfig(IndexScheme first_scheme, SecondLevelIndex second_index,
               std::size_t first_entries = paper::kLargeCtEntries,
               unsigned first_cir_bits = paper::kCirBits,
               unsigned second_cir_bits = paper::kCirBits);

/**
 * TAGE's built-in provider confidence. Pair with tageFactory() of the
 * same geometry so the estimator's shadow replica tracks the real
 * predictor bit-for-bit.
 */
EstimatorConfig
tageProviderConfig(TageConfig config = TageConfig::makeDefault());

/**
 * Perceptron |margin|-vs-theta confidence. Pair with
 * perceptronFactory() of the same geometry.
 */
EstimatorConfig
perceptronMarginConfig(
    PerceptronConfig config = PerceptronConfig::makeDefault(),
    unsigned num_levels = 8);

/**
 * Run the configurations over the environment's suite with static
 * profiling enabled.
 */
SuiteRunResult
runSuiteExperiment(const ExperimentEnv &env,
                   const PredictorFactory &make_predictor,
                   const std::vector<EstimatorConfig> &estimators);

/** One labelled (predictor, estimator set) sweep configuration. */
struct SweepExperimentConfig
{
    std::string label;
    PredictorFactory makePredictor;
    std::vector<EstimatorConfig> estimators;
};

/**
 * Run many configurations over the environment's suite in one decode
 * pass per benchmark (SuiteRunner::runSweep), with static profiling
 * enabled and the same checkpoint/telemetry wiring as
 * runSuiteExperiment. Per-config results are bit-exact with running
 * runSuiteExperiment once per configuration; only the wall clock
 * differs. Sweep knobs come from env.sweepThreads / env.batchSize /
 * env.decodeAhead / env.benchParallel.
 */
SweepSuiteResult
runSweepSuiteExperiment(const ExperimentEnv &env,
                        const std::vector<SweepExperimentConfig> &configs);

/**
 * Statistically sample the environment's suite instead of replaying it
 * exactly (sim/sampling_engine.h): stratified ranked-set region
 * selection at env.sampleRate with env.subsamples repeated subsamples,
 * yielding misprediction-rate / coverage@20% / PVN estimates with
 * standard errors and 95% CIs. Sampling knobs come from env.sampleRate
 * / env.regionBranches / env.strata / env.subsamples / env.sampleSeed
 * / env.warmupRegions; replay tuning reuses the sweep knobs. Emits the
 * sampling_run_finished telemetry event when telemetry is attached.
 */
SamplingRunResult
runSampledSuiteExperiment(const ExperimentEnv &env,
                          const std::vector<SweepExperimentConfig> &configs);

/** A named curve ready for reporting. */
struct NamedCurve
{
    std::string name;
    ConfidenceCurve curve;
};

/** Composite curve of estimator @p index from a suite run. */
NamedCurve compositeCurve(const SuiteRunResult &result,
                          std::size_t index, const std::string &name);

/** Composite per-static-branch curve (the Section 2 method). */
NamedCurve staticCompositeCurve(const SuiteRunResult &result);

/**
 * Print a coverage summary table: for each curve, the percent of
 * mispredictions captured by low-confidence sets of 5/10/20/30/50%
 * of dynamic branches, plus the curve AUC.
 */
void printCoverageSummary(const std::vector<NamedCurve> &curves);

/** Render the paper-style cumulative plot of the curves. */
std::string plotCurves(const std::string &title,
                       const std::vector<NamedCurve> &curves);

/**
 * Write all curves to @p path as CSV rows:
 * series,bucket,bucket_rate,ref_pct,mispred_pct
 * (points thinned at 0.25% as in the paper's plotting rule).
 */
void writeCurvesCsv(const std::string &path,
                    const std::vector<NamedCurve> &curves);

/** Print per-benchmark and composite misprediction rates. */
void printMispredictionRates(const SuiteRunResult &result);

} // namespace confsim

#endif // CONFSIM_SIM_EXPERIMENT_H
