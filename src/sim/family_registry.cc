#include "sim/family_registry.h"

#include "confidence/associative_ct.h"
#include "confidence/composite_confidence.h"
#include "confidence/one_level.h"
#include "confidence/perceptron_margin.h"
#include "confidence/self_counter.h"
#include "confidence/tage_confidence.h"
#include "confidence/two_level.h"
#include "confidence/unaliased.h"
#include "predictor/agree.h"
#include "predictor/bimodal.h"
#include "predictor/gselect.h"
#include "predictor/gshare.h"
#include "predictor/hybrid.h"
#include "predictor/perceptron.h"
#include "predictor/tage.h"
#include "predictor/two_level.h"
#include "util/error.h"

namespace confsim {

namespace {

/** The reference predictor estimator families pair with. */
PredictorFactory
referenceGshare()
{
    return [] { return std::make_unique<GsharePredictor>(4096, 12); };
}

/** Wrap a single estimator factory as an EstimatorSetFactory. */
template <typename MakeOne>
EstimatorSetFactory
one(MakeOne make_one)
{
    return [make_one] {
        std::vector<std::unique_ptr<ConfidenceEstimator>> out;
        out.push_back(make_one());
        return out;
    };
}

/** The paper's workhorse estimator, for predictor-varying families. */
EstimatorSetFactory
referenceEstimator()
{
    return one([] {
        return std::make_unique<OneLevelCounterConfidence>(
            IndexScheme::PcXorBhr, 1024, CounterKind::Resetting, 16, 0);
    });
}

} // namespace

std::vector<DifferentialFamily>
estimatorFamilyRegistry()
{
    std::vector<DifferentialFamily> families;
    families.push_back(
        {"one_level_raw_pc", referenceGshare(), one([] {
             return std::make_unique<OneLevelCirConfidence>(
                 IndexScheme::Pc, 1024, 8, CirReduction::RawPattern,
                 CtInit::Ones);
         })});
    families.push_back(
        {"one_level_raw_bhr", referenceGshare(), one([] {
             return std::make_unique<OneLevelCirConfidence>(
                 IndexScheme::Bhr, 1024, 8, CirReduction::RawPattern,
                 CtInit::Ones);
         })});
    families.push_back(
        {"one_level_ones_pcxorbhr", referenceGshare(), one([] {
             return std::make_unique<OneLevelCirConfidence>(
                 IndexScheme::PcXorBhr, 1024, 8,
                 CirReduction::OnesCount, CtInit::Ones);
         })});
    families.push_back(
        {"counter_saturating", referenceGshare(), one([] {
             return std::make_unique<OneLevelCounterConfidence>(
                 IndexScheme::PcXorBhr, 1024, CounterKind::Saturating,
                 16, 0);
         })});
    families.push_back(
        {"counter_resetting", referenceGshare(), referenceEstimator()});
    families.push_back(
        {"counter_half_reset", referenceGshare(), one([] {
             return std::make_unique<OneLevelCounterConfidence>(
                 IndexScheme::Pc, 1024, CounterKind::HalfReset, 16, 0);
         })});
    families.push_back(
        {"two_level", referenceGshare(), one([] {
             return std::make_unique<TwoLevelConfidence>(
                 IndexScheme::Pc, 1024, 8, SecondLevelIndex::CirXorPc,
                 8);
         })});
    families.push_back(
        {"self_counter", referenceGshare(), one([] {
             return std::make_unique<SelfCounterConfidence>(
                 IndexScheme::Pc, 1024, 3);
         })});
    families.push_back(
        {"unaliased", referenceGshare(), one([] {
             return std::make_unique<UnaliasedCounterConfidence>(
                 IndexScheme::PcXorBhr, CounterKind::Resetting, 16);
         })});
    families.push_back(
        {"associative", referenceGshare(), one([] {
             return std::make_unique<AssociativeCounterConfidence>(
                 IndexScheme::Pc, 256, 4, 8, CounterKind::Saturating,
                 16);
         })});
    families.push_back(
        {"composite", referenceGshare(), one([] {
             return std::make_unique<CompositeConfidence>(
                 std::make_unique<OneLevelCounterConfidence>(
                     IndexScheme::PcXorBhr, 1024,
                     CounterKind::Resetting, 16, 0),
                 std::make_unique<SelfCounterConfidence>(
                     IndexScheme::Pc, 1024, 3));
         })});
    // Native-confidence estimators pair with their own predictor so
    // the estimator's shadow replica is a bit-exact mirror of it.
    families.push_back(
        {"tage_provider",
         [] {
             return std::make_unique<TagePredictor>(
                 TageConfig::makeSmall());
         },
         one([] {
             return std::make_unique<TageProviderConfidence>(
                 TageConfig::makeSmall());
         })});
    families.push_back(
        {"perceptron_margin",
         [] {
             return std::make_unique<PerceptronPredictor>(
                 PerceptronConfig::makeSmall());
         },
         one([] {
             return std::make_unique<PerceptronMarginConfidence>(
                 PerceptronConfig::makeSmall());
         })});
    return families;
}

std::vector<DifferentialFamily>
predictorFamilyRegistry()
{
    std::vector<DifferentialFamily> families;
    const auto add = [&families](std::string label,
                                 PredictorFactory make) {
        families.push_back({std::move(label), std::move(make),
                            referenceEstimator()});
    };
    add("pred_bimodal",
        [] { return std::make_unique<BimodalPredictor>(1024); });
    add("pred_gshare",
        [] { return std::make_unique<GsharePredictor>(1024, 8); });
    add("pred_gselect",
        [] { return std::make_unique<GselectPredictor>(1024, 4); });
    add("pred_agree",
        [] { return std::make_unique<AgreePredictor>(1024, 8); });
    add("pred_gag", [] {
        return std::make_unique<TwoLevelPredictor>(TwoLevelScheme::GAg,
                                                   10);
    });
    add("pred_pap", [] {
        return std::make_unique<TwoLevelPredictor>(TwoLevelScheme::PAp,
                                                   6, 256, 8);
    });
    add("pred_hybrid", [] {
        return std::make_unique<HybridPredictor>(
            std::make_unique<GsharePredictor>(1024, 8),
            std::make_unique<BimodalPredictor>(1024), 512);
    });
    add("pred_tage", [] {
        return std::make_unique<TagePredictor>(TageConfig::makeSmall());
    });
    add("pred_perceptron", [] {
        return std::make_unique<PerceptronPredictor>(
            PerceptronConfig::makeSmall());
    });
    return families;
}

std::vector<DifferentialFamily>
differentialFamilyRegistry()
{
    std::vector<DifferentialFamily> families = estimatorFamilyRegistry();
    std::vector<DifferentialFamily> predictors =
        predictorFamilyRegistry();
    families.insert(families.end(),
                    std::make_move_iterator(predictors.begin()),
                    std::make_move_iterator(predictors.end()));
    return families;
}

DifferentialFamily
differentialFamilyNamed(const std::string &label)
{
    for (auto &family : differentialFamilyRegistry())
        if (family.label == label)
            return family;
    fatal(ErrorCategory::kConfig,
          "unknown differential family: " + label);
}

} // namespace confsim
