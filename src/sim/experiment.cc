#include "sim/experiment.h"

#include <cstdio>
#include <cstdlib>

#include "fault/fault_plan.h"
#include "trace/trace_stats.h"
#include "util/ascii_plot.h"
#include "util/csv.h"
#include "util/status.h"
#include "util/string_utils.h"

namespace confsim {

namespace {

/**
 * Arm the process-wide FaultInjector with @p spec and wire its
 * observer into telemetry: every injected fault increments the
 * fault.injected.<site> counter and appends a fault_injected event.
 * Sink-flush hits only count — they fire inside Telemetry::finish with
 * its (non-recursive) mutex held, so emitting an event from the
 * observer would self-deadlock. A stderr line keeps CI logs readable
 * even when telemetry is off.
 */
void
installFaultPlan(const std::string &spec,
                 std::shared_ptr<Telemetry> telemetry)
{
    FaultInjector::instance().install(FaultPlan::parse(spec));
    FaultInjector::instance().setObserver([telemetry](
                                              const FaultHit &hit) {
        std::fprintf(
            stderr,
            "[confsim] fault injected: %s %s (scope '%s', "
            "occurrence %llu)\n",
            toString(hit.site), toString(hit.action),
            hit.scope.c_str(),
            static_cast<unsigned long long>(hit.occurrence));
        if (telemetry == nullptr)
            return;
        telemetry->registry().increment(
            std::string("fault.injected.") + toString(hit.site));
        if (hit.site == FaultSite::kSinkFlush)
            return;
        telemetry->emit(TelemetryEvent(
            events::kFaultInjected,
            {field("benchmark", hit.scope),
             field("kind", std::string("plan.") + toString(hit.site)),
             field("action", toString(hit.action)),
             field("config", hit.key),
             field("occurrence", hit.occurrence)}));
    });
}

} // namespace

bool
ExperimentEnv::fromCli(int argc, const char *const *argv,
                       const std::string &description,
                       ExperimentEnv &env)
{
    CliParser cli(description);
    cli.addOption("branches", "2000000",
                  "conditional branches per benchmark");
    cli.addOption("csv-dir", ".", "directory for CSV output");
    cli.addFlag("fast", "reduced suite and short traces (smoke run)");
    cli.addOption("checkpoint-dir", "",
                  "write/restore run checkpoints in this directory");
    cli.addOption("checkpoint-every", "250000",
                  "branches between mid-run checkpoints (0 = only "
                  "completion markers)");
    cli.addFlag("resume",
                "resume prior progress from --checkpoint-dir");
    cli.addOption("predictor", "gshare-large",
                  "predictor family: gshare-large, gshare-small, "
                  "tage, perceptron");
    cli.addOption("sweep-threads", "0",
                  "sweep worker threads (0 = hardware concurrency)");
    cli.addOption("batch-size", "4096",
                  "records per sweep broadcast batch");
    cli.addOption("decode-ahead", "3",
                  "sweep decode-ahead ring depth (1 = synchronous "
                  "refill)");
    cli.addOption("bench-parallel", "0",
                  "concurrent benchmark sweep passes (0 = auto-size "
                  "to the worker pool)");
    cli.addOption("sample-rate", "0.1",
                  "sampled-replay region fraction in (0, 1]");
    cli.addOption("region-branches", "10000",
                  "conditional branches per sampling region");
    cli.addOption("strata", "4",
                  "quantile strata for sampled replay");
    cli.addOption("subsamples", "5",
                  "repeated-subsampling groups (error-bar "
                  "resolution)");
    cli.addOption("sample-seed", "24301",
                  "region-selection seed for sampled replay");
    cli.addOption("warmup-regions", "",
                  "functional-warming window in regions before each "
                  "sample (unset = warm every non-sampled region)");
    cli.addOption("fault-plan", "",
                  "deterministic fault schedule, e.g. "
                  "'ckpt:write=1:enospc;shard:cfg=2:throw' (env "
                  "CONFSIM_FAULT_PLAN when unset; see "
                  "fault/fault_plan.h)");
    cli.addOption("retry-backoff-ms", "0",
                  "base exponential backoff between benchmark "
                  "retries (0 = retry immediately)");
    cli.addOption("deadline-ms", "0",
                  "suite wall-clock budget; in-flight work is "
                  "cancelled cooperatively on expiry (0 = unlimited)");
    cli.addOption("telemetry", "",
                  "write JSONL telemetry (manifest + events) here");
    cli.addOption("telemetry-csv", "",
                  "write long-format CSV telemetry here");
    cli.addFlag("progress", "stderr heartbeat while the suite runs");
    cli.addOption("heartbeat", "1",
                  "heartbeat period, in finished benchmarks");
    if (!cli.parse(argc, argv))
        return false;
    env.branchesPerBenchmark = cli.getUnsigned("branches");
    env.csvDir = cli.getString("csv-dir");
    if (cli.getFlag("fast")) {
        env.fullSuite = false;
        env.branchesPerBenchmark =
            std::min<std::uint64_t>(env.branchesPerBenchmark, 200'000);
    }
    env.tool = description;
    env.checkpointDir = cli.getString("checkpoint-dir");
    env.checkpointEvery = cli.getUnsigned("checkpoint-every");
    env.resume = cli.getFlag("resume");
    if (env.resume && env.checkpointDir.empty())
        fatal(ErrorCategory::kConfig,
              "--resume requires --checkpoint-dir");
    env.predictor = cli.getString("predictor");
    makeNamedPredictorFactory(env.predictor); // validate early
    env.sweepThreads =
        static_cast<unsigned>(cli.getUnsigned("sweep-threads"));
    env.batchSize = cli.getUnsigned("batch-size");
    if (env.batchSize == 0)
        fatal(ErrorCategory::kConfig, "--batch-size must be at least 1");
    env.decodeAhead = cli.getUnsigned("decode-ahead");
    if (env.decodeAhead == 0)
        fatal(ErrorCategory::kConfig,
              "--decode-ahead must be at least 1");
    env.benchParallel =
        static_cast<unsigned>(cli.getUnsigned("bench-parallel"));
    env.sampleRate = cli.getDouble("sample-rate");
    env.regionBranches = cli.getUnsigned("region-branches");
    env.strata = static_cast<std::uint32_t>(cli.getUnsigned("strata"));
    env.subsamples =
        static_cast<std::uint32_t>(cli.getUnsigned("subsamples"));
    env.sampleSeed = cli.getUnsigned("sample-seed");
    if (!cli.getString("warmup-regions").empty())
        env.warmupRegions = cli.getUnsigned("warmup-regions");
    env.retryBackoffMs = cli.getUnsigned("retry-backoff-ms");
    env.deadlineMs = cli.getUnsigned("deadline-ms");
    env.faultPlan = cli.getString("fault-plan");
    if (env.faultPlan.empty()) {
        if (const char *plan = std::getenv("CONFSIM_FAULT_PLAN"))
            env.faultPlan = plan;
    }
    env.telemetry.jsonlPath = cli.getString("telemetry");
    env.telemetry.csvPath = cli.getString("telemetry-csv");
    env.telemetry.progress = cli.getFlag("progress");
    env.telemetry.heartbeatEveryBenchmarks =
        static_cast<unsigned>(cli.getUnsigned("heartbeat"));
    env.telemetryContext = Telemetry::fromOptions(env.telemetry);
    if (!env.faultPlan.empty())
        installFaultPlan(env.faultPlan, env.telemetryContext);
    return true;
}

BenchmarkSuite
ExperimentEnv::makeSuite() const
{
    return fullSuite ? BenchmarkSuite::ibs(branchesPerBenchmark)
                     : BenchmarkSuite::ibsSmall(branchesPerBenchmark);
}

PredictorFactory
largeGshareFactory()
{
    return [] {
        return std::make_unique<GsharePredictor>(
            paper::kLargePredictorEntries, paper::kLargeHistoryBits);
    };
}

PredictorFactory
smallGshareFactory()
{
    return [] {
        return std::make_unique<GsharePredictor>(
            paper::kSmallPredictorEntries, paper::kSmallHistoryBits);
    };
}

PredictorFactory
tageFactory(TageConfig config)
{
    return [config] { return std::make_unique<TagePredictor>(config); };
}

PredictorFactory
perceptronFactory(PerceptronConfig config)
{
    return [config] {
        return std::make_unique<PerceptronPredictor>(config);
    };
}

std::vector<std::string>
knownPredictorNames()
{
    return {"gshare-large", "gshare-small", "tage", "perceptron"};
}

PredictorFactory
makeNamedPredictorFactory(const std::string &name)
{
    if (name == "gshare-large")
        return largeGshareFactory();
    if (name == "gshare-small")
        return smallGshareFactory();
    if (name == "tage")
        return tageFactory();
    if (name == "perceptron")
        return perceptronFactory();
    fatal(ErrorCategory::kConfig, "unknown predictor name: " + name);
}

PredictorFactory
ExperimentEnv::predictorFactory() const
{
    return makeNamedPredictorFactory(predictor);
}

EstimatorConfig
oneLevelIdealConfig(IndexScheme scheme, std::size_t entries,
                    unsigned cir_bits, CtInit init)
{
    EstimatorConfig config;
    config.label = toString(scheme);
    config.make = [=] {
        return std::make_unique<OneLevelCirConfidence>(
            scheme, entries, cir_bits, CirReduction::RawPattern, init);
    };
    return config;
}

EstimatorConfig
oneLevelOnesCountConfig(IndexScheme scheme, std::size_t entries,
                        unsigned cir_bits)
{
    EstimatorConfig config;
    config.label = std::string(toString(scheme)) + ".1Cnt";
    config.make = [=] {
        return std::make_unique<OneLevelCirConfidence>(
            scheme, entries, cir_bits, CirReduction::OnesCount,
            CtInit::Ones);
    };
    return config;
}

EstimatorConfig
oneLevelCounterConfig(IndexScheme scheme, CounterKind kind,
                      std::size_t entries, std::uint32_t max_value)
{
    EstimatorConfig config;
    config.label = std::string(toString(scheme)) + "." +
                   (kind == CounterKind::Saturating ? "Sat" : "Reset");
    config.make = [=] {
        return std::make_unique<OneLevelCounterConfidence>(
            scheme, entries, kind, max_value, 0);
    };
    return config;
}

EstimatorConfig
twoLevelConfig(IndexScheme first_scheme, SecondLevelIndex second_index,
               std::size_t first_entries, unsigned first_cir_bits,
               unsigned second_cir_bits)
{
    EstimatorConfig config;
    config.label = std::string(toString(first_scheme)) + "-" +
                   toString(second_index);
    config.make = [=] {
        return std::make_unique<TwoLevelConfidence>(
            first_scheme, first_entries, first_cir_bits, second_index,
            second_cir_bits);
    };
    return config;
}

EstimatorConfig
tageProviderConfig(TageConfig config)
{
    EstimatorConfig out;
    out.label = "TAGE.Prov";
    out.make = [config] {
        return std::make_unique<TageProviderConfidence>(config);
    };
    return out;
}

EstimatorConfig
perceptronMarginConfig(PerceptronConfig config, unsigned num_levels)
{
    EstimatorConfig out;
    out.label = "Perc.Margin";
    out.make = [config, num_levels] {
        return std::make_unique<PerceptronMarginConfidence>(config,
                                                            num_levels);
    };
    return out;
}

namespace {

/**
 * Build the reproducibility manifest for one suite experiment: suite
 * identity with per-benchmark stream checksums, predictor/estimator
 * names (from throwaway instances), driver knobs, build provenance.
 */
RunManifest
buildManifest(const ExperimentEnv &env, const BenchmarkSuite &suite,
              const PredictorFactory &make_predictor,
              const std::vector<EstimatorConfig> &estimators,
              const DriverOptions &options)
{
    RunManifest manifest = RunManifest::withBuildInfo();
    manifest.tool = env.tool;
    manifest.suite = env.fullSuite ? "ibs-full" : "ibs-small";
    const auto predictor = make_predictor();
    manifest.predictor = predictor->name();
    manifest.predictorStorageBits = predictor->storageBits();
    for (const auto &config : estimators)
        manifest.estimators.push_back(config.make()->name());
    manifest.bhrBits = options.bhrBits;
    manifest.gcirBits = options.gcirBits;
    manifest.warmupBranches = options.warmupBranches;
    manifest.contextSwitchInterval = options.contextSwitchInterval;
    constexpr std::uint64_t kChecksumRecords = 4096;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        ManifestBenchmark bench;
        bench.name = suite.profile(i).name;
        bench.seed = suite.profile(i).seed;
        bench.branches = suite.branchesPerBenchmark();
        const auto source = suite.makeGenerator(i);
        bench.traceChecksum = streamChecksum(*source, kChecksumRecords);
        manifest.benchmarks.push_back(std::move(bench));
    }
    return manifest;
}

} // namespace

SuiteRunResult
runSuiteExperiment(const ExperimentEnv &env,
                   const PredictorFactory &make_predictor,
                   const std::vector<EstimatorConfig> &estimators)
{
    SuiteRunner runner(env.makeSuite());
    DriverOptions options;
    options.bhrBits = paper::kLargeHistoryBits;
    options.gcirBits = paper::kCirBits;
    options.profileStatic = true;

    Telemetry *const telemetry = env.telemetryContext.get();
    if (telemetry != nullptr) {
        telemetry->setManifest(buildManifest(
            env, runner.suite(), make_predictor, estimators, options));
        options.telemetry = telemetry;
        options.telemetrySampleStride = env.telemetry.sampleStride;
    }

    EstimatorSetFactory make_estimators = [&estimators] {
        std::vector<std::unique_ptr<ConfidenceEstimator>> out;
        out.reserve(estimators.size());
        for (const auto &config : estimators)
            out.push_back(config.make());
        return out;
    };
    RunPolicy policy;
    policy.checkpoint.directory = env.checkpointDir;
    policy.checkpoint.everyBranches = env.checkpointEvery;
    policy.checkpoint.resume = env.resume;
    policy.retryBackoffMs = env.retryBackoffMs;
    policy.deadlineMs = env.deadlineMs;
    return runner.run(make_predictor, make_estimators, options, policy);
}

SweepSuiteResult
runSweepSuiteExperiment(const ExperimentEnv &env,
                        const std::vector<SweepExperimentConfig> &configs)
{
    if (configs.empty())
        fatal(ErrorCategory::kConfig,
              "runSweepSuiteExperiment needs at least one "
              "configuration");
    SuiteRunner runner(env.makeSuite());
    DriverOptions options;
    options.bhrBits = paper::kLargeHistoryBits;
    options.gcirBits = paper::kCirBits;
    options.profileStatic = true;

    Telemetry *const telemetry = env.telemetryContext.get();
    if (telemetry != nullptr) {
        // The manifest's predictor/estimator identity comes from the
        // first configuration; the sweep_* events carry the rest.
        telemetry->setManifest(buildManifest(
            env, runner.suite(), configs.front().makePredictor,
            configs.front().estimators, options));
        options.telemetry = telemetry;
        options.telemetrySampleStride = env.telemetry.sampleStride;
    }

    std::vector<SweepConfiguration> sweep_configs;
    sweep_configs.reserve(configs.size());
    for (const auto &config : configs) {
        SweepConfiguration sweep_config;
        sweep_config.label = config.label;
        sweep_config.makePredictor = config.makePredictor;
        const std::vector<EstimatorConfig> &estimators =
            config.estimators;
        sweep_config.makeEstimators = [estimators] {
            std::vector<std::unique_ptr<ConfidenceEstimator>> out;
            out.reserve(estimators.size());
            for (const auto &estimator : estimators)
                out.push_back(estimator.make());
            return out;
        };
        sweep_configs.push_back(std::move(sweep_config));
    }

    SweepOptions sweep;
    sweep.threads = env.sweepThreads;
    sweep.batchSize = env.batchSize;
    sweep.decodeAhead = env.decodeAhead;
    sweep.benchParallel = env.benchParallel;

    RunPolicy policy;
    policy.checkpoint.directory = env.checkpointDir;
    policy.checkpoint.everyBranches = env.checkpointEvery;
    policy.checkpoint.resume = env.resume;
    policy.retryBackoffMs = env.retryBackoffMs;
    policy.deadlineMs = env.deadlineMs;
    return runner.runSweep(sweep_configs, options, sweep, policy);
}

SamplingRunResult
runSampledSuiteExperiment(const ExperimentEnv &env,
                          const std::vector<SweepExperimentConfig> &configs)
{
    if (configs.empty())
        fatal(ErrorCategory::kConfig,
              "runSampledSuiteExperiment needs at least one "
              "configuration");
    SuiteRunner runner(env.makeSuite());
    DriverOptions options;
    options.bhrBits = paper::kLargeHistoryBits;
    options.gcirBits = paper::kCirBits;

    Telemetry *const telemetry = env.telemetryContext.get();
    if (telemetry != nullptr) {
        telemetry->setManifest(buildManifest(
            env, runner.suite(), configs.front().makePredictor,
            configs.front().estimators, options));
        options.telemetry = telemetry;
        options.telemetrySampleStride = env.telemetry.sampleStride;
    }

    std::vector<SweepConfiguration> sweep_configs;
    sweep_configs.reserve(configs.size());
    for (const auto &config : configs) {
        SweepConfiguration sweep_config;
        sweep_config.label = config.label;
        sweep_config.makePredictor = config.makePredictor;
        const std::vector<EstimatorConfig> &estimators =
            config.estimators;
        sweep_config.makeEstimators = [estimators] {
            std::vector<std::unique_ptr<ConfidenceEstimator>> out;
            out.reserve(estimators.size());
            for (const auto &estimator : estimators)
                out.push_back(estimator.make());
            return out;
        };
        sweep_configs.push_back(std::move(sweep_config));
    }

    SamplingOptions sampling;
    sampling.sampleRate = env.sampleRate;
    sampling.regionBranches = env.regionBranches;
    sampling.strata = env.strata;
    sampling.subsamples = env.subsamples;
    sampling.seed = env.sampleSeed;
    sampling.warmupRegions = env.warmupRegions;
    sampling.sweep.threads = env.sweepThreads;
    sampling.sweep.batchSize = env.batchSize;
    sampling.sweep.decodeAhead = env.decodeAhead;

    SamplingEngine engine(std::move(sweep_configs), options, sampling);
    return engine.runSuite(runner);
}

NamedCurve
compositeCurve(const SuiteRunResult &result, std::size_t index,
               const std::string &name)
{
    return NamedCurve{
        name, ConfidenceCurve::fromBucketStats(
                  result.compositeEstimatorStats.at(index))};
}

NamedCurve
staticCompositeCurve(const SuiteRunResult &result)
{
    return NamedCurve{"static", ConfidenceCurve::fromSparseStats(
                                    result.compositeStaticStats)};
}

void
printCoverageSummary(const std::vector<NamedCurve> &curves)
{
    const double kPoints[] = {0.05, 0.10, 0.20, 0.30, 0.50};
    std::printf("%-28s", "method");
    for (double p : kPoints)
        std::printf("  @%2.0f%%", p * 100.0);
    std::printf("    AUC\n");
    for (const auto &named : curves) {
        std::printf("%-28s", named.name.c_str());
        for (double p : kPoints) {
            std::printf("  %5.1f",
                        100.0 * named.curve.mispredCoverageAt(p));
        }
        std::printf("  %.4f\n", named.curve.areaUnderCurve());
    }
    std::printf("\n(cells: %% of all mispredictions captured by a "
                "low-confidence set holding that %% of dynamic "
                "branches)\n");
}

std::string
plotCurves(const std::string &title,
           const std::vector<NamedCurve> &curves)
{
    PlotOptions options;
    options.title = title;
    options.xLabel = "% of Dynamic Branches";
    options.yLabel = "% of Mispredictions (cumulative)";
    AsciiPlot plot(options);
    for (const auto &named : curves) {
        PlotSeries series;
        series.name = named.name;
        series.points.push_back({0.0, 0.0});
        for (const auto &point : named.curve.thinnedPoints(0.0025)) {
            series.points.push_back({100.0 * point.refFraction,
                                     100.0 * point.mispredFraction});
        }
        series.points.push_back({100.0, 100.0});
        plot.addSeries(series);
    }
    return plot.render();
}

void
writeCurvesCsv(const std::string &path,
               const std::vector<NamedCurve> &curves)
{
    CsvWriter csv(path);
    csv.writeRow({"series", "bucket", "bucket_rate", "ref_pct",
                  "mispred_pct"});
    for (const auto &named : curves) {
        for (const auto &point : named.curve.thinnedPoints(0.0025)) {
            csv.writeRow({named.name, std::to_string(point.bucket),
                          formatFixed(point.bucketRate, 6),
                          formatFixed(100.0 * point.refFraction, 4),
                          formatFixed(100.0 * point.mispredFraction,
                                      4)});
        }
    }
    std::printf("wrote %s\n", path.c_str());
}

void
printMispredictionRates(const SuiteRunResult &result)
{
    std::printf("%-12s %12s %12s %10s\n", "benchmark", "branches",
                "mispredicts", "rate");
    for (const auto &bench : result.perBenchmark) {
        std::printf("%-12s %12llu %12llu %9.2f%%\n",
                    bench.name.c_str(),
                    static_cast<unsigned long long>(bench.branches),
                    static_cast<unsigned long long>(bench.mispredicts),
                    100.0 * bench.mispredictRate);
    }
    std::printf("%-12s %12s %12s %9.2f%%  (equal-weight)\n\n",
                "composite", "-", "-",
                100.0 * result.compositeMispredictRate);
}

} // namespace confsim
