/**
 * @file
 * Suite-level experiment execution.
 *
 * Runs a (predictor, estimator set) configuration over every benchmark
 * of a suite with fresh structures per benchmark (the paper initializes
 * all tables at the start of each benchmark) and produces both
 * per-benchmark results and the equal-dynamic-branch-weight composite
 * of Section 1.2.
 *
 * Benchmark tasks are error-isolated: a failure inside one benchmark
 * (corrupt trace, watchdog timeout, estimator bug) is caught into that
 * benchmark's BenchmarkRunResult::error instead of tearing down the
 * thread pool. A RunPolicy chooses whether the suite run then throws
 * (fail-fast, the default) or composites over the survivors with the
 * result flagged degraded (continue-on-error). See docs/robustness.md.
 */

#ifndef CONFSIM_SIM_SUITE_RUNNER_H
#define CONFSIM_SIM_SUITE_RUNNER_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metrics/bucket_stats.h"
#include "sim/driver.h"
#include "sim/run_policy.h"
#include "trace/trace_source.h"
#include "workload/suite.h"

namespace confsim {

/** Results of one benchmark inside a suite run. */
struct BenchmarkRunResult
{
    std::string name;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    double mispredictRate = 0.0;
    std::vector<BucketStats> estimatorStats;
    SparseBucketStats staticStats; //!< per-PC (when profiling enabled)

    /** Per-branch attribution profile (untagged PCs; empty unless
     *  DriverOptions::profileBranches). Not carried in checkpoint
     *  done-markers — a resumed, already-completed benchmark reports
     *  an empty profile. */
    BranchProfile branchProfile;

    /** Estimator names, from this run's own estimator instances. */
    std::vector<std::string> estimatorNames;

    /** Why this benchmark failed; empty on success. */
    std::string error;

    /** Taxonomy category of `error` (meaningful only when failed()). */
    ErrorCategory errorCategory = ErrorCategory::kInternal;

    /**
     * True when the failure was a cooperative cancellation — external
     * CancellationToken, fail-fast sibling teardown, or the suite
     * deadline budget expiring before this benchmark started — rather
     * than a fault of the benchmark itself. Fail-fast reporting skips
     * cancelled entries so the error it surfaces is always the root
     * cause, not the teardown it triggered.
     */
    bool cancelled = false;

    /**
     * Attempts consumed: 1 when the benchmark succeeded (or failed
     * terminally) on the first try, > 1 only when RunPolicy retries
     * fired. Every result a suite run returns has attempts >= 1.
     */
    unsigned attempts = 1;

    /**
     * Wall-clock time spent on this benchmark, across all attempts
     * (trace generation + simulation, not just the driver loop).
     */
    double wallMs = 0.0;

    /** @return true iff this benchmark produced no usable result. */
    bool failed() const { return !error.empty(); }
};

/** Results of a full suite run. */
struct SuiteRunResult
{
    std::vector<BenchmarkRunResult> perBenchmark;
    std::vector<std::string> estimatorNames;

    /** Equal-weight composite per estimator (suite order preserved). */
    std::vector<BucketStats> compositeEstimatorStats;

    /**
     * Equal-weight composite of per-static-branch stats. Keys are
     * (benchmark index << 48) | pc so the same address in different
     * benchmarks stays a distinct static branch.
     */
    SparseBucketStats compositeStaticStats;

    /**
     * Suite-merged per-branch attribution profile (when
     * DriverOptions::profileBranches). Keys are
     * (benchmark index << 48) | pc — the same tagging scheme as
     * compositeStaticStats — so its totals are the exact sums of the
     * surviving benchmarks' counts.
     */
    BranchProfile branchProfile;

    /** Equal-weight composite misprediction rate (over survivors). */
    double compositeMispredictRate = 0.0;

    /**
     * True iff any benchmark failed, i.e. the composites cover only a
     * surviving subset of the suite (RunPolicy continue-on-error).
     */
    bool degraded = false;

    /**
     * Benchmarks that ran successfully but recorded zero branches
     * (e.g. the warmup window covered the whole trace). They are
     * excluded from every composite — averaging their meaningless
     * 0.0 rate or compositing their empty bucket mass would corrupt
     * the result — and flagged via compositeDegraded instead.
     */
    std::size_t zeroRecordBenchmarks = 0;

    /**
     * True iff the composites cover fewer benchmarks than the suite
     * holds, whether through failures (degraded) or zero-record
     * exclusions. Consumers that require full-suite composites should
     * check this, not just degraded.
     */
    bool compositeDegraded = false;

    /** Wall-clock time of the whole suite run. */
    double wallMs = 0.0;

    /** @return how many benchmarks failed. */
    std::size_t
    failedBenchmarks() const
    {
        std::size_t n = 0;
        for (const auto &bench : perBenchmark)
            n += bench.failed() ? 1 : 0;
        return n;
    }
};

/** Builds a fresh predictor for one benchmark run. */
using PredictorFactory =
    std::function<std::unique_ptr<BranchPredictor>()>;

/** Builds a fresh set of estimators for one benchmark run. */
using EstimatorSetFactory =
    std::function<std::vector<std::unique_ptr<ConfidenceEstimator>>()>;

/**
 * Optional per-benchmark trace-source decorator. Receives the
 * benchmark index and the freshly built generator; whatever it returns
 * is what the driver consumes. Used to substitute trace-file readers
 * for generators and to inject faults (FaultInjectingTraceSource) in
 * robustness tests. Called once per attempt, possibly concurrently —
 * must be thread-safe.
 */
using SourceWrapper = std::function<std::unique_ptr<TraceSource>(
    std::size_t bench, std::unique_ptr<TraceSource> inner)>;

struct SweepConfiguration;
struct SweepOptions;

/**
 * Results of a multi-configuration sweep over a suite: one full
 * SuiteRunResult per attached configuration (configuration order
 * preserved), produced from a single decode pass per benchmark. Each
 * per-config result is bit-exact with what SuiteRunner::run would have
 * produced for that configuration alone (see sim/sweep_engine.h).
 */
struct SweepSuiteResult
{
    std::vector<SuiteRunResult> perConfig;
    std::vector<std::string> labels; //!< configuration labels
    double wallMs = 0.0; //!< wall time of the whole sweep

    /** @return true iff any configuration's result is degraded. */
    bool
    degraded() const
    {
        for (const auto &config : perConfig) {
            if (config.degraded)
                return true;
        }
        return false;
    }
};

/** Runs configurations across a benchmark suite. */
class SuiteRunner
{
  public:
    /** @param suite Benchmarks to run (copied). */
    explicit SuiteRunner(BenchmarkSuite suite);

    /**
     * Run the configuration over every benchmark.
     *
     * Benchmarks are independent simulations, so they execute on a
     * thread pool (one task per benchmark); results are merged in
     * suite order, so the output is bit-identical to a sequential
     * run. Set the CONFSIM_SEQUENTIAL environment variable to force
     * single-threaded execution (e.g. when profiling).
     *
     * @param make_predictor Fresh-predictor factory (called once per
     *        benchmark attempt, possibly concurrently — must be
     *        thread-safe, which stateless lambdas trivially are).
     * @param make_estimators Fresh-estimator-set factory (same rule).
     * @param options Driver knobs shared by all benchmarks.
     * @param policy Fault-tolerance policy. The default fail-fast
     *        policy throws on the first (suite-order) failure, so
     *        existing callers see the pre-RunPolicy behaviour.
     */
    SuiteRunResult run(const PredictorFactory &make_predictor,
                       const EstimatorSetFactory &make_estimators,
                       DriverOptions options = {},
                       RunPolicy policy = {}) const;

    /**
     * Run many configurations over the suite in one decode pass per
     * benchmark (sim/sweep_engine.h). Within each benchmark the
     * configurations shard across a worker pool, so the trace is
     * generated/decoded exactly once regardless of configuration
     * count. The pool is shared and globally sized (never capped at
     * the configuration count): when a benchmark's pass cannot use
     * every worker, additional benchmarks' passes run concurrently
     * on the same pool (SweepOptions::benchParallel slots; decode
     * runs ahead of replay per SweepOptions::decodeAhead). Results —
     * including output order and composites — are bit-exact with
     * run() called once per configuration at any knob setting.
     *
     * Per-configuration BenchmarkRunResult::wallMs carries an equal
     * 1/numConfigs share of the shared pass's wall time (so sums over
     * configurations recover the real cost); the whole-pass time is
     * observed once per benchmark as the sweep.bench_wall_ms metric.
     *
     * Error isolation matches run() at benchmark granularity: a
     * failure anywhere in a benchmark's sweep marks that benchmark
     * failed for every configuration (all configurations consumed the
     * same pass). Checkpointing, when enabled, snapshots the whole
     * sweep per benchmark; resume restores from the newest valid
     * generation (sweep stores keep no done-markers — a finished
     * benchmark simply leaves no generations behind).
     *
     * @param configs Attached configurations (factories follow the
     *        same thread-safety rule as run()).
     * @param options Driver knobs shared by all configurations.
     * @param sweep Sweep thread/batch/pipelining tuning knobs. When
     *        SweepOptions::pool is set the pass runs on that external
     *        pool (the caller owns its lifetime and its occupancy
     *        reporting — e.g. the sweep service multiplexing many
     *        jobs over one host-sized pool); otherwise runSweep
     *        creates and owns a pool sized from SweepOptions::threads.
     * @param policy Fault-tolerance policy (see run()).
     */
    SweepSuiteResult
    runSweep(const std::vector<SweepConfiguration> &configs,
             DriverOptions options, SweepOptions sweep,
             RunPolicy policy = {}) const;

    /**
     * Install a trace-source decorator applied to every benchmark's
     * generator (empty = none). Primarily a fault-injection and
     * file-replay hook.
     */
    void setSourceWrapper(SourceWrapper wrapper)
    {
        sourceWrapper_ = std::move(wrapper);
    }

    /** @return the suite being run. */
    const BenchmarkSuite &suite() const { return suite_; }

    /** @return the installed decorator (empty when none). */
    const SourceWrapper &sourceWrapper() const { return sourceWrapper_; }

  private:
    BenchmarkSuite suite_;
    SourceWrapper sourceWrapper_;
};

} // namespace confsim

#endif // CONFSIM_SIM_SUITE_RUNNER_H
