/**
 * @file
 * Suite-level experiment execution.
 *
 * Runs a (predictor, estimator set) configuration over every benchmark
 * of a suite with fresh structures per benchmark (the paper initializes
 * all tables at the start of each benchmark) and produces both
 * per-benchmark results and the equal-dynamic-branch-weight composite
 * of Section 1.2.
 */

#ifndef CONFSIM_SIM_SUITE_RUNNER_H
#define CONFSIM_SIM_SUITE_RUNNER_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metrics/bucket_stats.h"
#include "sim/driver.h"
#include "workload/suite.h"

namespace confsim {

/** Results of one benchmark inside a suite run. */
struct BenchmarkRunResult
{
    std::string name;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    double mispredictRate = 0.0;
    std::vector<BucketStats> estimatorStats;
    SparseBucketStats staticStats; //!< per-PC (when profiling enabled)
};

/** Results of a full suite run. */
struct SuiteRunResult
{
    std::vector<BenchmarkRunResult> perBenchmark;
    std::vector<std::string> estimatorNames;

    /** Equal-weight composite per estimator (suite order preserved). */
    std::vector<BucketStats> compositeEstimatorStats;

    /**
     * Equal-weight composite of per-static-branch stats. Keys are
     * (benchmark index << 48) | pc so the same address in different
     * benchmarks stays a distinct static branch.
     */
    SparseBucketStats compositeStaticStats;

    /** Equal-weight composite misprediction rate. */
    double compositeMispredictRate = 0.0;
};

/** Builds a fresh predictor for one benchmark run. */
using PredictorFactory =
    std::function<std::unique_ptr<BranchPredictor>()>;

/** Builds a fresh set of estimators for one benchmark run. */
using EstimatorSetFactory =
    std::function<std::vector<std::unique_ptr<ConfidenceEstimator>>()>;

/** Runs configurations across a benchmark suite. */
class SuiteRunner
{
  public:
    /** @param suite Benchmarks to run (copied). */
    explicit SuiteRunner(BenchmarkSuite suite);

    /**
     * Run the configuration over every benchmark.
     *
     * Benchmarks are independent simulations, so they execute on a
     * thread pool (one task per benchmark); results are merged in
     * suite order, so the output is bit-identical to a sequential
     * run. Set the CONFSIM_SEQUENTIAL environment variable to force
     * single-threaded execution (e.g. when profiling).
     *
     * @param make_predictor Fresh-predictor factory (called once per
     *        benchmark, possibly concurrently — must be thread-safe,
     *        which stateless lambdas trivially are).
     * @param make_estimators Fresh-estimator-set factory (same rule).
     * @param options Driver knobs shared by all benchmarks.
     */
    SuiteRunResult run(const PredictorFactory &make_predictor,
                       const EstimatorSetFactory &make_estimators,
                       DriverOptions options = {}) const;

    /** @return the suite being run. */
    const BenchmarkSuite &suite() const { return suite_; }

  private:
    BenchmarkSuite suite_;
};

} // namespace confsim

#endif // CONFSIM_SIM_SUITE_RUNNER_H
