/**
 * @file
 * Statistical trace sampling with quantified error bars.
 *
 * Exact replay prices every experiment at the full trace length; the
 * sampling engine prices it at a chosen fraction while reporting how
 * much accuracy that fraction cost. The recipe is the two NVIDIA CPU
 * sampling papers' (PAPERS.md) — stratified region sampling with
 * ranked-set selection and repeated subsampling — layered over the
 * existing sweep machinery:
 *
 *  1. **Pre-pass** (one cheap streaming pass): segment the trace into
 *     fixed-size regions of SamplingOptions::regionBranches
 *     conditionals and score each region with two proxy features — a
 *     tiny bimodal predictor's misprediction rate (a stand-in for
 *     "how hard is this region") and the region's branch working-set
 *     size (a stand-in for "how much predictor state it churns").
 *  2. **Stratify**: rank regions by proxy misprediction rate and cut
 *     the ranking into SamplingOptions::strata equal-count quantile
 *     strata, so each stratum holds behaviourally similar regions and
 *     the between-region variance the estimator must average over is
 *     within-stratum only.
 *  3. **Ranked-set sample**: within each stratum, each pick draws
 *     rankSetSize candidate regions, ranks them by working-set size,
 *     and keeps the candidate whose rank cycles across picks — RSS
 *     spreads picks across the secondary feature's range, beating
 *     plain random sampling at equal budget.
 *  4. **Repeated subsampling**: picks are dealt round-robin into
 *     subsamples groups; each group is an independent estimate of the
 *     same quantity, and their spread IS the sampling error
 *     (metrics/interval_estimate.h) — no analytic variance model.
 *  5. **Replay** once through the SweepEngine under a
 *     SweepRecordingPlan: sampled regions record into per-(stratum,
 *     subsample) slot banks, regions ahead of a sample warm
 *     functionally, and (when warmupRegions is bounded) everything
 *     else fast-forwards.
 *
 * Estimates are stratified means — per subsample, stratum rates are
 * combined with pre-pass branch-count weights, renormalized over the
 * strata that subsample covers — for the misprediction rate, the
 * coverage at the paper's 20% operating point, and PVN, each carried
 * as an IntervalEstimate with standard error and 95% CI.
 *
 * Everything is deterministic given SamplingOptions::seed: the
 * pre-pass is a fixed function of the trace, selection uses a private
 * Rng, and replay inherits the sweep engine's bit-exactness contract,
 * so selections AND estimates are bit-identical at any thread count,
 * batch size, or decode-ahead depth (pinned by
 * tests/integration/sampling_differential_test.cc).
 */

#ifndef CONFSIM_SIM_SAMPLING_ENGINE_H
#define CONFSIM_SIM_SAMPLING_ENGINE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/interval_estimate.h"
#include "sim/sweep_engine.h"

namespace confsim {

/** Sampling-engine knobs. */
struct SamplingOptions
{
    /** Warm every non-sampled region (exact predictor state, no
     *  fast-forward speedup) — the accuracy-first default. */
    static constexpr std::uint64_t kWarmAll = ~0ull;

    /** Fraction of regions to replay in detail, in (0, 1]. */
    double sampleRate = 0.1;

    /** Conditional branches per region. */
    std::uint64_t regionBranches = 10000;

    /** Quantile strata over the proxy-mispredict ranking (>= 1). */
    std::uint32_t strata = 4;

    /** Repeated-subsampling groups (>= 2 for usable error bars). */
    std::uint32_t subsamples = 5;

    /** Ranked-set candidate draws per pick (1 = plain random). */
    std::uint32_t rankSetSize = 3;

    /** Selection seed; same seed, same selections and estimates. */
    std::uint64_t seed = 0x5eed;

    /**
     * Functional-warming window: how many regions immediately before
     * each sampled region replay in kWarmOnly mode while everything
     * else fast-forwards (SweepRecordingPlan::kSkip). kWarmAll warms
     * every region instead — no state divergence, no skip speedup.
     * Bounded windows trade a small warming bias for wall-clock wins;
     * see docs/performance.md for guidance.
     */
    std::uint64_t warmupRegions = kWarmAll;

    /** Replay tuning (threads/batch/decode-ahead); recordingPlan is
     *  owned by the engine and must be left null. */
    SweepOptions sweep;
};

/** One configuration's estimates (per benchmark or composite). */
struct SamplingConfigEstimate
{
    std::string label;
    IntervalEstimate mispredictRate;
    std::vector<std::string> estimatorNames;
    std::vector<IntervalEstimate> coverageAt20; //!< per estimator
    std::vector<IntervalEstimate> pvnAt20;      //!< per estimator

    /** Per-subsample misprediction-rate estimates (the values the
     *  IntervalEstimate summarizes) — kept for differential tests
     *  and composite construction. */
    std::vector<double> rateSubsamples;

    /** Per-estimator, per-subsample coverage/PVN series (same role
     *  as rateSubsamples). Indexed [estimator][subsample]. */
    std::vector<std::vector<double>> coverageSubsamples;
    std::vector<std::vector<double>> pvnSubsamples;
};

/** Everything the sampler produced for one benchmark. */
struct SamplingBenchmarkResult
{
    std::string name;
    std::uint64_t totalBranches = 0;  //!< trace conditionals (pre-pass)
    std::uint64_t recordedBranches = 0; //!< detailed-recorded
    std::uint64_t regions = 0;
    std::uint64_t sampledRegions = 0;
    std::vector<std::uint64_t> sampledRegionIds; //!< ascending
    std::vector<SamplingConfigEstimate> perConfig;
    double prePassMs = 0.0;
    double replayMs = 0.0;

    /** @return totalBranches / recordedBranches (0 when nothing
     *  recorded). */
    double
    reductionFactor() const
    {
        return recordedBranches == 0
                   ? 0.0
                   : static_cast<double>(totalBranches) /
                         static_cast<double>(recordedBranches);
    }
};

/** Results of a sampled suite run. */
struct SamplingRunResult
{
    std::vector<SamplingBenchmarkResult> perBenchmark;

    /** Equal-weight composite estimates, one per configuration:
     *  subsample-r composites average the benchmarks' subsample-r
     *  estimates, mirroring EqualWeightComposite. */
    std::vector<SamplingConfigEstimate> composite;

    std::uint64_t totalBranches = 0;
    std::uint64_t recordedBranches = 0;
    double wallMs = 0.0;

    /** @return suite-wide replayed-records reduction factor. */
    double
    reductionFactor() const
    {
        return recordedBranches == 0
                   ? 0.0
                   : static_cast<double>(totalBranches) /
                         static_cast<double>(recordedBranches);
    }
};

class SuiteRunner;

/** Samples traces and estimates sweep results with error bars. */
class SamplingEngine
{
  public:
    /** Fresh deterministic trace factory; each call must yield a
     *  bit-identical stream (the engine runs two passes). */
    using SourceFactory =
        std::function<std::unique_ptr<TraceSource>()>;

    /**
     * @param configs Attached configurations (as SweepEngine's).
     * @param driver Simulation knobs shared by all configurations.
     * @param options Sampling knobs; fatal(kConfig) on invalid values
     *        at construction.
     */
    SamplingEngine(std::vector<SweepConfiguration> configs,
                   DriverOptions driver, SamplingOptions options);

    /** Sample one trace. @p name labels telemetry and results. */
    SamplingBenchmarkResult runTrace(const std::string &name,
                                     const SourceFactory &make_source);

    /**
     * Sample every benchmark of @p runner's suite (honouring its
     * source wrapper) and composite the estimates. Emits the
     * sampling_run_finished telemetry event and sampling.* metrics
     * when DriverOptions::telemetry is attached.
     */
    SamplingRunResult runSuite(const SuiteRunner &runner);

  private:
    std::vector<SweepConfiguration> configs_;
    DriverOptions driver_;
    SamplingOptions options_;
};

} // namespace confsim

#endif // CONFSIM_SIM_SAMPLING_ENGINE_H
