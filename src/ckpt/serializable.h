/**
 * @file
 * The Serializable capability: components that can checkpoint their
 * mutable state into a StateWriter and restore it bit-exactly from a
 * StateReader.
 *
 * The base implementations are deliberately conservative:
 * checkpointable() defaults to FALSE, so a component that has not
 * audited its own state cannot silently participate in a resume and
 * produce subtly divergent results. Stateless components override
 * checkpointable() to true and keep the no-op save/load; stateful ones
 * override all three.
 *
 * Versioning: stateVersion() is stored alongside each component's
 * payload in the checkpoint registry. Bump it whenever the payload
 * layout changes; a version mismatch at restore time invalidates the
 * checkpoint (the store then falls back one generation) instead of
 * misinterpreting old bytes.
 */

#ifndef CONFSIM_CKPT_SERIALIZABLE_H
#define CONFSIM_CKPT_SERIALIZABLE_H

#include <cstdint>

#include "ckpt/state_io.h"

namespace confsim {

class Serializable
{
  public:
    virtual ~Serializable() = default;

    /**
     * @return true iff saveState()/loadState() capture ALL mutable
     * state, i.e. a restored instance behaves identically to the
     * original on every future input. Defaults to false so forgetting
     * to implement serialization disables checkpointing rather than
     * corrupting it.
     */
    virtual bool checkpointable() const { return false; }

    /** Append this component's mutable state to @p out. */
    virtual void saveState(StateWriter &out) const { (void)out; }

    /**
     * Restore state previously written by saveState() on an instance
     * with the same configuration. Throws (via fatal()) on any
     * mismatch; the instance may be left partially modified, so
     * callers must discard it on failure.
     */
    virtual void loadState(StateReader &in) { (void)in; }

    /** Payload layout version recorded in the checkpoint registry. */
    virtual std::uint32_t stateVersion() const { return 1; }
};

} // namespace confsim

#endif // CONFSIM_CKPT_SERIALIZABLE_H
