/**
 * @file
 * Generation-rotating checkpoint store for one run label.
 *
 * Layout under the checkpoint directory:
 *
 *   <label>.g000042.ckpt   rotating mid-run generations (newest wins)
 *   <label>.done.ckpt      completed-run marker holding final results
 *
 * Writes are atomic (util/atomic_file), so a crash during a checkpoint
 * leaves the previous generation intact. The store keeps the newest
 * `keepGenerations` files; recovery walks generations newest-first and
 * falls back one generation whenever a file fails its CRC — the
 * fall-back-one-generation rule documented in docs/robustness.md.
 *
 * The store is observability-transparent: an optional hook receives a
 * CheckpointStoreEvent for every write and every corrupt file, which
 * the suite runner forwards into the telemetry stream as
 * checkpoint_written / checkpoint_corrupt events.
 */

#ifndef CONFSIM_CKPT_CHECKPOINT_STORE_H
#define CONFSIM_CKPT_CHECKPOINT_STORE_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"

namespace confsim {

class SpanTracer;

/** What a CheckpointStore just did (for telemetry forwarding). */
struct CheckpointStoreEvent
{
    enum class Kind
    {
        Written, //!< a generation or done-marker hit the disk
        Corrupt, //!< a file failed CRC/structure checks and was skipped
    };

    Kind kind = Kind::Written;
    std::string path;
    std::uint64_t generation = 0; //!< 0 for the done-marker
    std::uint64_t atBranch = 0;   //!< branches recorded in the file
    std::uint64_t bytes = 0;      //!< file size (Written only)
    std::string detail;           //!< error text (Corrupt only)
};

using CheckpointStoreHook =
    std::function<void(const CheckpointStoreEvent &)>;

class CheckpointStore
{
  public:
    /**
     * Bind to @p directory (created if absent) for run @p label.
     * Scans existing generation files so a resumed process continues
     * the generation sequence instead of restarting it.
     */
    CheckpointStore(std::string directory, std::string label,
                    unsigned keepGenerations = 2);

    /** Observe writes and corruption; replaces any previous hook. */
    void setEventHook(CheckpointStoreHook hook);

    /**
     * Trace serialization + atomic-write time as "ckpt.store_write"
     * spans (obs/span.h); null (the default) disables. The tracer
     * must outlive the store's write calls.
     */
    void setSpanTracer(SpanTracer *spans) { spans_ = spans; }

    /**
     * Atomically write @p ckpt as the next generation, then prune
     * generations beyond keepGenerations (newest kept).
     */
    void write(const Checkpoint &ckpt);

    /** Generation numbers present on disk, newest first. */
    std::vector<std::uint64_t> generations() const;

    /**
     * Load generation @p generation if it verifies; on CRC/structure
     * failure fires a Corrupt event and returns nullopt so the caller
     * can fall back one generation.
     */
    std::optional<Checkpoint> load(std::uint64_t generation);

    /**
     * Walk generations newest-first and return the first that
     * verifies, firing a Corrupt event per damaged file passed over.
     */
    std::optional<Checkpoint> loadLatestValid();

    /** Atomically write the completed-run marker. */
    void writeCompleted(const Checkpoint &ckpt);

    /** Load the completed-run marker if present and intact. */
    std::optional<Checkpoint> loadCompleted();

    /** Delete all mid-run generation files (after completion). */
    void removeGenerations();

    std::string generationPath(std::uint64_t generation) const;
    std::string completedPath() const;
    const std::string &directory() const { return directory_; }
    const std::string &label() const { return label_; }

  private:
    std::optional<Checkpoint> loadPath(const std::string &path,
                                       std::uint64_t generation);
    void emit(const CheckpointStoreEvent &event) const;
    void removeOrphanedTemporaries();

    std::string directory_;
    std::string label_;
    unsigned keepGenerations_;
    std::uint64_t nextGeneration_ = 1;
    CheckpointStoreHook hook_;
    SpanTracer *spans_ = nullptr;
};

} // namespace confsim

#endif // CONFSIM_CKPT_CHECKPOINT_STORE_H
