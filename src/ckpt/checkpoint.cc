#include "ckpt/checkpoint.h"

#include <fstream>

#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/status.h"

namespace confsim {

void
Checkpoint::add(std::string name, std::uint32_t version,
                std::vector<std::uint8_t> payload)
{
    CheckpointComponent component;
    component.name = std::move(name);
    component.version = version;
    component.payload = std::move(payload);
    components_.push_back(std::move(component));
}

const CheckpointComponent *
Checkpoint::find(const std::string &name) const
{
    for (const auto &component : components_)
        if (component.name == name)
            return &component;
    return nullptr;
}

std::vector<std::uint8_t>
Checkpoint::serialize() const
{
    StateWriter out;
    out.putBytes(kCheckpointMagic, sizeof kCheckpointMagic);
    out.putU32(kCheckpointFormatVersion);
    out.putString(label);
    out.putU64(watermark);
    out.putU64(branches);
    out.putU32(static_cast<std::uint32_t>(components_.size()));
    for (const auto &component : components_) {
        out.putString(component.name);
        out.putU32(component.version);
        out.putU64(component.payload.size());
        out.putBytes(component.payload.data(), component.payload.size());
        out.putU32(
            crc32(component.payload.data(), component.payload.size()));
    }
    out.putU32(crc32(out.bytes().data(), out.bytes().size()));
    return out.take();
}

namespace {

/**
 * Shared CSK1 walk: strict mode throws on the first violation, lenient
 * mode records verdicts and keeps going as far as the structure allows.
 * One walker keeps the two paths from drifting apart.
 */
CheckpointInspection
walk(const std::vector<std::uint8_t> &bytes, Checkpoint *out,
     bool strict)
{
    CheckpointInspection info;
    const std::size_t kFooter = sizeof(std::uint32_t);
    if (bytes.size() < sizeof kCheckpointMagic + kFooter) {
        if (strict)
            fatal(ErrorCategory::kCheckpoint, "checkpoint file too small (" +
                  std::to_string(bytes.size()) + " bytes)");
        return info;
    }

    info.magicOk = std::memcmp(bytes.data(), kCheckpointMagic,
                               sizeof kCheckpointMagic) == 0;
    if (!info.magicOk) {
        if (strict)
            fatal(ErrorCategory::kCheckpoint, "checkpoint magic mismatch (not a CSK1 file)");
        return info;
    }

    // Whole-file CRC covers everything before the 4-byte footer.
    const std::size_t body = bytes.size() - kFooter;
    const std::uint32_t stored_crc =
        static_cast<std::uint32_t>(bytes[body]) |
        (static_cast<std::uint32_t>(bytes[body + 1]) << 8) |
        (static_cast<std::uint32_t>(bytes[body + 2]) << 16) |
        (static_cast<std::uint32_t>(bytes[body + 3]) << 24);
    info.fileCrcOk = crc32(bytes.data(), body) == stored_crc;
    if (strict && !info.fileCrcOk)
        fatal(ErrorCategory::kCheckpoint, "checkpoint file CRC mismatch");

    try {
        StateReader in(bytes.data(), body);
        char magic[sizeof kCheckpointMagic];
        for (char &c : magic)
            c = static_cast<char>(in.getU8());
        info.formatVersion = in.getU32();
        info.versionOk = info.formatVersion == kCheckpointFormatVersion;
        if (strict && !info.versionOk)
            fatal(ErrorCategory::kCheckpoint, "checkpoint format version " +
                  std::to_string(info.formatVersion) +
                  " is not supported (expected " +
                  std::to_string(kCheckpointFormatVersion) + ")");
        info.label = in.getString();
        info.watermark = in.getU64();
        info.branches = in.getU64();
        const std::uint32_t count = in.getU32();
        for (std::uint32_t i = 0; i < count; ++i) {
            CheckpointComponentInfo entry;
            entry.name = in.getString();
            entry.version = in.getU32();
            entry.size = in.getU64();
            if (entry.size > in.remaining())
                fatal(ErrorCategory::kCheckpoint, "checkpoint component '" + entry.name +
                      "' overruns the file");
            std::vector<std::uint8_t> payload(
                static_cast<std::size_t>(entry.size));
            for (auto &byte : payload)
                byte = in.getU8();
            const std::uint32_t payload_crc = in.getU32();
            entry.crcOk =
                crc32(payload.data(), payload.size()) == payload_crc;
            if (strict && !entry.crcOk)
                fatal(ErrorCategory::kCheckpoint, "checkpoint component '" + entry.name +
                      "' CRC mismatch");
            info.components.push_back(entry);
            if (out != nullptr)
                out->add(entry.name, entry.version, std::move(payload));
        }
        if (!in.atEnd())
            fatal(ErrorCategory::kCheckpoint, "checkpoint has trailing garbage");
        info.structureOk = true;
        if (out != nullptr) {
            out->label = info.label;
            out->watermark = info.watermark;
            out->branches = info.branches;
        }
    } catch (const std::exception &) {
        info.structureOk = false;
        if (strict)
            throw;
    }
    return info;
}

} // namespace

Checkpoint
Checkpoint::deserialize(const std::vector<std::uint8_t> &bytes)
{
    Checkpoint ckpt;
    walk(bytes, &ckpt, /*strict=*/true);
    return ckpt;
}

CheckpointInspection
inspectCheckpoint(const std::vector<std::uint8_t> &bytes)
{
    return walk(bytes, nullptr, /*strict=*/false);
}

void
writeCheckpointFile(const std::string &path, const Checkpoint &ckpt)
{
    const std::vector<std::uint8_t> bytes = ckpt.serialize();
    AtomicFileWriter writer(path);
    writer.stream().write(reinterpret_cast<const char *>(bytes.data()),
                          static_cast<std::streamsize>(bytes.size()));
    writer.commit();
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal(ErrorCategory::kCheckpoint, "cannot open " + path + " for reading");
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        fatal(ErrorCategory::kCheckpoint, "read error on " + path);
    return bytes;
}

Checkpoint
readCheckpointFile(const std::string &path)
{
    return Checkpoint::deserialize(readFileBytes(path));
}

} // namespace confsim
