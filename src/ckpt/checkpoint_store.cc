#include "ckpt/checkpoint_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "fault/fault_plan.h"
#include "obs/span.h"
#include "util/error.h"
#include "util/status.h"

namespace confsim {

namespace {

/** Zero-padded generation tag, e.g. 42 -> "g000042". */
std::string
generationTag(std::uint64_t generation)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "g%06llu",
                  static_cast<unsigned long long>(generation));
    return buf;
}

} // namespace

CheckpointStore::CheckpointStore(std::string directory, std::string label,
                                 unsigned keepGenerations)
    : directory_(std::move(directory)), label_(std::move(label)),
      keepGenerations_(keepGenerations == 0 ? 1 : keepGenerations)
{
    if (directory_.empty())
        fatal(ErrorCategory::kConfig,
              "checkpoint directory must not be empty");
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    if (ec)
        fatal(ErrorCategory::kResource,
              "cannot create checkpoint directory " + directory_ + ": " +
              ec.message());
    removeOrphanedTemporaries();
    const std::vector<std::uint64_t> existing = generations();
    if (!existing.empty())
        nextGeneration_ = existing.front() + 1;
}

void
CheckpointStore::setEventHook(CheckpointStoreHook hook)
{
    hook_ = std::move(hook);
}

void
CheckpointStore::emit(const CheckpointStoreEvent &event) const
{
    if (hook_)
        hook_(event);
}

std::string
CheckpointStore::generationPath(std::uint64_t generation) const
{
    return directory_ + "/" + label_ + "." + generationTag(generation) +
           ".ckpt";
}

std::string
CheckpointStore::completedPath() const
{
    return directory_ + "/" + label_ + ".done.ckpt";
}

std::vector<std::uint64_t>
CheckpointStore::generations() const
{
    const std::string prefix = label_ + ".g";
    const std::string suffix = ".ckpt";
    std::vector<std::uint64_t> found;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(directory_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() <= prefix.size() + suffix.size())
            continue;
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        const std::string digits =
            name.substr(prefix.size(),
                        name.size() - prefix.size() - suffix.size());
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos)
            continue;
        found.push_back(std::stoull(digits));
    }
    std::sort(found.rbegin(), found.rend());
    return found;
}

void
CheckpointStore::removeOrphanedTemporaries()
{
    // A writer killed between open() and rename() leaves a stale
    // `<label>*.ckpt.tmp` sibling behind. It is never a valid
    // checkpoint (rename is what publishes one), so reclaim the space
    // when a store reopens the directory.
    const std::string prefix = label_ + ".";
    const std::string suffix = ".ckpt.tmp";
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(directory_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() <= prefix.size() + suffix.size())
            continue;
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        std::remove(entry.path().string().c_str());
    }
}

void
CheckpointStore::write(const Checkpoint &ckpt)
{
    ScopedSpan span(spans_, "ckpt.store_write");
    FaultInjector &injector = FaultInjector::instance();
    if (injector.armed())
        injector.fire(FaultSite::kCheckpointWrite, label_);
    const std::uint64_t generation = nextGeneration_++;
    const std::string path = generationPath(generation);
    writeCheckpointFile(path, ckpt);

    CheckpointStoreEvent event;
    event.kind = CheckpointStoreEvent::Kind::Written;
    event.path = path;
    event.generation = generation;
    event.atBranch = ckpt.branches;
    std::error_code ec;
    event.bytes = std::filesystem::file_size(path, ec);
    emit(event);

    const std::vector<std::uint64_t> existing = generations();
    for (std::size_t i = keepGenerations_; i < existing.size(); ++i)
        std::remove(generationPath(existing[i]).c_str());
}

std::optional<Checkpoint>
CheckpointStore::loadPath(const std::string &path,
                          std::uint64_t generation)
{
    try {
        return readCheckpointFile(path);
    } catch (const std::exception &err) {
        CheckpointStoreEvent event;
        event.kind = CheckpointStoreEvent::Kind::Corrupt;
        event.path = path;
        event.generation = generation;
        event.detail = err.what();
        emit(event);
        return std::nullopt;
    }
}

std::optional<Checkpoint>
CheckpointStore::load(std::uint64_t generation)
{
    return loadPath(generationPath(generation), generation);
}

std::optional<Checkpoint>
CheckpointStore::loadLatestValid()
{
    for (const std::uint64_t generation : generations()) {
        if (auto ckpt = load(generation))
            return ckpt;
    }
    return std::nullopt;
}

void
CheckpointStore::writeCompleted(const Checkpoint &ckpt)
{
    ScopedSpan span(spans_, "ckpt.store_write");
    FaultInjector &injector = FaultInjector::instance();
    if (injector.armed())
        injector.fire(FaultSite::kCheckpointWrite, label_);
    writeCheckpointFile(completedPath(), ckpt);

    CheckpointStoreEvent event;
    event.kind = CheckpointStoreEvent::Kind::Written;
    event.path = completedPath();
    event.generation = 0;
    event.atBranch = ckpt.branches;
    std::error_code ec;
    event.bytes = std::filesystem::file_size(completedPath(), ec);
    emit(event);
}

std::optional<Checkpoint>
CheckpointStore::loadCompleted()
{
    std::error_code ec;
    if (!std::filesystem::exists(completedPath(), ec))
        return std::nullopt;
    return loadPath(completedPath(), 0);
}

void
CheckpointStore::removeGenerations()
{
    for (const std::uint64_t generation : generations())
        std::remove(generationPath(generation).c_str());
}

} // namespace confsim
