/**
 * @file
 * Serialization helpers for the recurring state shapes in this
 * codebase: direct-mapped counter tables, shift registers, and
 * unordered maps.
 *
 * Map serialization sorts keys first. Unordered-map iteration order is
 * implementation-defined, and the bit-exact-resume guarantee extends to
 * the checkpoint bytes themselves (same state => same file => same
 * CRC), so every container with nondeterministic order is canonicalized
 * before encoding.
 */

#ifndef CONFSIM_CKPT_STATE_HELPERS_H
#define CONFSIM_CKPT_STATE_HELPERS_H

#include <algorithm>
#include <vector>

#include "ckpt/state_io.h"
#include "util/fixed_vector_table.h"
#include "util/saturating_counter.h"
#include "util/shift_register.h"

namespace confsim {

/** Save a table of saturating counters (size-guarded). */
inline void
saveCounterTable(StateWriter &out,
                 const FixedVectorTable<SaturatingCounter> &table)
{
    out.putU64(table.size());
    for (const auto &counter : table)
        out.putU32(counter.value());
}

/** Restore a saveCounterTable() snapshot into a same-sized table. */
inline void
loadCounterTable(StateReader &in,
                 FixedVectorTable<SaturatingCounter> &table)
{
    in.expectU64(table.size(), "counter table size");
    for (auto &counter : table)
        counter.set(in.getU32());
}

/** Save a shift register's contents (width-guarded). */
inline void
saveShiftRegister(StateWriter &out, const ShiftRegister &reg)
{
    out.putU64(reg.width());
    out.putU64(reg.value());
}

/** Restore a saveShiftRegister() snapshot. */
inline void
loadShiftRegister(StateReader &in, ShiftRegister &reg)
{
    in.expectU64(reg.width(), "shift register width");
    reg.set(in.getU64());
}

/**
 * Save an unordered map with u64 keys in sorted-key order. @p putValue
 * is invoked as putValue(writer, value) for each entry.
 */
template <typename Map, typename PutValue>
void
saveSortedMap(StateWriter &out, const Map &map, PutValue putValue)
{
    std::vector<typename Map::key_type> keys;
    keys.reserve(map.size());
    for (const auto &entry : map)
        keys.push_back(entry.first);
    std::sort(keys.begin(), keys.end());
    out.putU64(keys.size());
    for (const auto &key : keys) {
        out.putU64(key);
        putValue(out, map.at(key));
    }
}

/**
 * Restore a saveSortedMap() snapshot. @p getValue is invoked as
 * getValue(reader) and must return the mapped value.
 */
template <typename Map, typename GetValue>
void
loadMap(StateReader &in, Map &map, GetValue getValue)
{
    map.clear();
    const std::uint64_t count = in.getU64();
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t key = in.getU64();
        map[key] = getValue(in);
    }
}

} // namespace confsim

#endif // CONFSIM_CKPT_STATE_HELPERS_H
