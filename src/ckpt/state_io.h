/**
 * @file
 * Byte-level primitives for checkpoint serialization.
 *
 * StateWriter appends fixed-width little-endian values to a growable
 * byte buffer; StateReader consumes them back with hard bounds checks.
 * Every multi-byte value is packed explicitly byte-by-byte so the
 * encoding is identical across hosts regardless of endianness, and
 * doubles travel as their IEEE-754 bit patterns so a restored
 * accumulator is bit-exact, not merely "close".
 *
 * Readers fail loudly: running off the end of a payload or reading a
 * mismatched guard value means the checkpoint does not describe the
 * component being restored, and resuming anyway would silently produce
 * wrong results. fatal() (an exception) lets the caller fall back a
 * generation instead.
 */

#ifndef CONFSIM_CKPT_STATE_IO_H
#define CONFSIM_CKPT_STATE_IO_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/status.h"

namespace confsim {

/** Append-only little-endian encoder for component state payloads. */
class StateWriter
{
  public:
    void putU8(std::uint8_t v) { bytes_.push_back(v); }

    void putU16(std::uint16_t v)
    {
        putU8(static_cast<std::uint8_t>(v));
        putU8(static_cast<std::uint8_t>(v >> 8));
    }

    void putU32(std::uint32_t v)
    {
        putU16(static_cast<std::uint16_t>(v));
        putU16(static_cast<std::uint16_t>(v >> 16));
    }

    void putU64(std::uint64_t v)
    {
        putU32(static_cast<std::uint32_t>(v));
        putU32(static_cast<std::uint32_t>(v >> 32));
    }

    void putBool(bool v) { putU8(v ? 1 : 0); }

    /** Bit-pattern transport: restored doubles compare bitwise-equal. */
    void putF64(double v)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof bits == sizeof v);
        std::memcpy(&bits, &v, sizeof bits);
        putU64(bits);
    }

    void putString(const std::string &s)
    {
        putU32(static_cast<std::uint32_t>(s.size()));
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    void putBytes(const void *data, std::size_t size)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        bytes_.insert(bytes_.end(), p, p + size);
    }

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked decoder over a component state payload. */
class StateReader
{
  public:
    StateReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit StateReader(const std::vector<std::uint8_t> &bytes)
        : StateReader(bytes.data(), bytes.size())
    {
    }

    std::uint8_t getU8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint16_t getU16()
    {
        const std::uint16_t lo = getU8();
        const std::uint16_t hi = getU8();
        return static_cast<std::uint16_t>(lo | (hi << 8));
    }

    std::uint32_t getU32()
    {
        const std::uint32_t lo = getU16();
        const std::uint32_t hi = getU16();
        return lo | (hi << 16);
    }

    std::uint64_t getU64()
    {
        const std::uint64_t lo = getU32();
        const std::uint64_t hi = getU32();
        return lo | (hi << 32);
    }

    bool getBool() { return getU8() != 0; }

    double getF64()
    {
        const std::uint64_t bits = getU64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string getString()
    {
        const std::uint32_t n = getU32();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    /**
     * Consume a u64 and require it to equal @p expected. Guards protect
     * restores against configuration drift: a table serialized at one
     * size must not be poured into a table of another size.
     */
    void expectU64(std::uint64_t expected, const char *what)
    {
        const std::uint64_t got = getU64();
        if (got != expected)
            fatal(ErrorCategory::kCheckpoint, std::string("checkpoint state mismatch for ") + what +
                  ": stored " + std::to_string(got) + ", expected " +
                  std::to_string(expected));
    }

    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

  private:
    void need(std::size_t n) const
    {
        if (size_ - pos_ < n)
            fatal(ErrorCategory::kCheckpoint, "checkpoint payload truncated: wanted " +
                  std::to_string(n) + " byte(s), " +
                  std::to_string(size_ - pos_) + " left");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace confsim

#endif // CONFSIM_CKPT_STATE_IO_H
