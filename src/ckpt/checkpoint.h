/**
 * @file
 * The CSK1 checkpoint container: a versioned, CRC32-checksummed binary
 * registry of named component payloads.
 *
 * File layout (all integers little-endian, written via StateWriter):
 *
 *   magic            "CSK1" (4 bytes)
 *   format_version   u32 (currently 1)
 *   label            u32 length + bytes (benchmark / run label)
 *   watermark        u64 trace records consumed when taken
 *   branches         u64 conditional branches simulated when taken
 *   component_count  u32
 *   per component:
 *     name           u32 length + bytes  (e.g. "predictor:gshare/8Kx2")
 *     state_version  u32                 (Serializable::stateVersion())
 *     payload_size   u64
 *     payload        bytes
 *     payload_crc    u32 CRC-32 of the payload bytes
 *   file_crc         u32 CRC-32 of every preceding byte
 *
 * The whole-file CRC catches truncation and random corruption in one
 * check; the per-component CRCs let `trace_tool checkpoint inspect`
 * report exactly which component is damaged. Component names embed the
 * component's own name() string, so resuming under a different
 * predictor/estimator configuration fails by lookup rather than by
 * silently pouring state into the wrong table.
 */

#ifndef CONFSIM_CKPT_CHECKPOINT_H
#define CONFSIM_CKPT_CHECKPOINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/serializable.h"
#include "ckpt/state_io.h"

namespace confsim {

inline constexpr char kCheckpointMagic[4] = {'C', 'S', 'K', '1'};
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/** One named entry in the checkpoint's component registry. */
struct CheckpointComponent
{
    std::string name;
    std::uint32_t version = 1;
    std::vector<std::uint8_t> payload;
};

/**
 * In-memory checkpoint: metadata plus the component registry.
 * serialize()/deserialize() convert to/from the CSK1 byte format;
 * deserialize() throws (via fatal()) on any integrity violation.
 */
class Checkpoint
{
  public:
    std::string label;           //!< benchmark / run label
    std::uint64_t watermark = 0; //!< trace records consumed
    std::uint64_t branches = 0;  //!< conditional branches simulated

    /** Register a raw payload under @p name. */
    void add(std::string name, std::uint32_t version,
             std::vector<std::uint8_t> payload);

    /**
     * Serialize @p object (anything with saveState(StateWriter&)) and
     * register the payload under @p name with @p version.
     */
    template <typename T>
    void
    addState(const std::string &name, std::uint32_t version,
             const T &object)
    {
        StateWriter writer;
        object.saveState(writer);
        add(name, version, writer.take());
    }

    /** addState() using the component's own stateVersion(). */
    void
    addComponent(const std::string &name, const Serializable &component)
    {
        addState(name, component.stateVersion(), component);
    }

    /** @return the registry entry named @p name, or nullptr. */
    const CheckpointComponent *find(const std::string &name) const;

    /**
     * Restore @p object from the component named @p name, requiring the
     * stored version to equal @p version. fatal() if the component is
     * absent, the version mismatches, or the payload is not fully
     * consumed (all three mean "this checkpoint does not describe this
     * configuration").
     */
    template <typename T>
    void
    restoreState(const std::string &name, std::uint32_t version,
                 T &object) const
    {
        const CheckpointComponent *entry = find(name);
        if (entry == nullptr) {
            fatal(ErrorCategory::kCheckpoint,
                  "checkpoint has no component '" + name + "'");
        }
        if (entry->version != version) {
            fatal(ErrorCategory::kCheckpoint,
                  "checkpoint component '" + name + "' is version " +
                      std::to_string(entry->version) + ", expected " +
                      std::to_string(version));
        }
        StateReader reader(entry->payload);
        object.loadState(reader);
        if (!reader.atEnd()) {
            fatal(ErrorCategory::kCheckpoint,
                  "checkpoint component '" + name + "' has " +
                      std::to_string(reader.remaining()) +
                      " unconsumed byte(s)");
        }
    }

    /** restoreState() using the component's own stateVersion(). */
    void
    restoreComponent(const std::string &name,
                     Serializable &component) const
    {
        restoreState(name, component.stateVersion(), component);
    }

    const std::vector<CheckpointComponent> &components() const
    {
        return components_;
    }

    /** Encode to the CSK1 byte format (with CRCs). */
    std::vector<std::uint8_t> serialize() const;

    /** Decode and fully verify a CSK1 byte buffer; throws on damage. */
    static Checkpoint deserialize(const std::vector<std::uint8_t> &bytes);

  private:
    std::vector<CheckpointComponent> components_;
};

/** Per-component verdict from a tolerant (non-throwing) parse. */
struct CheckpointComponentInfo
{
    std::string name;
    std::uint32_t version = 0;
    std::uint64_t size = 0;
    bool crcOk = false;
};

/**
 * Tolerant parse result for `trace_tool checkpoint inspect`: records
 * what is wrong instead of throwing, and lists every component it
 * could still walk.
 */
struct CheckpointInspection
{
    bool magicOk = false;
    bool versionOk = false;
    bool fileCrcOk = false;
    bool structureOk = false; //!< registry walk stayed in bounds
    std::uint32_t formatVersion = 0;
    std::string label;
    std::uint64_t watermark = 0;
    std::uint64_t branches = 0;
    std::vector<CheckpointComponentInfo> components;

    bool valid() const
    {
        if (!(magicOk && versionOk && fileCrcOk && structureOk))
            return false;
        for (const auto &component : components)
            if (!component.crcOk)
                return false;
        return true;
    }
};

/** Parse @p bytes leniently, recording integrity verdicts. */
CheckpointInspection
inspectCheckpoint(const std::vector<std::uint8_t> &bytes);

/** Atomically write @p ckpt to @p path (tmp + fsync + rename). */
void writeCheckpointFile(const std::string &path, const Checkpoint &ckpt);

/** Read and fully verify @p path; throws (via fatal()) on damage. */
Checkpoint readCheckpointFile(const std::string &path);

/** Slurp a file's bytes; throws (via fatal()) if unreadable. */
std::vector<std::uint8_t> readFileBytes(const std::string &path);

} // namespace confsim

#endif // CONFSIM_CKPT_CHECKPOINT_H
