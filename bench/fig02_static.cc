/**
 * @file
 * Reproduces paper Fig. 2: cumulative mispredictions versus cumulative
 * dynamic branches for the idealized profile-based STATIC confidence
 * method, under the 64K-entry gshare predictor over the IBS stand-in
 * suite (equal-weight composite).
 *
 * Paper reference points: the knee at (25.2% branches, 70.6% misses);
 * ~63% of mispredictions concentrated in 20% of dynamic branches;
 * composite misprediction rate 3.85%.
 */

#include <cstdio>

#include "confidence/branch_classes.h"
#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Fig. 2: static confidence method",
                                env)) {
        return 0;
    }

    std::printf("=== Fig. 2: ideal static (profile-based) confidence "
                "===\n\n");
    const auto result =
        runSuiteExperiment(env, largeGshareFactory(), {});
    printMispredictionRates(result);

    std::vector<NamedCurve> curves;
    curves.push_back(staticCompositeCurve(result));
    printCoverageSummary(curves);

    const double at20 = curves[0].curve.mispredCoverageAt(0.20);
    const double knee_y = curves[0].curve.mispredCoverageAt(0.252);
    std::printf("\npaper reference: 20%% -> ~63%%;   measured: 20%% -> "
                "%.1f%%\n",
                100.0 * at20);
    std::printf("paper knee (25.2, 70.6);          measured: (25.2, "
                "%.1f)\n\n",
                100.0 * knee_y);

    std::puts(plotCurves("Fig. 2 — static confidence method", curves)
                  .c_str());

    // Branch-class breakdown: which taken-rate bands carry the
    // mispredictions the static method localizes? (Computed on the
    // first suite benchmark's profile as an illustration; the curve
    // above uses the full composite.)
    {
        const auto suite = env.makeSuite();
        auto gen = suite.makeGenerator(0);
        auto predictor = largeGshareFactory()();
        DriverOptions options;
        options.profileStatic = true;
        SimulationDriver driver(*predictor, {}, options);
        const auto run = driver.run(*gen);
        std::printf("branch classes for '%s':\n%s\n",
                    suite.profile(0).name.c_str(),
                    renderBranchClassTable(
                        classifyProfile(run.staticProfile))
                        .c_str());
    }

    writeCurvesCsv(env.csvDir + "/fig02_static.csv", curves);
    return 0;
}
