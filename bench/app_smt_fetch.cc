/**
 * @file
 * SMT fetch-gating study (paper Section 1 application 2): four
 * hardware threads running distinct IBS workloads; fetch slots are
 * granted round-robin, optionally gating threads whose latest
 * prediction was low confidence. Reports wasted-fetch fraction and
 * useful throughput with gating off and at several thresholds.
 */

#include <cstdio>
#include <memory>

#include "apps/smt_fetch.h"
#include "confidence/one_level.h"
#include "predictor/gshare.h"
#include "sim/experiment.h"
#include "util/csv.h"
#include "util/string_utils.h"
#include "workload/workload_generator.h"

using namespace confsim;

namespace {

struct ThreadBundle
{
    std::unique_ptr<WorkloadGenerator> source;
    std::unique_ptr<GsharePredictor> predictor;
    std::unique_ptr<OneLevelCounterConfidence> estimator;
};

SmtFetchResult
runPolicy(bool gate, std::uint64_t threshold, std::uint64_t slots)
{
    const std::vector<std::string> programs = {"real_gcc", "gs",
                                               "jpeg", "sdet"};
    std::vector<ThreadBundle> bundles;
    std::vector<SmtThreadSpec> specs;
    for (const auto &name : programs) {
        ThreadBundle bundle;
        bundle.source = std::make_unique<WorkloadGenerator>(
            ibsProfile(name), 4'000'000);
        bundle.predictor = std::make_unique<GsharePredictor>(
            GsharePredictor::makeSmallPaperConfig());
        bundle.estimator =
            std::make_unique<OneLevelCounterConfidence>(
                IndexScheme::PcXorBhr, 4096, CounterKind::Resetting,
                16, 0);
        SmtThreadSpec spec;
        spec.source = bundle.source.get();
        spec.predictor = bundle.predictor.get();
        spec.estimator = bundle.estimator.get();
        spec.lowBuckets.assign(bundle.estimator->numBuckets(), false);
        for (std::uint64_t v = 0; v <= threshold; ++v)
            spec.lowBuckets[v] = true;
        specs.push_back(std::move(spec));
        bundles.push_back(std::move(bundle));
    }
    SmtFetchConfig config;
    config.gateOnLowConfidence = gate;
    config.fetchSlots = slots;
    return runSmtFetch(specs, config);
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Application: SMT fetch gating", env)) {
        return 0;
    }
    const std::uint64_t slots =
        env.fullSuite ? 2'000'000 : 200'000;

    std::printf("=== Application 2: SMT fetch gating (4 threads) "
                "===\n\n");
    std::printf("%-14s %12s %12s %12s %14s\n", "policy", "wasted%",
                "useful/slot", "gated slots", "mispredicts");
    CsvWriter csv(env.csvDir + "/app_smt_fetch.csv");
    csv.writeRow({"policy", "wasted_frac", "useful_per_slot",
                  "gated_slots", "mispredicts"});

    struct Policy
    {
        std::string label;
        bool gate;
        std::uint64_t threshold;
    };
    const std::vector<Policy> policies = {
        {"no-gating", false, 0},  {"gate<=0", true, 0},
        {"gate<=3", true, 3},     {"gate<=7", true, 7},
        {"gate<=15", true, 15},
    };
    for (const auto &policy : policies) {
        const auto result =
            runPolicy(policy.gate, policy.threshold, slots);
        std::printf("%-14s %11.2f%% %12.3f %12llu %14llu\n",
                    policy.label.c_str(),
                    100.0 * result.wastedFraction(),
                    result.usefulPerSlot(slots),
                    static_cast<unsigned long long>(result.gatedSlots),
                    static_cast<unsigned long long>(
                        result.mispredicts));
        csv.writeRow({policy.label,
                      formatFixed(result.wastedFraction(), 5),
                      formatFixed(result.usefulPerSlot(slots), 4),
                      std::to_string(result.gatedSlots),
                      std::to_string(result.mispredicts)});
    }
    std::printf("\n(the paper's application 2: fetch only down paths "
                "with a high likelihood of being correct)\n");
    std::printf("wrote %s/app_smt_fetch.csv\n", env.csvDir.c_str());
    return 0;
}
