/**
 * @file
 * Reproduces paper Table 1: per-counter-value statistics for the best
 * single-level method with 0..16 resetting counters (PC xor BHR
 * indexing, 2^16 entries, 64K gshare, IBS composite).
 *
 * Paper reference rows: count 0 isolates 41.7% of mispredictions in
 * 4.28% of predictions; counts 0-1 -> 57.9% in 6.85%; counts 0-15 ->
 * 89.3% in 20.3%; count 16 is the zero bucket.
 */

#include <cstdio>

#include "metrics/table_report.h"
#include "sim/experiment.h"
#include "util/csv.h"
#include "util/string_utils.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Table 1: resetting counter statistics",
                                env)) {
        return 0;
    }

    std::printf("=== Table 1: statistics for resetting counter values "
                "===\n\n");
    const std::vector<EstimatorConfig> configs = {
        oneLevelCounterConfig(IndexScheme::PcXorBhr,
                              CounterKind::Resetting),
    };
    const auto result =
        runSuiteExperiment(env, largeGshareFactory(), configs);
    printMispredictionRates(result);

    const auto rows =
        buildCounterTable(result.compositeEstimatorStats[0]);
    std::puts(renderCounterTable(rows).c_str());

    std::printf("\npaper reference: count 0 -> 41.7%% of misses in "
                "4.28%% of refs; counts 0..15 -> 89.3%% in 20.3%%\n");
    std::printf("measured:        count 0 -> %.1f%% in %.2f%%; counts "
                "0..15 -> %.1f%% in %.1f%%\n",
                rows[0].cumMispredictPercent, rows[0].cumRefPercent,
                rows[15].cumMispredictPercent, rows[15].cumRefPercent);

    // CSV.
    CsvWriter csv(env.csvDir + "/table1_resetting.csv");
    csv.writeRow({"count", "mispred_rate", "ref_pct", "mispred_pct",
                  "cum_ref_pct", "cum_mispred_pct"});
    for (const auto &row : rows) {
        csv.writeRow({std::to_string(row.counterValue),
                      formatFixed(row.mispredictRate, 4),
                      formatFixed(row.refPercent, 3),
                      formatFixed(row.mispredictPercent, 3),
                      formatFixed(row.cumRefPercent, 2),
                      formatFixed(row.cumMispredictPercent, 2)});
    }
    std::printf("wrote %s/table1_resetting.csv\n", env.csvDir.c_str());
    return 0;
}
