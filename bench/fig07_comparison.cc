/**
 * @file
 * Reproduces paper Fig. 7: the best one-level method (PC xor BHR), the
 * best two-level method (PCxorBHR -> CIR), and the static method on
 * one graph. 64K gshare, IBS composite.
 *
 * Paper conclusion: "the one and two level methods give very similar
 * performance. If anything, the two level method performs very
 * slightly worse... the extra hardware in the second level table is
 * not worth the cost." The harness also prints the storage cost of
 * each mechanism to make that trade-off concrete.
 */

#include <cstdio>

#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(
            argc, argv, "Fig. 7: best 1-level vs 2-level vs static",
            env)) {
        return 0;
    }

    std::printf("=== Fig. 7: best one-level vs best two-level vs "
                "static ===\n\n");
    const std::vector<EstimatorConfig> configs = {
        oneLevelIdealConfig(IndexScheme::PcXorBhr),
        twoLevelConfig(IndexScheme::PcXorBhr, SecondLevelIndex::Cir),
    };
    const auto result =
        runSuiteExperiment(env, largeGshareFactory(), configs);
    printMispredictionRates(result);

    std::vector<NamedCurve> curves;
    curves.push_back(staticCompositeCurve(result));
    curves.push_back(compositeCurve(result, 0, "BHRxorPC (1-level)"));
    curves.push_back(compositeCurve(result, 1, "BHRxorPC-CIR (2-level)"));
    printCoverageSummary(curves);

    // Storage comparison (the paper's cost argument).
    auto one = configs[0].make();
    auto two = configs[1].make();
    std::printf("\nstorage: one-level %llu Kbit, two-level %llu Kbit "
                "(+%.0f%%)\n\n",
                static_cast<unsigned long long>(one->storageBits() /
                                                1024),
                static_cast<unsigned long long>(two->storageBits() /
                                                1024),
                100.0 * (static_cast<double>(two->storageBits()) /
                             one->storageBits() -
                         1.0));

    std::puts(
        plotCurves("Fig. 7 — one-level vs two-level vs static", curves)
            .c_str());
    writeCurvesCsv(env.csvDir + "/fig07_comparison.csv", curves);
    return 0;
}
