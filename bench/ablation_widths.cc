/**
 * @file
 * Width ablations DESIGN.md calls out:
 *  - CIR width sweep (4..16 bits) under ideal reduction: how much
 *    correctness history is worth keeping per entry;
 *  - resetting-counter ceiling sweep (3, 7, 15, 16, 31): the paper's
 *    "we could use larger counters to get somewhat better granularity,
 *    but this approach is limited" (Section 5.2).
 */

#include <cstdio>

#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Ablation: CIR and counter widths",
                                env)) {
        return 0;
    }

    std::printf("=== Ablation A: CIR width (ideal reduction, PCxorBHR, "
                "2^16 entries) ===\n\n");
    {
        std::vector<EstimatorConfig> configs;
        for (unsigned bits : {4u, 8u, 12u, 16u}) {
            auto config = oneLevelIdealConfig(IndexScheme::PcXorBhr,
                                              paper::kLargeCtEntries,
                                              bits);
            config.label = "cir" + std::to_string(bits);
            configs.push_back(std::move(config));
        }
        const auto result =
            runSuiteExperiment(env, largeGshareFactory(), configs);
        std::vector<NamedCurve> curves;
        for (std::size_t i = 0; i < configs.size(); ++i)
            curves.push_back(
                compositeCurve(result, i, configs[i].label));
        printCoverageSummary(curves);
        writeCurvesCsv(env.csvDir + "/ablation_cir_width.csv", curves);
    }

    std::printf("\n=== Ablation B: counter ceiling and reset policy "
                "(PCxorBHR, 2^16 entries) ===\n\n");
    {
        std::vector<EstimatorConfig> configs;
        for (std::uint32_t max : {3u, 7u, 15u, 16u, 31u}) {
            auto config = oneLevelCounterConfig(
                IndexScheme::PcXorBhr, CounterKind::Resetting,
                paper::kLargeCtEntries, max);
            config.label = "reset" + std::to_string(max);
            configs.push_back(std::move(config));
        }
        // Reset-policy comparison at the paper's ceiling: how much
        // confidence should one misprediction destroy?
        {
            auto config = oneLevelCounterConfig(
                IndexScheme::PcXorBhr, CounterKind::HalfReset,
                paper::kLargeCtEntries, 16);
            config.label = "halfreset16";
            configs.push_back(std::move(config));
        }
        const auto result =
            runSuiteExperiment(env, largeGshareFactory(), configs);
        std::vector<NamedCurve> curves;
        for (std::size_t i = 0; i < configs.size(); ++i)
            curves.push_back(
                compositeCurve(result, i, configs[i].label));
        printCoverageSummary(curves);
        std::printf("\n(the ceiling sets the finest achievable "
                    "granularity; past ~16 the gain is marginal — "
                    "'this approach is limited')\n");
        writeCurvesCsv(env.csvDir + "/ablation_counter_max.csv",
                       curves);
    }
    return 0;
}
