/**
 * @file
 * Context-switch ablation (paper Section 5.4): the paper studies CT
 * initialization *because* tables restart — at power-on and at context
 * switches ("another alternative is to not initialize the CIRs between
 * context switches, but we did not study this alternative"). This
 * harness studies exactly that: with the structures flushed every K
 * branches, compare
 *  - all-ones CT reinitialization (the paper's recommendation),
 *  - all-zeros reinitialization (the known-bad choice),
 *  - "lastbit" reinitialization (Section 5.4's cheap proposal),
 * and sweep the switch interval.
 */

#include <cstdio>

#include "sim/experiment.h"
#include "util/csv.h"
#include "util/string_utils.h"

using namespace confsim;

namespace {

double
coverageAt20(const ExperimentEnv &env, std::uint64_t interval,
             CtInit init)
{
    SuiteRunner runner(env.makeSuite());
    DriverOptions options;
    options.profileStatic = false;
    options.contextSwitchInterval = interval;

    const auto result = runner.run(
        largeGshareFactory(),
        [init] {
            std::vector<std::unique_ptr<ConfidenceEstimator>> out;
            out.push_back(std::make_unique<OneLevelCirConfidence>(
                IndexScheme::PcXorBhr, paper::kLargeCtEntries,
                paper::kCirBits, CirReduction::RawPattern, init));
            return out;
        },
        options);
    return ConfidenceCurve::fromBucketStats(
               result.compositeEstimatorStats[0])
        .mispredCoverageAt(0.20);
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(
            argc, argv, "Ablation: context switches and CT reinit",
            env)) {
        return 0;
    }

    std::printf("=== Ablation: context-switch interval x CT "
                "reinitialization ===\n");
    std::printf("(cells: %% of mispredictions captured at the 20%% "
                "operating point)\n\n");
    const std::vector<std::uint64_t> intervals = {0, 500'000, 100'000,
                                                  20'000};
    const std::vector<std::pair<const char *, CtInit>> inits = {
        {"ones", CtInit::Ones},
        {"zeros", CtInit::Zeros},
        {"lastbit", CtInit::LastBit},
    };

    CsvWriter csv(env.csvDir + "/ablation_context_switch.csv");
    csv.writeRow({"switch_interval", "init", "coverage_at_20pct"});

    std::printf("%-16s", "interval");
    for (const auto &[name, init] : inits)
        std::printf(" %9s", name);
    std::printf("\n");
    for (std::uint64_t interval : intervals) {
        const std::string label =
            interval == 0 ? "never" : std::to_string(interval);
        std::printf("%-16s", label.c_str());
        for (const auto &[name, init] : inits) {
            const double coverage = coverageAt20(env, interval, init);
            std::printf(" %8.1f%%", 100.0 * coverage);
            csv.writeRow({label, name, formatFixed(coverage, 5)});
        }
        std::printf("\n");
    }
    std::printf("\n(the ones/zeros gap widens as switches become more "
                "frequent — the dynamic version of Fig. 11's startup "
                "effect; lastbit stays close to ones at a fraction of "
                "the reinit cost)\n");
    std::printf("wrote %s/ablation_context_switch.csv\n",
                env.csvDir.c_str());
    return 0;
}
