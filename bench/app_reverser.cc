/**
 * @file
 * Branch prediction reverser study (paper Section 1 application 4).
 *
 * Runs the two-pass reverser (profile bucket accuracies, invert
 * predictions in buckets measured above 50% misprediction) per IBS
 * benchmark under three configurations:
 *  - the paper's resetting-counter estimator over the large gshare
 *    (finding: no bucket exceeds 50% — Table 1 row 0 is 37.6% — so
 *    reversal never triggers),
 *  - the same estimator over a weak bimodal predictor,
 *  - a raw-CIR-pattern estimator over the weak predictor (fine-grained
 *    buckets expose genuinely reversible contexts).
 */

#include <cstdio>
#include <memory>

#include "apps/reverser.h"
#include "confidence/one_level.h"
#include "predictor/bimodal.h"
#include "predictor/gshare.h"
#include "sim/experiment.h"
#include "util/csv.h"
#include "util/string_utils.h"
#include "workload/workload_generator.h"

using namespace confsim;

namespace {

void
runConfig(const char *label, const BenchmarkSuite &suite,
          const std::function<std::unique_ptr<BranchPredictor>()>
              &make_pred,
          const std::function<std::unique_ptr<ConfidenceEstimator>()>
              &make_est,
          CsvWriter &csv)
{
    double base_sum = 0.0;
    double rev_sum = 0.0;
    std::uint64_t buckets_total = 0;
    std::uint64_t reversals_total = 0;
    for (std::size_t b = 0; b < suite.size(); ++b) {
        auto gen = suite.makeGenerator(b);
        auto pred = make_pred();
        auto est = make_est();
        const auto result =
            runReverser(*gen, *pred, *est, 0.5, 200.0);
        base_sum += result.baseRate();
        rev_sum += result.reversedRate();
        buckets_total += result.reversalBuckets.size();
        reversals_total += result.reversals;
    }
    const auto n = static_cast<double>(suite.size());
    std::printf("%-28s %9.2f%% %9.2f%% %10llu %12llu\n", label,
                100.0 * base_sum / n, 100.0 * rev_sum / n,
                static_cast<unsigned long long>(buckets_total),
                static_cast<unsigned long long>(reversals_total));
    csv.writeRow({label, formatFixed(base_sum / n, 5),
                  formatFixed(rev_sum / n, 5),
                  std::to_string(buckets_total),
                  std::to_string(reversals_total)});
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Application: prediction reverser",
                                env)) {
        return 0;
    }

    std::printf("=== Application 4: branch prediction reverser ===\n\n");
    const auto suite = env.makeSuite();
    std::printf("%-28s %10s %10s %10s %12s\n", "configuration",
                "base", "reversed", "buckets", "reversals");
    CsvWriter csv(env.csvDir + "/app_reverser.csv");
    csv.writeRow({"configuration", "base_rate", "reversed_rate",
                  "reversal_buckets", "reversals"});

    runConfig(
        "gshare64K + reset16", suite,
        [] {
            return std::make_unique<GsharePredictor>(
                GsharePredictor::makeLargePaperConfig());
        },
        [] {
            return std::make_unique<OneLevelCounterConfidence>(
                IndexScheme::PcXorBhr, paper::kLargeCtEntries,
                CounterKind::Resetting, 16, 0);
        },
        csv);

    runConfig(
        "bimodal1K + reset16", suite,
        [] { return std::make_unique<BimodalPredictor>(1024); },
        [] {
            return std::make_unique<OneLevelCounterConfidence>(
                IndexScheme::PcXorBhr, 4096, CounterKind::Resetting,
                16, 0);
        },
        csv);

    runConfig(
        "bimodal1K + rawCIR", suite,
        [] { return std::make_unique<BimodalPredictor>(1024); },
        [] {
            return std::make_unique<OneLevelCirConfidence>(
                IndexScheme::PcXorBhr, 4096, 12,
                CirReduction::RawPattern, CtInit::Ones);
        },
        csv);

    std::printf("\npaper conjecture (Section 6): 'the reverser "
                "application looks promising, but a key issue will be "
                "whether the cost/performance of a predictor plus "
                "reverser is better than ... a more powerful "
                "predictor' — with the strong predictor almost no "
                "bucket exceeds 50%% misprediction (Table 1's worst "
                "row is ~38%%), so reversal gains are marginal there "
                "and substantial only for weak predictors.\n");
    std::printf("wrote %s/app_reverser.csv\n", env.csvDir.c_str());
    return 0;
}
