/**
 * @file
 * Confidence-based hybrid selector study (paper Section 1 application
 * 3): per IBS benchmark, compare
 *  - bimodal alone,
 *  - gshare alone,
 *  - the classic McFarling chooser hybrid,
 *  - confidence arbitration (each constituent carries a resetting-
 *    counter estimator; on disagreement the more confident wins),
 *  - the oracle (both wrong) lower bound.
 */

#include <cstdio>
#include <memory>

#include "apps/hybrid_selector.h"
#include "confidence/one_level.h"
#include "predictor/bimodal.h"
#include "predictor/gshare.h"
#include "predictor/hybrid.h"
#include "sim/driver.h"
#include "sim/experiment.h"
#include "util/csv.h"
#include "util/string_utils.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(
            argc, argv, "Application: confidence hybrid selector",
            env)) {
        return 0;
    }

    std::printf("=== Application 3: hybrid predictor selection ===\n\n");
    const auto suite = env.makeSuite();
    std::printf("%-12s %9s %9s %9s %9s %9s\n", "benchmark", "bimodal",
                "gshare", "chooser", "confsel", "oracle");
    CsvWriter csv(env.csvDir + "/app_hybrid.csv");
    csv.writeRow({"benchmark", "bimodal", "gshare", "chooser",
                  "confsel", "oracle"});

    double sums[5] = {};
    for (std::size_t b = 0; b < suite.size(); ++b) {
        // Confidence-arbitrated hybrid.
        auto gen = suite.makeGenerator(b);
        BimodalPredictor bimodal(4096);
        GsharePredictor gshare(4096, 12);
        OneLevelCounterConfidence conf_bimodal(
            IndexScheme::Pc, 4096, CounterKind::Resetting, 16, 0);
        OneLevelCounterConfidence conf_gshare(
            IndexScheme::PcXorBhr, 4096, CounterKind::Resetting, 16,
            0);
        const auto sel = runHybridSelector(*gen, bimodal, conf_bimodal,
                                           gshare, conf_gshare);

        // McFarling chooser baseline over the identical trace.
        auto gen2 = suite.makeGenerator(b);
        HybridPredictor chooser(
            std::make_unique<BimodalPredictor>(4096),
            std::make_unique<GsharePredictor>(4096, 12), 4096);
        SimulationDriver driver(chooser, {});
        const auto chooser_run = driver.run(*gen2);

        const double rates[5] = {
            sel.rate(sel.firstMispredicts),
            sel.rate(sel.secondMispredicts),
            chooser_run.mispredictRate(),
            sel.rate(sel.selectedMispredicts),
            sel.rate(sel.oracleMispredicts),
        };
        std::printf("%-12s %8.2f%% %8.2f%% %8.2f%% %8.2f%% %8.2f%%\n",
                    suite.profile(b).name.c_str(), 100.0 * rates[0],
                    100.0 * rates[1], 100.0 * rates[2],
                    100.0 * rates[3], 100.0 * rates[4]);
        csv.writeRow({suite.profile(b).name, formatFixed(rates[0], 5),
                      formatFixed(rates[1], 5),
                      formatFixed(rates[2], 5),
                      formatFixed(rates[3], 5),
                      formatFixed(rates[4], 5)});
        for (int i = 0; i < 5; ++i)
            sums[i] += rates[i];
    }
    const auto n = static_cast<double>(suite.size());
    std::printf("%-12s %8.2f%% %8.2f%% %8.2f%% %8.2f%% %8.2f%%  "
                "(equal-weight)\n",
                "composite", 100.0 * sums[0] / n, 100.0 * sums[1] / n,
                100.0 * sums[2] / n, 100.0 * sums[3] / n,
                100.0 * sums[4] / n);
    std::printf("\n(the paper: confidence mechanisms 'may ... arrive "
                "at more accurate hybrid selectors' than the ad hoc "
                "chooser)\n");
    std::printf("wrote %s/app_hybrid.csv\n", env.csvDir.c_str());
    return 0;
}
