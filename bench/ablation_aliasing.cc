/**
 * @file
 * Aliasing ablation: quantify Section 5.3's explanation of the
 * small-table losses ("the use of resetting counters tends to amplify
 * the negative effects of aliasing") by comparing finite resetting-
 * counter tables against an alias-free infinite-table reference over
 * the small (4K) gshare predictor.
 *
 * The gap between the 4096-entry table and the unaliased reference is
 * pure interference; the residual gap to 100% is signal quality.
 */

#include <cstdio>

#include "confidence/associative_ct.h"
#include "confidence/interference_probe.h"
#include "confidence/unaliased.h"
#include "predictor/history_register.h"
#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Ablation: aliasing in small tables",
                                env)) {
        return 0;
    }

    std::printf("=== Ablation: finite CT vs alias-free reference (4K "
                "gshare) ===\n\n");
    std::vector<EstimatorConfig> configs;
    for (std::size_t entries : {512, 4096, 65536}) {
        auto config = oneLevelCounterConfig(
            IndexScheme::PcXorBhr, CounterKind::Resetting, entries);
        config.label = std::to_string(entries);
        configs.push_back(std::move(config));
    }
    {
        // Tagged 2-way table near the 4096-entry direct-mapped
        // STORAGE budget: 1024 sets x 2 ways of (5-bit counter +
        // 6-bit tag + valid + LRU) = 26 Kbit vs 4096 x 5 = 20 Kbit —
        // but only half the entries.
        EstimatorConfig config;
        config.label = "2way@storage";
        config.make = [] {
            return std::make_unique<AssociativeCounterConfidence>(
                IndexScheme::PcXorBhr, 1024, 2, 6,
                CounterKind::Resetting, paper::kCounterMax);
        };
        configs.push_back(std::move(config));
    }
    {
        // Tagged 2-way table at the same ENTRY count (2048 sets x 2
        // ways = 4096 counters, 53 Kbit): isolates conflict misses
        // from capacity.
        EstimatorConfig config;
        config.label = "2way@entries";
        config.make = [] {
            return std::make_unique<AssociativeCounterConfidence>(
                IndexScheme::PcXorBhr, 2048, 2, 6,
                CounterKind::Resetting, paper::kCounterMax);
        };
        configs.push_back(std::move(config));
    }
    {
        EstimatorConfig config;
        config.label = "unaliased";
        config.make = [] {
            return std::make_unique<UnaliasedCounterConfidence>(
                IndexScheme::PcXorBhr, CounterKind::Resetting,
                paper::kCounterMax);
        };
        configs.push_back(std::move(config));
    }

    const auto result =
        runSuiteExperiment(env, smallGshareFactory(), configs);
    printMispredictionRates(result);

    std::vector<NamedCurve> curves;
    for (std::size_t i = 0; i < configs.size(); ++i)
        curves.push_back(compositeCurve(result, i, configs[i].label));
    printCoverageSummary(curves);

    const double equal = curves[1].curve.mispredCoverageAt(0.2);
    const double storage_matched =
        curves[3].curve.mispredCoverageAt(0.2);
    const double entry_matched =
        curves[4].curve.mispredCoverageAt(0.2);
    const double inf = curves[5].curve.mispredCoverageAt(0.2);
    std::printf("\naliasing cost of the equal-size (4096) direct-"
                "mapped table: %.1f points of coverage vs the "
                "alias-free reference\n",
                100.0 * (inf - equal));
    std::printf("tags at matched STORAGE: %+.1f points (capacity "
                "loss usually dominates — a negative result worth "
                "knowing); at matched ENTRIES: %+.1f points\n",
                100.0 * (storage_matched - equal),
                100.0 * (entry_matched - equal));

    // Saturated-bucket occupancy: the paper's mechanism ("aliased
    // counters are likely to spend more of their time in the
    // non-saturated state").
    auto max_bucket_refs = [&result](std::size_t index) {
        const auto &stats = result.compositeEstimatorStats[index];
        return 100.0 * stats[paper::kCounterMax].refs /
               stats.totalRefs();
    };
    std::printf("\nsaturated-counter occupancy: 512 -> %.1f%%, 4096 -> "
                "%.1f%%, 65536 -> %.1f%%, 2way@storage -> %.1f%%, "
                "2way@entries -> %.1f%%, unaliased -> %.1f%%\n",
                max_bucket_refs(0), max_bucket_refs(1),
                max_bucket_refs(2), max_bucket_refs(3),
                max_bucket_refs(4), max_bucket_refs(5));

    // Direct cause measurement: how much context sharing does each
    // table width actually experience? (PCxorBHR indexing, composite
    // across the suite.)
    std::printf("\ncontext sharing under PCxorBHR indexing "
                "(InterferenceProbe):\n");
    std::printf("%-12s %16s %16s %18s\n", "index bits",
                "entries touched", "shared entries",
                "shared accesses");
    for (unsigned bits : {9u, 12u, 16u}) {
        InterferenceProbe probe(IndexScheme::PcXorBhr, bits);
        const auto suite = env.makeSuite();
        for (std::size_t b = 0; b < suite.size(); ++b) {
            auto gen = suite.makeGenerator(b);
            GsharePredictor pred =
                GsharePredictor::makeSmallPaperConfig();
            HistoryRegister bhr(16);
            BranchRecord record;
            BranchContext ctx;
            // Probe a prefix of each benchmark; sharing statistics
            // saturate quickly.
            std::uint64_t seen = 0;
            while (seen < 200000 && gen->next(record)) {
                ctx.pc = record.pc;
                ctx.bhr = bhr.value();
                probe.observe(ctx);
                pred.update(record.pc, record.taken);
                bhr.recordOutcome(record.taken);
                ++seen;
            }
        }
        const auto report = probe.report();
        std::printf("%-12u %16llu %15.1f%% %17.1f%%\n", bits,
                    static_cast<unsigned long long>(
                        report.entriesTouched),
                    100.0 * report.sharedEntryFraction(),
                    100.0 * report.sharedAccessFraction());
    }
    std::printf("(shared accesses are where resetting counters get "
                "spuriously reset — the mechanism behind the coverage "
                "losses above)\n");

    writeCurvesCsv(env.csvDir + "/ablation_aliasing.csv", curves);
    return 0;
}
