/**
 * @file
 * Pipeline gating study — the paper's "better not to speculate"
 * motivation realized as Manne/Klauser/Grunwald-style speculation
 * control: stall fetch when more than N unresolved low-confidence
 * branches are in flight.
 *
 * Sweeps both the confidence threshold (which resetting-counter
 * values count as low confidence) and the gating threshold (how many
 * unresolved low-confidence branches are tolerated) over the IBS
 * suite with the 64K gshare, reporting the wrong-path-work reduction
 * (the energy proxy) against the IPC cost.
 */

#include <algorithm>
#include <cstdio>

#include "apps/pipeline_gating.h"
#include "confidence/one_level.h"
#include "predictor/gshare.h"
#include "sim/experiment.h"
#include "util/csv.h"
#include "util/string_utils.h"

using namespace confsim;

namespace {

struct Row
{
    std::string label;
    double ipc = 0.0;
    double wasted = 0.0;
    double gatedFrac = 0.0;
};

Row
runPolicy(const BenchmarkSuite &suite, bool gate, unsigned threshold,
          std::uint64_t branches, std::uint32_t low_max = 15)
{
    Row row;
    row.label = gate ? "low<=" + std::to_string(low_max) + ",gate>" +
                           std::to_string(threshold)
                     : "no-gating";
    double ipc_sum = 0.0;
    double waste_sum = 0.0;
    double gated_sum = 0.0;
    for (std::size_t b = 0; b < suite.size(); ++b) {
        auto gen = suite.makeGenerator(b);
        GsharePredictor pred = GsharePredictor::makeLargePaperConfig();
        OneLevelCounterConfidence est(IndexScheme::PcXorBhr,
                                      paper::kLargeCtEntries,
                                      CounterKind::Resetting,
                                      paper::kCounterMax, 0);
        std::vector<bool> low(est.numBuckets(), false);
        for (std::uint32_t v = 0; v <= low_max; ++v)
            low[v] = true;
        GatingConfig config;
        config.enableGating = gate;
        config.gateThreshold = threshold;
        config.branches = branches;
        const auto result =
            runPipelineGating(*gen, pred, est, low, config);
        ipc_sum += result.ipc();
        waste_sum += result.wastedFraction();
        gated_sum += result.cycles == 0
                         ? 0.0
                         : static_cast<double>(result.gatedCycles) /
                               result.cycles;
    }
    const auto n = static_cast<double>(suite.size());
    row.ipc = ipc_sum / n;
    row.wasted = waste_sum / n;
    row.gatedFrac = gated_sum / n;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Application: pipeline gating", env)) {
        return 0;
    }

    std::printf("=== Application: pipeline gating (speculation "
                "control) ===\n\n");
    const auto suite = env.makeSuite();
    const std::uint64_t branches =
        std::min<std::uint64_t>(env.branchesPerBenchmark, 1'000'000);

    std::printf("%-12s %8s %10s %12s\n", "policy", "IPC", "wasted%",
                "gated cyc%");
    CsvWriter csv(env.csvDir + "/app_pipeline_gating.csv");
    csv.writeRow({"policy", "ipc", "wasted_frac", "gated_frac"});

    // Sweep both knobs: which counter values count as low confidence
    // (low<=V) and how many unresolved low-confidence branches are
    // tolerated before fetch stalls (gate>N).
    std::vector<Row> rows;
    rows.push_back(runPolicy(suite, false, 0, branches));
    for (unsigned threshold : {0u, 1u, 2u})
        rows.push_back(runPolicy(suite, true, threshold, branches, 15));
    for (unsigned threshold : {0u, 1u})
        rows.push_back(runPolicy(suite, true, threshold, branches, 3));
    rows.push_back(runPolicy(suite, true, 0, branches, 1));

    const double base_ipc = rows[0].ipc;
    const double base_waste = rows[0].wasted;
    for (const auto &row : rows) {
        std::printf("%-12s %8.3f %9.2f%% %11.2f%%\n", row.label.c_str(),
                    row.ipc, 100.0 * row.wasted,
                    100.0 * row.gatedFrac);
        csv.writeRow({row.label, formatFixed(row.ipc, 4),
                      formatFixed(row.wasted, 5),
                      formatFixed(row.gatedFrac, 5)});
    }
    // Best energy-delay style row: maximize waste removed per IPC
    // point given up.
    const Row *best = &rows[1];
    double best_score = -1.0;
    for (std::size_t i = 1; i < rows.size(); ++i) {
        const double removed = 1.0 - rows[i].wasted / base_waste;
        const double cost =
            std::max(1e-3, 1.0 - rows[i].ipc / base_ipc);
        if (removed / cost > best_score) {
            best_score = removed / cost;
            best = &rows[i];
        }
    }
    std::printf("\nbest trade-off (%s): %.0f%% of the wrong-path work "
                "removed for %.1f%% IPC cost\n", best->label.c_str(),
                100.0 * (1.0 - best->wasted / base_waste),
                100.0 * (1.0 - best->ipc / base_ipc));
    std::printf("wrote %s/app_pipeline_gating.csv\n",
                env.csvDir.c_str());
    return 0;
}
