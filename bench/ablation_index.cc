/**
 * @file
 * Index-scheme ablation (paper Section 3.1's preliminary findings):
 * all eight index formations over the paper's one-level CT with ideal
 * reduction — including the claims the paper states without a figure:
 *  - "exclusive-ORing is more effective than concatenating",
 *  - "indexing with a global CIR is of little value — it gives low
 *    performance when used alone and typically reduces performance
 *    when added to the others".
 */

#include <cstdio>

#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Ablation: CT index schemes", env)) {
        return 0;
    }

    std::printf("=== Ablation: one-level CT index schemes (ideal "
                "reduction) ===\n\n");
    const std::vector<IndexScheme> schemes = {
        IndexScheme::Pc,
        IndexScheme::Bhr,
        IndexScheme::Gcir,
        IndexScheme::PcXorBhr,
        IndexScheme::PcXorGcir,
        IndexScheme::BhrXorGcir,
        IndexScheme::PcXorBhrXorGcir,
        IndexScheme::PcConcatBhr,
    };
    std::vector<EstimatorConfig> configs;
    for (auto scheme : schemes)
        configs.push_back(oneLevelIdealConfig(scheme));
    const auto result =
        runSuiteExperiment(env, largeGshareFactory(), configs);
    printMispredictionRates(result);

    std::vector<NamedCurve> curves;
    for (std::size_t i = 0; i < configs.size(); ++i)
        curves.push_back(compositeCurve(result, i, configs[i].label));
    printCoverageSummary(curves);

    const double xor_cov = curves[3].curve.mispredCoverageAt(0.2);
    const double concat_cov = curves[7].curve.mispredCoverageAt(0.2);
    const double gcir_cov = curves[2].curve.mispredCoverageAt(0.2);
    std::printf("\npaper claims checked at the 20%% point:\n");
    std::printf("  XOR (%.1f%%) vs concatenation (%.1f%%): %s\n",
                100.0 * xor_cov, 100.0 * concat_cov,
                xor_cov > concat_cov ? "XOR wins (as claimed)"
                                     : "UNEXPECTED");
    std::printf("  global CIR alone (%.1f%%): %s\n", 100.0 * gcir_cov,
                gcir_cov < xor_cov - 0.1
                    ? "of little value (as claimed)"
                    : "UNEXPECTED");

    writeCurvesCsv(env.csvDir + "/ablation_index.csv", curves);
    return 0;
}
