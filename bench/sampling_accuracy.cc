/**
 * @file
 * Sampled-vs-exact accuracy table: does statistical sampling keep its
 * error-bar promise?
 *
 * Runs the suite twice with identical benchmarks — once exactly
 * through the sweep engine (ground truth) and once through the
 * sampling engine at --sample-rate — and reports, per benchmark and
 * for the composite, the exact misprediction rate next to the sampled
 * estimate with its 95% confidence interval, whether the interval
 * contains the truth, and the replayed-records reduction factor the
 * estimate was bought at.
 *
 * With --check (the CI sampling-smoke contract) the binary exits
 * nonzero unless every benchmark CI and the composite CI contain
 * ground truth AND the suite-wide reduction is at least 5x.
 *
 *   ./build/bench/sampling_accuracy --fast --region-branches 2000
 *   ./build/bench/sampling_accuracy --fast --region-branches 2000 --check
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "metrics/operating_point.h"
#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    // --check is bench-local; peel it off before the shared parser.
    bool check = false;
    std::vector<const char *> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
            continue;
        }
        args.push_back(argv[i]);
    }
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(static_cast<int>(args.size()),
                                args.data(),
                                "sampled vs. exact replay accuracy "
                                "table (--check: fail unless every "
                                "95% CI contains ground truth and "
                                "reduction >= 5x)",
                                env)) {
        return 0;
    }

    const std::vector<SweepExperimentConfig> configs = {
        {"gshare+CIR",
         largeGshareFactory(),
         {oneLevelIdealConfig(IndexScheme::PcXorBhr)}},
    };

    std::printf("=== statistical sampling vs. exact replay ===\n\n");
    std::printf("sample rate %.0f%%, %u strata, %u subsamples, "
                "regions of %llu branches\n\n",
                100.0 * env.sampleRate, env.strata, env.subsamples,
                static_cast<unsigned long long>(env.regionBranches));

    const SweepSuiteResult exact =
        runSweepSuiteExperiment(env, configs);
    const SamplingRunResult sampled =
        runSampledSuiteExperiment(env, configs);

    const SuiteRunResult &truth = exact.perConfig[0];
    std::printf("%-12s %10s | %10s %18s %5s | %9s\n", "benchmark",
                "exact", "sampled", "95% CI", "in?", "reduction");
    bool all_contained = true;
    for (std::size_t b = 0; b < sampled.perBenchmark.size(); ++b) {
        const SamplingBenchmarkResult &bench =
            sampled.perBenchmark[b];
        const double exact_rate =
            truth.perBenchmark[b].mispredictRate;
        const IntervalEstimate &est =
            bench.perConfig[0].mispredictRate;
        const bool contained = est.contains(exact_rate);
        all_contained = all_contained && contained;
        std::printf("%-12s %9.3f%% | %9.3f%% [%7.3f%%,%7.3f%%] %5s "
                    "| %8.1fx\n",
                    bench.name.c_str(), 100.0 * exact_rate,
                    100.0 * est.mean, 100.0 * est.ciLow(),
                    100.0 * est.ciHigh(), contained ? "yes" : "NO",
                    bench.reductionFactor());
    }
    const double exact_composite = truth.compositeMispredictRate;
    const IntervalEstimate &composite_est =
        sampled.composite[0].mispredictRate;
    const bool composite_contained =
        composite_est.contains(exact_composite);
    std::printf("%-12s %9.3f%% | %9.3f%% [%7.3f%%,%7.3f%%] %5s "
                "| %8.1fx\n\n",
                "composite", 100.0 * exact_composite,
                100.0 * composite_est.mean,
                100.0 * composite_est.ciLow(),
                100.0 * composite_est.ciHigh(),
                composite_contained ? "yes" : "NO",
                sampled.reductionFactor());

    // Coverage at the paper's ~20% operating point: the same
    // containment story for a bucket-shaped (not scalar) statistic.
    const OperatingPoint exact_point =
        operatingPointAt20(truth.compositeEstimatorStats[0]);
    if (!sampled.composite[0].coverageAt20.empty()) {
        const IntervalEstimate &cov =
            sampled.composite[0].coverageAt20[0];
        std::printf("composite coverage@20%%: exact %.1f%%, sampled "
                    "%.1f%% [%.1f%%, %.1f%%]%s\n",
                    100.0 * exact_point.coverage, 100.0 * cov.mean,
                    100.0 * cov.ciLow(), 100.0 * cov.ciHigh(),
                    cov.contains(exact_point.coverage)
                        ? ""
                        : "  (outside CI)");
    }
    std::printf("replayed-records reduction: %.1fx  (%llu of %llu "
                "branches recorded)\n",
                sampled.reductionFactor(),
                static_cast<unsigned long long>(
                    sampled.recordedBranches),
                static_cast<unsigned long long>(
                    sampled.totalBranches));
    std::printf("wall clock: exact %.0f ms, sampled %.0f ms\n",
                exact.wallMs, sampled.wallMs);

    if (check) {
        bool ok = true;
        if (!all_contained || !composite_contained) {
            std::fprintf(stderr,
                         "CHECK FAILED: a 95%% CI does not contain "
                         "the exact-replay misprediction rate\n");
            ok = false;
        }
        if (sampled.reductionFactor() < 5.0) {
            std::fprintf(stderr,
                         "CHECK FAILED: reduction %.2fx < 5x\n",
                         sampled.reductionFactor());
            ok = false;
        }
        if (!ok)
            return 1;
        std::printf("CHECK OK: all CIs contain ground truth, "
                    "reduction %.1fx >= 5x\n",
                    sampled.reductionFactor());
    }
    return 0;
}
