/**
 * @file
 * Reproduces paper Fig. 10: small CIR tables holding resetting
 * counters, accessed with PC xor BHR, over the SMALL (4K-entry,
 * 12-bit-history) gshare predictor. Table sizes sweep 4096 down to
 * 128 entries.
 *
 * Paper reference points: the small predictor mispredicts 8.6% on IBS;
 * with an equal-size (4096-entry) confidence table, 75% of the
 * mispredictions are identified within 20% of the branches; aliasing
 * degrades performance gracefully as the table shrinks, because a
 * resetting counter amplifies interference (any aliased miss resets
 * the streak).
 */

#include <cstdio>

#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Fig. 10: small confidence tables",
                                env)) {
        return 0;
    }

    std::printf("=== Fig. 10: small CIR tables (resetting counters, "
                "4K gshare) ===\n\n");
    std::vector<EstimatorConfig> configs;
    for (std::size_t entries : {4096, 2048, 1024, 512, 256, 128}) {
        auto config = oneLevelCounterConfig(
            IndexScheme::PcXorBhr, CounterKind::Resetting, entries);
        config.label = std::to_string(entries);
        configs.push_back(std::move(config));
    }
    const auto result =
        runSuiteExperiment(env, smallGshareFactory(), configs);
    printMispredictionRates(result);
    std::printf("(paper: 8.6%% composite misprediction rate for the 4K "
                "gshare)\n\n");

    std::vector<NamedCurve> curves;
    for (std::size_t i = 0; i < configs.size(); ++i)
        curves.push_back(compositeCurve(result, i, configs[i].label));
    printCoverageSummary(curves);

    std::printf("\npaper: equal-size table (4096) identifies ~75%% of "
                "misses at 20%% of branches; measured %.0f%%\n\n",
                100.0 * curves[0].curve.mispredCoverageAt(0.2));

    std::puts(plotCurves("Fig. 10 — small CIR tables", curves).c_str());
    writeCurvesCsv(env.csvDir + "/fig10_small_tables.csv", curves);
    return 0;
}
