/**
 * @file
 * google-benchmark microbenchmarks: simulation throughput of the
 * predictors, confidence estimators, and the workload generator
 * (ns/branch figures that bound full-experiment run times).
 */

#include <benchmark/benchmark.h>

#include "confidence/one_level.h"
#include "confidence/two_level.h"
#include "obs/span.h"
#include "predictor/bimodal.h"
#include "predictor/gshare.h"
#include "predictor/history_register.h"
#include "sim/driver.h"
#include "workload/workload_generator.h"

namespace confsim {
namespace {

/** A reusable in-memory branch stream for the microbenchmarks. */
const std::vector<BranchRecord> &
sharedTrace()
{
    static const std::vector<BranchRecord> trace = [] {
        WorkloadGenerator gen(ibsProfile("groff"), 200000);
        std::vector<BranchRecord> records;
        records.reserve(200000);
        BranchRecord record;
        while (gen.next(record))
            records.push_back(record);
        return records;
    }();
    return trace;
}

void
BM_WorkloadGeneration(benchmark::State &state)
{
    WorkloadGenerator gen(ibsProfile("groff"), 1u << 30);
    BranchRecord record;
    for (auto _ : state) {
        gen.next(record);
        benchmark::DoNotOptimize(record);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadGeneration);

template <typename MakePredictor>
void
predictorLoop(benchmark::State &state, MakePredictor make)
{
    auto pred = make();
    const auto &trace = sharedTrace();
    std::size_t i = 0;
    for (auto _ : state) {
        const BranchRecord &r = trace[i];
        benchmark::DoNotOptimize(pred->predict(r.pc));
        pred->update(r.pc, r.taken);
        i = (i + 1) % trace.size();
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_Bimodal(benchmark::State &state)
{
    predictorLoop(state, [] {
        return std::make_unique<BimodalPredictor>(4096);
    });
}
BENCHMARK(BM_Bimodal);

void
BM_GshareLarge(benchmark::State &state)
{
    predictorLoop(state, [] {
        return std::make_unique<GsharePredictor>(
            GsharePredictor::makeLargePaperConfig());
    });
}
BENCHMARK(BM_GshareLarge);

template <typename MakeEstimator>
void
estimatorLoop(benchmark::State &state, MakeEstimator make)
{
    auto est = make();
    GsharePredictor pred = GsharePredictor::makeLargePaperConfig();
    HistoryRegister bhr(16);
    const auto &trace = sharedTrace();
    BranchContext ctx;
    std::size_t i = 0;
    for (auto _ : state) {
        const BranchRecord &r = trace[i];
        ctx.pc = r.pc;
        ctx.bhr = bhr.value();
        const bool correct = pred.predict(r.pc) == r.taken;
        benchmark::DoNotOptimize(est->bucketOf(ctx));
        est->update(ctx, correct, r.taken);
        pred.update(r.pc, r.taken);
        bhr.recordOutcome(r.taken);
        i = (i + 1) % trace.size();
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_OneLevelCir(benchmark::State &state)
{
    estimatorLoop(state, [] {
        return std::make_unique<OneLevelCirConfidence>(
            IndexScheme::PcXorBhr, 1 << 16, 16,
            CirReduction::RawPattern);
    });
}
BENCHMARK(BM_OneLevelCir);

void
BM_OneLevelResetting(benchmark::State &state)
{
    estimatorLoop(state, [] {
        return std::make_unique<OneLevelCounterConfidence>(
            IndexScheme::PcXorBhr, 1 << 16, CounterKind::Resetting,
            16, 0);
    });
}
BENCHMARK(BM_OneLevelResetting);

void
BM_TwoLevel(benchmark::State &state)
{
    estimatorLoop(state, [] {
        return std::make_unique<TwoLevelConfidence>(
            IndexScheme::PcXorBhr, 1 << 16, 16, SecondLevelIndex::Cir,
            16);
    });
}
BENCHMARK(BM_TwoLevel);

void
BM_ScopedSpanDisabled(benchmark::State &state)
{
    // The null-facade contract: with no tracer attached, a ScopedSpan
    // must cost a null test and nothing else (no clock reads, no
    // allocation) — this bounds the overhead instrumented hot paths
    // pay when --trace-out is absent.
    SpanTracer *tracer = nullptr;
    for (auto _ : state) {
        ScopedSpan span(tracer, "bench.disabled");
        benchmark::DoNotOptimize(tracer);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedSpanDisabled);

void
BM_FullDriver(benchmark::State &state)
{
    // End-to-end: generator + predictor + estimator per batch of
    // 100k branches.
    for (auto _ : state) {
        WorkloadGenerator gen(ibsProfile("jpeg"), 100000);
        GsharePredictor pred(4096, 12);
        OneLevelCounterConfidence est(IndexScheme::PcXorBhr, 4096,
                                      CounterKind::Resetting, 16, 0);
        SimulationDriver driver(pred, {&est});
        benchmark::DoNotOptimize(driver.run(gen));
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_FullDriver);

} // namespace
} // namespace confsim

BENCHMARK_MAIN();
