/**
 * @file
 * Reproduces paper Fig. 8: practical reduction functions on the best
 * one-level method (PC xor BHR indexing): ideal (profile-sorted raw
 * CIR patterns), ones counting, saturating 0..16 counters, and
 * resetting 0..16 counters. 64K gshare, IBS composite.
 *
 * Paper findings: ones counting falls short of ideal because it
 * weights old and recent mispredictions equally; saturating counters
 * inflate the max-count ("zero") bucket and cannot form low-confidence
 * sets beyond ~60% coverage; resetting counters track the ideal curve
 * closely with the same zero bucket and are the recommended
 * implementation.
 */

#include <cstdio>

#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Fig. 8: reduction functions", env)) {
        return 0;
    }

    std::printf("=== Fig. 8: reduction functions on the best one-level "
                "method ===\n\n");
    const std::vector<EstimatorConfig> configs = {
        oneLevelIdealConfig(IndexScheme::PcXorBhr),
        oneLevelOnesCountConfig(IndexScheme::PcXorBhr),
        oneLevelCounterConfig(IndexScheme::PcXorBhr,
                              CounterKind::Saturating),
        oneLevelCounterConfig(IndexScheme::PcXorBhr,
                              CounterKind::Resetting),
    };
    const auto result =
        runSuiteExperiment(env, largeGshareFactory(), configs);
    printMispredictionRates(result);

    std::vector<NamedCurve> curves;
    curves.push_back(compositeCurve(result, 0, "BHRxorPC (ideal)"));
    curves.push_back(compositeCurve(result, 1, "BHRxorPC.1Cnt"));
    curves.push_back(compositeCurve(result, 2, "BHRxorPC.Sat"));
    curves.push_back(compositeCurve(result, 3, "BHRxorPC.Reset"));
    printCoverageSummary(curves);

    // Max-bucket ("zero bucket") comparison — the paper's explanation
    // for the saturating counter's weakness.
    auto max_bucket_stats = [&result](std::size_t index,
                                      std::uint64_t bucket) {
        const auto &stats = result.compositeEstimatorStats[index];
        return std::pair<double, double>(
            100.0 * stats[bucket].refs / stats.totalRefs(),
            100.0 * stats[bucket].mispredicts /
                stats.totalMispredicts());
    };
    const auto sat = max_bucket_stats(2, 16);
    const auto reset = max_bucket_stats(3, 16);
    std::printf("\nmax-count bucket:   saturating %.1f%% refs / %.1f%% "
                "misses;   resetting %.1f%% refs / %.1f%% misses\n",
                sat.first, sat.second, reset.first, reset.second);
    std::printf("(the paper: the saturating max bucket 'contains more "
                "mispredicted branches')\n\n");

    // Storage: counters embed in the CT -> log-factor cheaper.
    auto ideal = configs[0].make();
    auto reset_est = configs[3].make();
    std::printf("storage: full CIRs %llu Kbit vs resetting counters "
                "%llu Kbit (%.1fx cheaper)\n\n",
                static_cast<unsigned long long>(ideal->storageBits() /
                                                1024),
                static_cast<unsigned long long>(
                    reset_est->storageBits() / 1024),
                static_cast<double>(ideal->storageBits()) /
                    reset_est->storageBits());

    std::puts(
        plotCurves("Fig. 8 — reduction functions (BHRxorPC)", curves)
            .c_str());
    writeCurvesCsv(env.csvDir + "/fig08_reduction.csv", curves);
    return 0;
}
