/**
 * @file
 * Estimator-design ablation: the paper's recommended resetting counter
 * against the design-space neighbours its Sections 1.1 and 6 point to:
 *
 *  - counter-strength confidence (the Smith-1981 style proposal the
 *    paper cites as prior work [9]),
 *  - the cross-product composite of the two (an "other possible
 *    method" of the kind Section 6 invites),
 *  - a three-class multi-level split (the generalization the paper
 *    explicitly defers: "one could divide the branches into multiple
 *    sets with a range of confidence levels").
 *
 * 64K gshare, IBS composite, ideal operating points read off each
 * estimator's own profiled buckets.
 */

#include <cstdio>

#include "confidence/composite_confidence.h"
#include "confidence/multi_level_signal.h"
#include "confidence/self_counter.h"
#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Ablation: estimator design space",
                                env)) {
        return 0;
    }

    std::printf("=== Ablation: resetting counter vs counter-strength "
                "vs composite ===\n\n");
    std::vector<EstimatorConfig> configs;
    configs.push_back(oneLevelCounterConfig(IndexScheme::PcXorBhr,
                                            CounterKind::Resetting));
    {
        EstimatorConfig config;
        config.label = "selfcnt3";
        config.make = [] {
            return std::make_unique<SelfCounterConfidence>(
                IndexScheme::Pc, paper::kLargeCtEntries, 3);
        };
        configs.push_back(std::move(config));
    }
    {
        EstimatorConfig config;
        config.label = "reset x selfcnt";
        config.make = [] {
            return std::make_unique<CompositeConfidence>(
                std::make_unique<OneLevelCounterConfidence>(
                    IndexScheme::PcXorBhr, paper::kLargeCtEntries,
                    CounterKind::Resetting, paper::kCounterMax, 0),
                std::make_unique<SelfCounterConfidence>(
                    IndexScheme::Pc, paper::kLargeCtEntries, 3));
        };
        configs.push_back(std::move(config));
    }

    const auto result =
        runSuiteExperiment(env, largeGshareFactory(), configs);
    printMispredictionRates(result);

    std::vector<NamedCurve> curves;
    for (std::size_t i = 0; i < configs.size(); ++i)
        curves.push_back(compositeCurve(result, i, configs[i].label));
    printCoverageSummary(curves);

    // Storage context.
    for (const auto &config : configs) {
        auto est = config.make();
        std::printf("  %-18s %6llu Kbit\n", config.label.c_str(),
                    static_cast<unsigned long long>(
                        est->storageBits() / 1024));
    }

    // Multi-level classes on the resetting counter: show the graded
    // sets the paper's generalization would expose to applications.
    std::printf("\nmulti-level split of the resetting counter "
                "(cuts at 5%% and 20%% of references):\n");
    {
        OneLevelCounterConfidence estimator(
            IndexScheme::PcXorBhr, paper::kLargeCtEntries,
            CounterKind::Resetting, paper::kCounterMax, 0);
        const MultiLevelConfidenceSignal signal(
            estimator, result.compositeEstimatorStats[0],
            {0.05, 0.20});
        const char *labels[] = {"lowest", "middle", "highest"};
        for (unsigned c = 0; c < signal.numClasses(); ++c) {
            const auto &summary = signal.classSummaries()[c];
            std::printf("  class %u (%s): %5.1f%% of predictions, "
                        "misprediction rate %5.2f%%\n",
                        c, labels[c], 100.0 * summary.refFraction,
                        100.0 * summary.mispredictRate);
        }
    }

    writeCurvesCsv(env.csvDir + "/ablation_estimators.csv", curves);
    return 0;
}
