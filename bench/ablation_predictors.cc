/**
 * @file
 * Predictor ablation: does confidence-estimation quality depend on the
 * underlying predictor? The paper fixes gshare and varies the
 * confidence hardware; this harness fixes the paper's recommended
 * confidence hardware (PC^BHR-indexed resetting counters) and varies
 * the predictor across the substrate library:
 * bimodal, gshare, gselect, agree, GAg, the McFarling hybrid, TAGE,
 * and the perceptron.
 *
 * For each: the composite misprediction rate, the coverage at the 20%
 * operating point, and the zero-bucket occupancy. The interesting
 * outcome is that coverage stays in a narrow band across predictors of
 * very different accuracy — correctness history predicts *where* a
 * predictor fails largely independent of which predictor it is (the
 * reason the paper's mechanisms transferred to later predictors).
 */

#include <cstdio>

#include "predictor/agree.h"
#include "predictor/bimodal.h"
#include "predictor/gselect.h"
#include "predictor/gshare.h"
#include "predictor/hybrid.h"
#include "predictor/two_level.h"
#include "sim/experiment.h"
#include "util/csv.h"
#include "util/string_utils.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(
            argc, argv, "Ablation: underlying predictor", env)) {
        return 0;
    }

    std::printf("=== Ablation: confidence quality across underlying "
                "predictors ===\n");
    std::printf("(PCxorBHR-indexed 0..16 resetting counters, 2^16 "
                "entries, throughout)\n\n");

    const std::vector<std::pair<std::string, PredictorFactory>>
        predictors = {
            {"bimodal-4K",
             [] { return std::make_unique<BimodalPredictor>(4096); }},
            {"gshare-4K",
             [] {
                 return std::make_unique<GsharePredictor>(4096, 12);
             }},
            {"gselect-4K",
             [] {
                 return std::make_unique<GselectPredictor>(4096, 6);
             }},
            {"agree-4K",
             [] { return std::make_unique<AgreePredictor>(4096, 12); }},
            {"GAg-h12",
             [] {
                 return std::make_unique<TwoLevelPredictor>(
                     TwoLevelScheme::GAg, 12);
             }},
            {"hybrid-4K",
             [] {
                 return std::make_unique<HybridPredictor>(
                     std::make_unique<BimodalPredictor>(4096),
                     std::make_unique<GsharePredictor>(4096, 12),
                     4096);
             }},
            {"tage", tageFactory()},
            {"perceptron", perceptronFactory()},
            {"gshare-64K", largeGshareFactory()},
        };

    // All nine predictors share one decode pass per benchmark: the
    // sweep engine broadcasts each trace batch to every configuration,
    // bit-exact with running runSuiteExperiment() nine times.
    std::vector<SweepExperimentConfig> sweep_configs;
    for (const auto &[label, factory] : predictors) {
        sweep_configs.push_back(
            {label, factory,
             {oneLevelCounterConfig(IndexScheme::PcXorBhr,
                                    CounterKind::Resetting)}});
    }
    const SweepSuiteResult sweep =
        runSweepSuiteExperiment(env, sweep_configs);

    std::printf("%-12s %10s %8s %14s %14s\n", "predictor", "mispred",
                "@20%", "zero-bkt refs", "zero-bkt miss");
    CsvWriter csv(env.csvDir + "/ablation_predictors.csv");
    csv.writeRow({"predictor", "mispredict_rate", "coverage_at_20",
                  "zero_bucket_refs", "zero_bucket_miss"});

    for (std::size_t i = 0; i < sweep.perConfig.size(); ++i) {
        const std::string &label = sweep.labels[i];
        const SuiteRunResult &result = sweep.perConfig[i];
        const auto curve = compositeCurve(result, 0, label);
        const auto &stats = result.compositeEstimatorStats[0];
        const double zb_refs =
            stats[paper::kCounterMax].refs / stats.totalRefs();
        const double zb_miss = stats[paper::kCounterMax].mispredicts /
                               stats.totalMispredicts();
        std::printf("%-12s %9.2f%% %7.1f%% %13.1f%% %13.1f%%\n",
                    label.c_str(),
                    100.0 * result.compositeMispredictRate,
                    100.0 * curve.curve.mispredCoverageAt(0.2),
                    100.0 * zb_refs, 100.0 * zb_miss);
        csv.writeRow(
            {label,
             formatFixed(result.compositeMispredictRate, 5),
             formatFixed(curve.curve.mispredCoverageAt(0.2), 5),
             formatFixed(zb_refs, 5), formatFixed(zb_miss, 5)});
    }
    std::printf("\n(the confidence mechanism's coverage band is "
                "narrow across predictors spanning a wide accuracy "
                "range — correctness history generalizes)\n");
    std::printf("wrote %s/ablation_predictors.csv\n",
                env.csvDir.c_str());
    return 0;
}
