/**
 * @file
 * Reproduces paper Fig. 5: one-level dynamic confidence methods with
 * the ideal (profile-sorted) reduction, indexing the 2^16-entry CIR
 * table with PC, global BHR, and PC xor BHR, plus the static method
 * for comparison. 64K gshare, IBS composite.
 *
 * Extended past the paper: the same figure now carries the two native
 * confidence signals the field moved to after 1996 — TAGE provider
 * confidence and perceptron margin confidence — each riding its own
 * predictor through the same one-decode-pass sweep, so the 1996 CIR
 * estimators and the modern built-ins share one set of axes.
 *
 * Paper reference points at 20% of dynamic branches: PC xor BHR -> 89%
 * of mispredictions, BHR -> 85%, PC -> 72%, static -> ~63%.
 */

#include <cstdio>

#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Fig. 5: one-level dynamic methods",
                                env)) {
        return 0;
    }

    std::printf("=== Fig. 5: one-level dynamic confidence (ideal "
                "reduction) ===\n\n");
    const std::vector<EstimatorConfig> configs = {
        oneLevelIdealConfig(IndexScheme::Pc),
        oneLevelIdealConfig(IndexScheme::Bhr),
        oneLevelIdealConfig(IndexScheme::PcXorBhr),
    };
    // One decode pass feeds the paper configuration and both native
    // families; per-config results are bit-exact with sequential runs.
    const std::vector<SweepExperimentConfig> sweep_configs = {
        {"gshare+CIR", largeGshareFactory(), configs},
        {"tage", tageFactory(), {tageProviderConfig()}},
        {"perceptron", perceptronFactory(), {perceptronMarginConfig()}},
    };
    const SweepSuiteResult sweep =
        runSweepSuiteExperiment(env, sweep_configs);
    const SuiteRunResult &result = sweep.perConfig[0];
    printMispredictionRates(result);

    std::vector<NamedCurve> curves;
    curves.push_back(staticCompositeCurve(result));
    for (std::size_t i = 0; i < configs.size(); ++i)
        curves.push_back(compositeCurve(result, i, configs[i].label));
    curves.push_back(compositeCurve(sweep.perConfig[1], 0,
                                    sweep_configs[1].estimators[0].label));
    curves.push_back(compositeCurve(sweep.perConfig[2], 0,
                                    sweep_configs[2].estimators[0].label));
    printCoverageSummary(curves);

    std::printf("\npaper @20%%: static 63, PC 72, BHR 85, PCxorBHR "
                "89\n");
    std::printf("ours  @20%%: static %.0f, PC %.0f, BHR %.0f, PCxorBHR "
                "%.0f, TAGE %.0f, perceptron %.0f\n\n",
                100.0 * curves[0].curve.mispredCoverageAt(0.2),
                100.0 * curves[1].curve.mispredCoverageAt(0.2),
                100.0 * curves[2].curve.mispredCoverageAt(0.2),
                100.0 * curves[3].curve.mispredCoverageAt(0.2),
                100.0 * curves[4].curve.mispredCoverageAt(0.2),
                100.0 * curves[5].curve.mispredCoverageAt(0.2));

    // Zero-bucket characteristics (paper: ~80% of predictions read the
    // all-zeros CIR, carrying 12-15% of the mispredictions).
    const auto &stats = result.compositeEstimatorStats[2];
    std::printf("PCxorBHR zero bucket: %.1f%% of refs, %.1f%% of "
                "mispredicts (paper ~80%% / 12-15%%)\n\n",
                100.0 * stats[0].refs / stats.totalRefs(),
                100.0 * stats[0].mispredicts /
                    stats.totalMispredicts());

    std::puts(plotCurves("Fig. 5 — one-level methods (ideal reduction)",
                         curves)
                  .c_str());
    writeCurvesCsv(env.csvDir + "/fig05_one_level.csv", curves);
    return 0;
}
