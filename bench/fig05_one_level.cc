/**
 * @file
 * Reproduces paper Fig. 5: one-level dynamic confidence methods with
 * the ideal (profile-sorted) reduction, indexing the 2^16-entry CIR
 * table with PC, global BHR, and PC xor BHR, plus the static method
 * for comparison. 64K gshare, IBS composite.
 *
 * Paper reference points at 20% of dynamic branches: PC xor BHR -> 89%
 * of mispredictions, BHR -> 85%, PC -> 72%, static -> ~63%.
 */

#include <cstdio>

#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Fig. 5: one-level dynamic methods",
                                env)) {
        return 0;
    }

    std::printf("=== Fig. 5: one-level dynamic confidence (ideal "
                "reduction) ===\n\n");
    const std::vector<EstimatorConfig> configs = {
        oneLevelIdealConfig(IndexScheme::Pc),
        oneLevelIdealConfig(IndexScheme::Bhr),
        oneLevelIdealConfig(IndexScheme::PcXorBhr),
    };
    const auto result =
        runSuiteExperiment(env, largeGshareFactory(), configs);
    printMispredictionRates(result);

    std::vector<NamedCurve> curves;
    curves.push_back(staticCompositeCurve(result));
    for (std::size_t i = 0; i < configs.size(); ++i)
        curves.push_back(compositeCurve(result, i, configs[i].label));
    printCoverageSummary(curves);

    std::printf("\npaper @20%%: static 63, PC 72, BHR 85, PCxorBHR "
                "89\n");
    std::printf("ours  @20%%: static %.0f, PC %.0f, BHR %.0f, PCxorBHR "
                "%.0f\n\n",
                100.0 * curves[0].curve.mispredCoverageAt(0.2),
                100.0 * curves[1].curve.mispredCoverageAt(0.2),
                100.0 * curves[2].curve.mispredCoverageAt(0.2),
                100.0 * curves[3].curve.mispredCoverageAt(0.2));

    // Zero-bucket characteristics (paper: ~80% of predictions read the
    // all-zeros CIR, carrying 12-15% of the mispredictions).
    const auto &stats = result.compositeEstimatorStats[2];
    std::printf("PCxorBHR zero bucket: %.1f%% of refs, %.1f%% of "
                "mispredicts (paper ~80%% / 12-15%%)\n\n",
                100.0 * stats[0].refs / stats.totalRefs(),
                100.0 * stats[0].mispredicts /
                    stats.totalMispredicts());

    std::puts(plotCurves("Fig. 5 — one-level methods (ideal reduction)",
                         curves)
                  .c_str());
    writeCurvesCsv(env.csvDir + "/fig05_one_level.csv", curves);
    return 0;
}
