/**
 * @file
 * Reproduces paper Fig. 11: the effect of CIR-table initialization on
 * the best one-level method with ideal reduction (2^16-entry CT, 64K
 * gshare): all ones, all zeros, random, and "lastbit" (only the
 * oldest CIR bit set).
 *
 * Paper findings: all-ones and random perform similarly; all-zeros is
 * clearly worse (startup mispredictions land in the high-confidence
 * zero bucket); lastbit matches the non-zero initializations,
 * suggesting cheap context-switch handling.
 */

#include <cstdio>

#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Fig. 11: CT initialization effects",
                                env)) {
        return 0;
    }

    std::printf("=== Fig. 11: effect of CT initial state ===\n\n");
    const std::vector<std::pair<const char *, CtInit>> inits = {
        {"one", CtInit::Ones},
        {"zero", CtInit::Zeros},
        {"lastbit", CtInit::LastBit},
        {"random", CtInit::Random},
    };
    std::vector<EstimatorConfig> configs;
    for (const auto &[name, init] : inits) {
        auto config = oneLevelIdealConfig(IndexScheme::PcXorBhr,
                                          paper::kLargeCtEntries,
                                          paper::kCirBits, init);
        config.label = name;
        configs.push_back(std::move(config));
    }
    const auto result =
        runSuiteExperiment(env, largeGshareFactory(), configs);
    printMispredictionRates(result);

    std::vector<NamedCurve> curves;
    for (std::size_t i = 0; i < configs.size(); ++i)
        curves.push_back(compositeCurve(result, i, configs[i].label));
    printCoverageSummary(curves);

    std::puts(plotCurves("Fig. 11 — CT initialization", curves)
                  .c_str());
    writeCurvesCsv(env.csvDir + "/fig11_init.csv", curves);
    return 0;
}
