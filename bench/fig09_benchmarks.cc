/**
 * @file
 * Reproduces paper Fig. 9: per-benchmark confidence curves for the
 * best (jpeg) and worst (gcc) IBS benchmarks under the best one-level
 * method with ideal reduction — plus the per-benchmark table for the
 * whole suite so the best/worst claim is auditable.
 *
 * Extended past the paper: the figure also carries the same two
 * benchmarks under TAGE provider confidence and perceptron margin
 * confidence, so the per-benchmark spread of the modern built-in
 * signals is visible next to the 1996 CIR estimator's.
 *
 * Paper observations: considerable variation between benchmarks; the
 * zero buckets hold similar *fractions of mispredictions* but very
 * different *numbers of branches*.
 */

#include <cstdio>

#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Fig. 9: best/worst benchmarks", env)) {
        return 0;
    }

    std::printf("=== Fig. 9: per-benchmark variation (jpeg vs gcc) "
                "===\n\n");
    const std::vector<EstimatorConfig> configs = {
        oneLevelIdealConfig(IndexScheme::PcXorBhr),
    };
    const std::vector<SweepExperimentConfig> sweep_configs = {
        {"gshare+CIR", largeGshareFactory(), configs},
        {"tage", tageFactory(), {tageProviderConfig()}},
        {"perceptron", perceptronFactory(), {perceptronMarginConfig()}},
    };
    const SweepSuiteResult sweep =
        runSweepSuiteExperiment(env, sweep_configs);
    const SuiteRunResult &result = sweep.perConfig[0];
    printMispredictionRates(result);

    // Per-benchmark curve summary.
    std::printf("%-12s %8s %10s %14s %14s\n", "benchmark", "rate",
                "@20%", "zero-bkt refs", "zero-bkt miss");
    std::vector<NamedCurve> figure_curves;
    for (const auto &bench : result.perBenchmark) {
        const auto curve =
            ConfidenceCurve::fromBucketStats(bench.estimatorStats[0]);
        const auto &stats = bench.estimatorStats[0];
        std::printf("%-12s %7.2f%% %9.1f%% %13.1f%% %13.1f%%\n",
                    bench.name.c_str(), 100.0 * bench.mispredictRate,
                    100.0 * curve.mispredCoverageAt(0.2),
                    100.0 * stats[0].refs / stats.totalRefs(),
                    100.0 * stats[0].mispredicts /
                        stats.totalMispredicts());
        if (bench.name == "jpeg" || bench.name == "real_gcc")
            figure_curves.push_back({bench.name, curve});
    }

    // The same two benchmarks under the native confidence signals.
    const char *const kNativeTags[] = {"tage", "perc"};
    for (std::size_t c = 1; c < sweep.perConfig.size(); ++c) {
        for (const auto &bench : sweep.perConfig[c].perBenchmark) {
            if (bench.name != "jpeg" && bench.name != "real_gcc")
                continue;
            figure_curves.push_back(
                {bench.name + "-" + kNativeTags[c - 1],
                 ConfidenceCurve::fromBucketStats(
                     bench.estimatorStats[0])});
        }
    }

    std::printf("\n");
    printCoverageSummary(figure_curves);
    std::puts(plotCurves("Fig. 9 — best (jpeg) vs worst (gcc)",
                         figure_curves)
                  .c_str());
    writeCurvesCsv(env.csvDir + "/fig09_benchmarks.csv",
                   figure_curves);
    return 0;
}
