/**
 * @file
 * The paper-extending headline table: where do the 1996 CIR estimators
 * beat — and lose to — the confidence signals modern predictors give
 * away for free?
 *
 * Three configurations ride one decode pass per benchmark: the paper's
 * 64K gshare with the best one-level CIR estimator (PC xor BHR, ideal
 * reduction), TAGE with its provider-strength confidence, and a
 * perceptron with its |margin|-vs-theta confidence. For each benchmark
 * and each signal the table reports the predictor's misprediction
 * rate, the misprediction coverage of a ~20%-of-branches low set
 * (paper Figs. 5-9 operating point), and the PVN of that set (the
 * Grunwald-style P(mispredict | low) from
 * metrics/classification_metrics.h) — then names the winner per row.
 */

#include <cstdio>
#include <vector>

#include "metrics/operating_point.h"
#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "CIR vs. native confidence headline "
                                "table",
                                env)) {
        return 0;
    }

    std::printf("=== CIR estimators vs. native predictor confidence "
                "===\n\n");
    const std::vector<SweepExperimentConfig> sweep_configs = {
        {"gshare+CIR",
         largeGshareFactory(),
         {oneLevelIdealConfig(IndexScheme::PcXorBhr)}},
        {"tage", tageFactory(), {tageProviderConfig()}},
        {"perceptron", perceptronFactory(), {perceptronMarginConfig()}},
    };
    const SweepSuiteResult sweep =
        runSweepSuiteExperiment(env, sweep_configs);

    std::printf("per-benchmark, at a ~20%%-of-branches low-confidence "
                "set:\n");
    std::printf("  cov  = %% of mispredictions captured by the set\n");
    std::printf("  pvn  = %% of the set that actually mispredicts\n\n");
    std::printf("%-12s", "benchmark");
    for (const auto &config : sweep_configs)
        std::printf(" | %-21.21s", config.label.c_str());
    std::printf(" | best cov\n");
    std::printf("%-12s", "");
    for (std::size_t c = 0; c < sweep_configs.size(); ++c)
        std::printf(" |  rate     cov    pvn");
    std::printf(" |\n");

    const std::size_t benchmarks =
        sweep.perConfig[0].perBenchmark.size();
    std::vector<int> wins(sweep_configs.size(), 0);
    for (std::size_t b = 0; b < benchmarks; ++b) {
        std::printf("%-12s",
                    sweep.perConfig[0].perBenchmark[b].name.c_str());
        std::size_t best = 0;
        double best_cov = -1.0;
        std::vector<OperatingPoint> points;
        for (std::size_t c = 0; c < sweep.perConfig.size(); ++c) {
            const auto &bench = sweep.perConfig[c].perBenchmark[b];
            const OperatingPoint point =
                operatingPointAt20(bench.estimatorStats[0]);
            points.push_back(point);
            if (point.coverage > best_cov) {
                best_cov = point.coverage;
                best = c;
            }
            std::printf(" | %5.2f%% %6.1f%% %5.1f%%",
                        100.0 * bench.mispredictRate,
                        100.0 * point.coverage, 100.0 * point.pvn);
        }
        ++wins[best];
        std::printf(" | %s\n", sweep_configs[best].label.c_str());
    }

    std::printf("\ncomposite (suite-wide, equal weight):\n");
    std::vector<NamedCurve> curves;
    for (std::size_t c = 0; c < sweep.perConfig.size(); ++c) {
        const OperatingPoint point = operatingPointAt20(
            sweep.perConfig[c].compositeEstimatorStats[0]);
        std::printf("  %-11s cov %.1f%%  pvn %.1f%% (low set %.1f%% of "
                    "branches)\n",
                    sweep_configs[c].label.c_str(),
                    100.0 * point.coverage, 100.0 * point.pvn,
                    100.0 * point.lowFraction);
        curves.push_back(
            compositeCurve(sweep.perConfig[c], 0,
                           c == 0 ? "PCxorBHR"
                                  : sweep_configs[c]
                                        .estimators[0]
                                        .label));
    }
    for (std::size_t c = 0; c < wins.size(); ++c) {
        std::printf("  %-11s best coverage on %d/%zu benchmarks\n",
                    sweep_configs[c].label.c_str(), wins[c],
                    benchmarks);
    }

    std::printf("\n");
    printCoverageSummary(curves);
    writeCurvesCsv(env.csvDir + "/native_confidence.csv", curves);
    return 0;
}
