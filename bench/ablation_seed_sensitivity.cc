/**
 * @file
 * Seed-sensitivity study: the synthetic-workload substitution's
 * robustness check. Every conclusion in EXPERIMENTS.md is derived from
 * one draw of the synthetic benchmark programs; this harness redraws
 * the entire suite N times (different CFGs, same profile statistics)
 * and reports the spread of the headline metrics:
 *
 *  - composite gshare-64K misprediction rate,
 *  - ideal one-level PCxorBHR coverage at the 20% operating point,
 *  - resetting-counter coverage at the same point,
 *  - the PCxorBHR-vs-PC ordering margin.
 *
 * Small standard deviations (and an ordering that never flips) mean
 * the paper-shape reproductions are properties of the workload
 * *statistics*, not of one lucky program draw.
 */

#include <cmath>
#include <cstdio>

#include "sim/experiment.h"
#include "util/csv.h"
#include "util/running_stats.h"
#include "util/string_utils.h"

using namespace confsim;

namespace {

struct Draw
{
    double mispredictRate = 0.0;
    double idealCoverage = 0.0;
    double resetCoverage = 0.0;
    double xorMinusPc = 0.0;
};

Draw
runDraw(std::uint64_t seed_offset, std::uint64_t branches)
{
    // Redraw every benchmark program by shifting its seed; all other
    // profile statistics are unchanged.
    std::vector<BenchmarkProfile> profiles = ibsProfiles();
    for (auto &profile : profiles)
        profile.seed += seed_offset * 1000;

    std::vector<EstimatorConfig> configs = {
        oneLevelIdealConfig(IndexScheme::Pc),
        oneLevelIdealConfig(IndexScheme::PcXorBhr),
        oneLevelCounterConfig(IndexScheme::PcXorBhr,
                              CounterKind::Resetting),
    };

    DriverOptions options;
    options.profileStatic = false;
    EstimatorSetFactory make_estimators = [&configs] {
        std::vector<std::unique_ptr<ConfidenceEstimator>> out;
        for (const auto &config : configs)
            out.push_back(config.make());
        return out;
    };

    // SuiteRunner resolves canonical profiles by name, so drive the
    // shifted profiles directly with the core driver + compositing.
    Draw draw;
    std::vector<BucketStats> composites;
    for (std::size_t e = 0; e < configs.size(); ++e)
        composites.emplace_back(configs[e].make()->numBuckets());
    double rate_sum = 0.0;
    for (const auto &profile : profiles) {
        WorkloadGenerator gen(profile, branches);
        auto predictor = largeGshareFactory()();
        auto estimators = make_estimators();
        std::vector<ConfidenceEstimator *> raw;
        for (auto &est : estimators)
            raw.push_back(est.get());
        SimulationDriver driver(*predictor, raw, options);
        const auto result = driver.run(gen);
        rate_sum += result.mispredictRate();
        for (std::size_t e = 0; e < configs.size(); ++e) {
            composites[e].addWeighted(
                result.estimatorStats[e],
                1e6 / result.estimatorStats[e].totalRefs());
        }
    }
    draw.mispredictRate = rate_sum / profiles.size();
    const double pc = ConfidenceCurve::fromBucketStats(composites[0])
                          .mispredCoverageAt(0.20);
    draw.idealCoverage =
        ConfidenceCurve::fromBucketStats(composites[1])
            .mispredCoverageAt(0.20);
    draw.resetCoverage =
        ConfidenceCurve::fromBucketStats(composites[2])
            .mispredCoverageAt(0.20);
    draw.xorMinusPc = draw.idealCoverage - pc;
    return draw;
}

void
report(const char *label, const std::vector<double> &values,
       CsvWriter &csv)
{
    RunningStats stats;
    for (double v : values)
        stats.add(v);
    std::printf("%-28s mean %7.3f  sd %6.3f  range [%.3f, %.3f]\n",
                label, stats.mean(), stats.stddev(), stats.min(),
                stats.max());
    csv.writeRow({label, formatFixed(stats.mean(), 5),
                  formatFixed(stats.stddev(), 5),
                  formatFixed(stats.min(), 5),
                  formatFixed(stats.max(), 5)});
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(
            argc, argv, "Ablation: workload seed sensitivity", env)) {
        return 0;
    }
    const unsigned draws = env.fullSuite ? 5 : 2;
    const std::uint64_t branches =
        std::min<std::uint64_t>(env.branchesPerBenchmark, 1'000'000);

    std::printf("=== Ablation: seed sensitivity (%u suite redraws, "
                "%llu branches/benchmark) ===\n\n",
                draws, static_cast<unsigned long long>(branches));

    std::vector<double> rates;
    std::vector<double> ideals;
    std::vector<double> resets;
    std::vector<double> margins;
    for (unsigned d = 0; d < draws; ++d) {
        const Draw draw = runDraw(d, branches);
        std::printf("draw %u: rate %.2f%%, ideal@20 %.1f%%, reset@20 "
                    "%.1f%%, xor-pc margin %.1f\n",
                    d, 100.0 * draw.mispredictRate,
                    100.0 * draw.idealCoverage,
                    100.0 * draw.resetCoverage,
                    100.0 * draw.xorMinusPc);
        rates.push_back(100.0 * draw.mispredictRate);
        ideals.push_back(100.0 * draw.idealCoverage);
        resets.push_back(100.0 * draw.resetCoverage);
        margins.push_back(100.0 * draw.xorMinusPc);
    }

    std::printf("\n");
    CsvWriter csv(env.csvDir + "/ablation_seed_sensitivity.csv");
    csv.writeRow({"metric", "mean", "sd", "min", "max"});
    report("mispredict rate (%)", rates, csv);
    report("ideal PCxorBHR @20 (%)", ideals, csv);
    report("resetting @20 (%)", resets, csv);
    report("PCxorBHR - PC margin (pts)", margins, csv);

    bool ordering_holds = true;
    for (double margin : margins)
        ordering_holds = ordering_holds && margin > 0.0;
    std::printf("\nPCxorBHR > PC in every draw: %s\n",
                ordering_holds ? "yes" : "NO — investigate");
    std::printf("wrote %s/ablation_seed_sensitivity.csv\n",
                env.csvDir.c_str());
    return 0;
}
