/**
 * @file
 * Selective dual-path execution study (paper Section 1 application 1;
 * Section 6: "if we fork a dual thread following 20 percent of the
 * conditional branch predictions, we can capture over 80 percent of
 * the mispredictions").
 *
 * Sweeps the resetting-counter confidence threshold over the IBS
 * suite, reporting fork rate, misprediction coverage, and the
 * cost-model speedup, with a blind-forking baseline (fork on every
 * prediction when the slot is free) for contrast.
 */

#include <cstdio>

#include "apps/dual_path.h"
#include "predictor/gshare.h"
#include "sim/experiment.h"
#include "util/csv.h"
#include "util/string_utils.h"

using namespace confsim;

namespace {

struct SweepRow
{
    std::string label;
    double forkRate = 0.0;
    double coverage = 0.0;
    double speedup = 0.0;
};

SweepRow
runThreshold(const BenchmarkSuite &suite, std::uint64_t threshold,
             bool blind, unsigned fork_slots = 1)
{
    SweepRow row;
    row.label = blind ? "blind" : "reset<=" + std::to_string(threshold);
    if (fork_slots != 1)
        row.label += " x" + std::to_string(fork_slots);
    double fork_sum = 0.0;
    double cover_sum = 0.0;
    double base_sum = 0.0;
    double dual_sum = 0.0;
    for (std::size_t b = 0; b < suite.size(); ++b) {
        auto gen = suite.makeGenerator(b);
        GsharePredictor pred =
            GsharePredictor::makeLargePaperConfig();
        OneLevelCounterConfidence est(IndexScheme::PcXorBhr,
                                      paper::kLargeCtEntries,
                                      CounterKind::Resetting,
                                      paper::kCounterMax, 0);
        std::vector<bool> low(est.numBuckets(), blind);
        if (!blind) {
            for (std::uint64_t v = 0; v <= threshold; ++v)
                low[v] = true;
        }
        DualPathConfig config;
        config.maxForks = fork_slots;
        const auto result = runDualPath(*gen, pred, est, low, config);
        fork_sum += result.forkRate();
        cover_sum += result.coverage();
        base_sum += result.baselineCycles;
        dual_sum += result.dualPathCycles;
    }
    const auto n = static_cast<double>(suite.size());
    row.forkRate = fork_sum / n;
    row.coverage = cover_sum / n;
    row.speedup = base_sum / dual_sum;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Application: selective dual-path "
                                "execution",
                                env)) {
        return 0;
    }

    std::printf("=== Application 1: selective dual-path execution "
                "===\n\n");
    const auto suite = env.makeSuite();

    std::printf("%-12s %10s %10s %9s\n", "policy", "fork-rate",
                "coverage", "speedup");
    CsvWriter csv(env.csvDir + "/app_dual_path.csv");
    csv.writeRow({"policy", "fork_rate", "coverage", "speedup"});

    std::vector<SweepRow> rows;
    for (std::uint64_t threshold : {0u, 1u, 3u, 7u, 15u})
        rows.push_back(runThreshold(suite, threshold, false));
    // Eager-execution-style hardware: more simultaneous fork slots.
    rows.push_back(runThreshold(suite, 15, false, 2));
    rows.push_back(runThreshold(suite, 15, false, 4));
    rows.push_back(runThreshold(suite, 0, true));

    for (const auto &row : rows) {
        std::printf("%-12s %9.1f%% %9.1f%% %8.3fx\n", row.label.c_str(),
                    100.0 * row.forkRate, 100.0 * row.coverage,
                    row.speedup);
        csv.writeRow({row.label, formatFixed(row.forkRate, 4),
                      formatFixed(row.coverage, 4),
                      formatFixed(row.speedup, 4)});
    }
    std::printf("\npaper Section 6: forking after ~20%% of predictions "
                "captures >80%% of mispredictions.\n");
    std::printf("wrote %s/app_dual_path.csv\n", env.csvDir.c_str());
    return 0;
}
