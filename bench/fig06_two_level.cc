/**
 * @file
 * Reproduces paper Fig. 6: two-level dynamic confidence methods (ideal
 * reduction on the level-2 CIR), with the paper's three variants:
 *   PC -> CIR, PCxorBHR -> CIR, PCxorBHR -> CIRxorPCxorBHR,
 * plus the static curve. 64K gshare, IBS composite.
 *
 * Paper finding: the best two-level method indexes level 1 with
 * PC xor BHR and level 2 with the CIR alone.
 */

#include <cstdio>

#include "sim/experiment.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    ExperimentEnv env;
    if (!ExperimentEnv::fromCli(argc, argv,
                                "Fig. 6: two-level dynamic methods",
                                env)) {
        return 0;
    }

    std::printf("=== Fig. 6: two-level dynamic confidence (ideal "
                "reduction) ===\n\n");
    const std::vector<EstimatorConfig> configs = {
        twoLevelConfig(IndexScheme::Pc, SecondLevelIndex::Cir),
        twoLevelConfig(IndexScheme::PcXorBhr, SecondLevelIndex::Cir),
        twoLevelConfig(IndexScheme::PcXorBhr,
                       SecondLevelIndex::CirXorPcXorBhr),
    };
    const auto result =
        runSuiteExperiment(env, largeGshareFactory(), configs);
    printMispredictionRates(result);

    std::vector<NamedCurve> curves;
    curves.push_back(staticCompositeCurve(result));
    for (std::size_t i = 0; i < configs.size(); ++i)
        curves.push_back(compositeCurve(result, i, configs[i].label));
    printCoverageSummary(curves);

    std::puts(plotCurves("Fig. 6 — two-level methods (ideal reduction)",
                         curves)
                  .c_str());
    writeCurvesCsv(env.csvDir + "/fig06_two_level.csv", curves);
    return 0;
}
