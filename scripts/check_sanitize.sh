#!/usr/bin/env bash
# Build and run the tier-1 test suite under ASan + UBSan so the trace
# I/O error paths and the suite-runner fault handling are exercised
# with memory checking. Usage: scripts/check_sanitize.sh [ctest args].
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-sanitize
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . \
    -DCONFSIM_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS"

# halt_on_error so a sanitizer report fails the ctest run loudly.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"
