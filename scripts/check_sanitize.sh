#!/usr/bin/env bash
# Build and run tests under a sanitizer.
#
# Usage: scripts/check_sanitize.sh [address|thread] [ctest args]
#
#   address (default)  ASan + UBSan over the full tier-1 suite — the
#                      trace I/O error paths and suite-runner fault
#                      handling with memory checking.
#   thread             TSan over the concurrency-heavy suites: the
#                      sweep differential harness and the chaos tests,
#                      so fault injection, cancellation, and fail-fast
#                      teardown are checked for data races — plus the
#                      TAGE/perceptron predictor shard, whose shadow
#                      replicas ride every sweep shard.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=address
if [[ $# -gt 0 && ( "$1" == "address" || "$1" == "thread" ) ]]; then
    MODE="$1"
    shift
fi

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [[ "$MODE" == "thread" ]]; then
    BUILD_DIR=build-tsan
else
    BUILD_DIR=build-sanitize
fi

cmake -B "$BUILD_DIR" -S . \
    -DCONFSIM_SANITIZE="$MODE" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS"

# halt_on_error so a sanitizer report fails the ctest run loudly.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

if [[ "$MODE" == "thread" && $# -eq 0 ]]; then
    # Default TSan scope: the tests that actually exercise threads,
    # plus the predictor property wall (TAGE/perceptron state is
    # replicated into every sweep shard).
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
        -R 'SweepDifferential|Chaos|Tage|Perceptron'
else
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"
fi
