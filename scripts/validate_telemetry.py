#!/usr/bin/env python3
"""Schema validation for confsim telemetry artifacts.

Two artifact kinds are validated (both documented in
docs/observability.md):

  events JSONL   (--jsonl, the default)
      One JSON object per line. Line 1 must be the run manifest
      (type "manifest", schema "confsim-telemetry-v1"); every later
      line is an event with a string "type" and a numeric, monotonic
      non-negative "t_ms". Known event types are checked for their
      required fields.

  BENCH report   (--bench)
      A single JSON object with schema "confsim-bench-v1", an ISO
      date, build provenance, and a non-empty "results" array of
      {name, branches, wall_ms, ns_per_branch}.

A resumed run can additionally be checked against the run it resumed
(--resume-of): both manifests must describe the same simulation input
— identical benchmark (name, seed, trace_checksum) lists — otherwise
the "resume" silently simulated a different trace and its bit-exactness
guarantee is meaningless.

Usage:
    validate_telemetry.py run.jsonl [more.jsonl ...]
    validate_telemetry.py --bench BENCH_2026-08-06.json
    validate_telemetry.py --resume-of original.jsonl resumed.jsonl

Exits 0 when every file validates, 1 on the first violation. Stdlib
only — safe to run anywhere CI has a python3.
"""

import argparse
import json
import re
import sys

MANIFEST_SCHEMA = "confsim-telemetry-v1"
BENCH_SCHEMA = "confsim-bench-v1"

# Required fields per event type; unknown event types are allowed
# (the stream is extensible) but known ones must be complete.
EVENT_REQUIRED_FIELDS = {
    "suite_run_started": ["benchmarks", "error_mode", "max_attempts"],
    "suite_run_finished": ["wall_ms", "degraded", "failed_benchmarks"],
    "benchmark_started": ["benchmark"],
    "benchmark_finished": [
        "benchmark", "wall_ms", "attempts", "branches", "mispredicts",
        "mispredict_rate",
    ],
    "benchmark_retry": ["benchmark", "attempt", "error"],
    "watchdog_timeout": ["benchmark", "error"],
    "driver_run": [
        "benchmark", "branches", "measured_branches",
        "warmup_branches", "mispredicts", "mispredict_rate",
        "wall_ms", "ns_per_branch",
    ],
    "context_switch_flush": ["benchmark", "at_branch"],
    "estimator_update_cost": [
        "benchmark", "estimator", "samples", "mean_ns",
    ],
    # fault_injected comes in two shapes, dispatched on "kind" in
    # validate_event: trace-source injection carries the record index,
    # plan-based injection (kind "plan.<site>", fault/fault_plan.h)
    # carries the action/config/occurrence that fired.
    "fault_injected": ["benchmark", "kind"],
    "sweep_config_failed": [
        "benchmark", "config", "at_branch", "category", "error",
    ],
    "checkpoint_write_failed": ["benchmark", "at_branch", "error"],
    "corrupt_chunk_skipped": [
        "benchmark", "what", "chunk", "dropped_records",
    ],
    "checkpoint_written": [
        "benchmark", "generation", "at_branch", "bytes",
    ],
    "checkpoint_restored": ["benchmark", "generation", "at_branch"],
    "checkpoint_corrupt": ["benchmark", "generation", "error"],
    "sweep_run_started": [
        "benchmark", "configs", "threads", "batch_size",
        "decode_ahead", "resumed",
    ],
    "sweep_run_finished": [
        "benchmark", "configs", "threads", "records", "branches",
        "batches", "wall_ms", "decode_stall_ms",
        "ns_per_branch_update", "checkpoints_written",
    ],
    "sweep_config_finished": [
        "benchmark", "config", "branches", "mispredicts",
        "mispredict_rate", "context_switches",
    ],
    "metrics_snapshot": [],
    # Statistical sampling (sim/sampling_engine.h): one summary per
    # sampled suite run with the estimate provenance (rate/subsample
    # count) and the replayed-records reduction the estimates cost.
    "sampling_run_finished": [
        "benchmarks", "configs", "sample_rate", "subsamples",
        "total_branches", "recorded_branches", "reduction",
        "composite_mispredict_rate", "wall_ms",
    ],
    # Sweep-service lifecycle (serve/sweep_service.h): one admitted/
    # rejected per submit, started/finished-or-failed per admitted
    # job, and exactly one service_drained summary per service.
    "job_admitted": ["job", "tenant", "label", "queue_depth"],
    "job_rejected": ["tenant", "label", "reason", "category"],
    "job_started": ["job", "tenant", "label", "queue_ms"],
    "job_finished": [
        "job", "tenant", "label", "run_ms", "configs", "degraded",
    ],
    "job_failed": [
        "job", "tenant", "label", "state", "error", "category",
        "checkpointed",
    ],
    "service_drained": [
        "mode", "submitted", "admitted", "rejected", "finished",
        "failed", "cancelled", "drained",
    ],
    "span_summary": ["path", "events", "threads", "dropped"],
    "branch_profile_written": [
        "path", "format", "branches", "executions", "mispredictions",
    ],
}

MANIFEST_REQUIRED = [
    "schema", "tool", "suite", "benchmarks", "predictor",
    "estimators", "build_type", "compiler", "cxx_standard",
]


class ValidationError(Exception):
    pass


def fail(path, where, message):
    raise ValidationError(f"{path}:{where}: {message}")


def validate_manifest(path, obj):
    for key in MANIFEST_REQUIRED:
        if key not in obj:
            fail(path, 1, f"manifest is missing required key '{key}'")
    if obj["schema"] != MANIFEST_SCHEMA:
        fail(path, 1,
             f"manifest schema is '{obj['schema']}', "
             f"expected '{MANIFEST_SCHEMA}'")
    if not isinstance(obj["benchmarks"], list):
        fail(path, 1, "manifest 'benchmarks' must be a list")
    for i, bench in enumerate(obj["benchmarks"]):
        for key in ("name", "seed", "branches", "trace_checksum"):
            if key not in bench:
                fail(path, 1,
                     f"manifest benchmark #{i} is missing '{key}'")


def validate_event(path, lineno, obj):
    if not isinstance(obj.get("type"), str):
        fail(path, lineno, "event has no string 'type'")
    t_ms = obj.get("t_ms")
    if not isinstance(t_ms, (int, float)) or t_ms < 0:
        fail(path, lineno, "event 't_ms' must be a non-negative number")
    required = EVENT_REQUIRED_FIELDS.get(obj["type"])
    if required is None:
        return  # unknown event types are allowed
    for key in required:
        if key not in obj:
            fail(path, lineno,
                 f"event '{obj['type']}' is missing field '{key}'")
    if obj["type"] == "fault_injected":
        kind = obj.get("kind")
        if isinstance(kind, str) and kind.startswith("plan."):
            extra = ("action", "config", "occurrence")
        else:
            extra = ("record",)
        for key in extra:
            if key not in obj:
                fail(path, lineno,
                     f"fault_injected (kind {kind!r}) is missing "
                     f"field '{key}'")
    if obj["type"] == "sweep_run_finished":
        busy = obj.get("shard_busy_frac")
        if busy is not None and (
                not isinstance(busy, (int, float)) or
                not 0.0 <= busy <= 1.0):
            fail(path, lineno,
                 f"sweep_run_finished 'shard_busy_frac' must be a "
                 f"number in [0, 1], got {busy!r}")
        wait = obj.get("barrier_wait_ms")
        if wait is not None and (
                not isinstance(wait, (int, float)) or wait < 0):
            fail(path, lineno,
                 f"sweep_run_finished 'barrier_wait_ms' must be a "
                 f"non-negative number, got {wait!r}")
    if obj["type"] == "sampling_run_finished":
        rate = obj.get("sample_rate")
        if not isinstance(rate, (int, float)) or not 0.0 < rate <= 1.0:
            fail(path, lineno,
                 f"sampling_run_finished 'sample_rate' must be a "
                 f"number in (0, 1], got {rate!r}")
        recorded = obj.get("recorded_branches")
        total = obj.get("total_branches")
        if (isinstance(recorded, int) and isinstance(total, int) and
                recorded > total):
            fail(path, lineno,
                 f"sampling_run_finished recorded_branches "
                 f"{recorded} exceeds total_branches {total}")
    if obj["type"] == "metrics_snapshot":
        # The snapshot is flat: metric names are field keys. The sweep
        # occupancy metrics, when present, have hard ranges.
        busy = obj.get("sweep.shard_busy_frac")
        if busy is not None and (
                not isinstance(busy, (int, float)) or
                not 0.0 <= busy <= 1.0):
            fail(path, lineno,
                 f"metric 'sweep.shard_busy_frac' must be in [0, 1], "
                 f"got {busy!r}")
        for key in ("sweep.barrier_wait_ns.count",
                    "sweep.barrier_wait_ns.mean"):
            value = obj.get(key)
            if value is not None and (
                    not isinstance(value, (int, float)) or value < 0):
                fail(path, lineno,
                     f"metric '{key}' must be a non-negative number, "
                     f"got {value!r}")


def validate_jsonl(path):
    with open(path, encoding="utf-8") as stream:
        lines = stream.read().splitlines()
    if not lines:
        fail(path, 1, "file is empty (expected a manifest line)")
    objs = []
    for lineno, line in enumerate(lines, start=1):
        try:
            objs.append(json.loads(line))
        except json.JSONDecodeError as err:
            fail(path, lineno, f"invalid JSON: {err}")
    if objs[0].get("type") != "manifest":
        fail(path, 1,
             f"first record must be the manifest, got "
             f"'{objs[0].get('type')}'")
    validate_manifest(path, objs[0])
    last_t = 0.0
    for lineno, obj in enumerate(objs[1:], start=2):
        if obj.get("type") == "manifest":
            fail(path, lineno, "duplicate manifest record")
        validate_event(path, lineno, obj)
        if obj["t_ms"] < last_t:
            fail(path, lineno,
                 f"t_ms went backwards ({obj['t_ms']} < {last_t})")
        last_t = obj["t_ms"]
    return len(objs) - 1


def validate_bench(path):
    with open(path, encoding="utf-8") as stream:
        try:
            obj = json.load(stream)
        except json.JSONDecodeError as err:
            fail(path, 1, f"invalid JSON: {err}")
    if obj.get("schema") != BENCH_SCHEMA:
        fail(path, 1,
             f"schema is '{obj.get('schema')}', "
             f"expected '{BENCH_SCHEMA}'")
    if not re.fullmatch(r"\d{4}-\d{2}-\d{2}", obj.get("date", "")):
        fail(path, 1, f"'date' is not YYYY-MM-DD: {obj.get('date')!r}")
    for key in ("build_type", "compiler", "cxx_standard", "benchmark",
                "branches"):
        if key not in obj:
            fail(path, 1, f"missing required key '{key}'")
    results = obj.get("results")
    if not isinstance(results, list) or not results:
        fail(path, 1, "'results' must be a non-empty list")
    for i, result in enumerate(results):
        for key in ("name", "branches", "wall_ms", "ns_per_branch"):
            if key not in result:
                fail(path, 1, f"result #{i} is missing '{key}'")
        if not isinstance(result["ns_per_branch"], (int, float)) or \
                result["ns_per_branch"] < 0:
            fail(path, 1,
                 f"result #{i} 'ns_per_branch' must be >= 0")
    return len(results)


def read_manifest(path):
    """Parse and schema-validate a JSONL file's manifest line."""
    with open(path, encoding="utf-8") as stream:
        first = stream.readline()
    if not first.strip():
        fail(path, 1, "file is empty (expected a manifest line)")
    try:
        obj = json.loads(first)
    except json.JSONDecodeError as err:
        fail(path, 1, f"invalid JSON: {err}")
    if obj.get("type") != "manifest":
        fail(path, 1,
             f"first record must be the manifest, got "
             f"'{obj.get('type')}'")
    validate_manifest(path, obj)
    return obj


def validate_resume_pair(original_path, resumed_path):
    """Check that a resumed run simulated the same input as the
    original: identical (name, seed, trace_checksum) benchmark lists.
    """
    def trace_identity(manifest):
        return [(b["name"], b["seed"], b["trace_checksum"])
                for b in manifest["benchmarks"]]

    original = trace_identity(read_manifest(original_path))
    resumed = trace_identity(read_manifest(resumed_path))
    if len(original) != len(resumed):
        fail(resumed_path, 1,
             f"resumed run has {len(resumed)} benchmark(s), the "
             f"original had {len(original)}")
    for i, (orig, res) in enumerate(zip(original, resumed)):
        if orig != res:
            fail(resumed_path, 1,
                 f"benchmark #{i} diverged from the original run: "
                 f"original (name, seed, trace_checksum) = {orig}, "
                 f"resumed = {res}")
    return len(resumed)


def main():
    parser = argparse.ArgumentParser(
        description="Validate confsim telemetry artifacts.")
    parser.add_argument("files", nargs="+",
                        help="artifact files to validate")
    parser.add_argument("--bench", action="store_true",
                        help="files are BENCH_*.json perf reports "
                             "(default: events JSONL)")
    parser.add_argument("--resume-of", metavar="ORIGINAL",
                        help="each file is the JSONL of a resumed run; "
                             "assert its manifest simulates the same "
                             "traces as ORIGINAL's manifest")
    args = parser.parse_args()
    if args.bench and args.resume_of:
        parser.error("--bench and --resume-of are mutually exclusive")

    try:
        for path in args.files:
            if args.resume_of:
                n = validate_jsonl(path)
                benches = validate_resume_pair(args.resume_of, path)
                print(f"{path}: OK ({n} event(s); trace identity "
                      f"matches {args.resume_of} across {benches} "
                      f"benchmark(s))")
                continue
            if args.bench:
                n = validate_bench(path)
                print(f"{path}: OK ({n} result(s))")
            else:
                n = validate_jsonl(path)
                print(f"{path}: OK (manifest + {n} event(s))")
    except ValidationError as err:
        print(f"FAIL {err}", file=sys.stderr)
        return 1
    except OSError as err:
        print(f"FAIL {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
