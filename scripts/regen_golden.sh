#!/usr/bin/env sh
# Regenerate the frozen golden-output fixtures (tests/golden/*.csv)
# and verify they round-trip through the golden regression tests.
#
# Use ONLY after an intentional modeling change: the simulation is
# fully deterministic, so a fixture diff is always a behavior change.
# Commit the regenerated CSVs together with the change that moved
# them, and explain in the commit message why the numbers moved (see
# tests/golden/README.md).
#
# Usage:  scripts/regen_golden.sh [build-dir]     (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -d "$BUILD_DIR" ]; then
    echo "error: build directory '$BUILD_DIR' not found" >&2
    echo "configure first: cmake -B $BUILD_DIR -G Ninja" >&2
    exit 1
fi

cmake --build "$BUILD_DIR" -j
"./$BUILD_DIR/bench/fig05_one_level" --fast --csv-dir tests/golden
"./$BUILD_DIR/bench/fig09_benchmarks" --fast --csv-dir tests/golden
ctest --test-dir "$BUILD_DIR" -L golden --output-on-failure

echo ""
echo "golden fixtures regenerated and verified:"
git -c core.quotePath=false status --short tests/golden/ || true
