#!/usr/bin/env bash
# One-command reproduction of every artifact in EXPERIMENTS.md.
#
# Usage:
#   scripts/reproduce.sh [results_dir]
#
# Builds the project, runs the full test suite, regenerates every
# paper figure/table plus all ablations and application studies at the
# default scale (2M branches per benchmark), and leaves:
#   <results_dir>/*.csv        every data series
#   <results_dir>/*.txt        full terminal output per harness
#   test_output.txt            ctest log
#   bench_output.txt           concatenated harness output
set -euo pipefail

cd "$(dirname "$0")/.."
RESULTS="${1:-results}"
mkdir -p "$RESULTS"

echo "== configure & build =="
cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build 2>&1 | tee test_output.txt

echo "== figure/table harnesses =="
: > bench_output.txt
for b in build/bench/*; do
    name="$(basename "$b")"
    case "$name" in
        CMakeFiles|CTestTestfile.cmake|cmake_install.cmake) continue ;;
        micro_throughput)
            echo "== $name =="
            "$b" 2>&1 | tee "$RESULTS/$name.txt" \
                | tee -a bench_output.txt
            ;;
        *)
            echo "== $name =="
            "$b" --csv-dir "$RESULTS" 2>&1 \
                | tee "$RESULTS/$name.txt" | tee -a bench_output.txt
            ;;
    esac
done

echo "== done: CSVs and logs in $RESULTS/ =="
