#!/usr/bin/env python3
"""Schema validation for confsim --trace-out Chrome trace files.

A trace file (written by SpanTracer::finish, src/obs/span.cc) is a
single JSON object in the Chrome trace-event format that Perfetto and
chrome://tracing load directly:

  {"displayTimeUnit": "ms", "traceEvents": [ ... ]}

This validator enforces the invariants the exporter guarantees and CI
relies on (docs/observability.md, "Execution spans"):

  * "traceEvents" is a non-empty list of objects; every event has a
    string "ph" in {B, E, C, M} plus integer "pid"/"tid" and a
    numeric, non-negative "ts" (metadata aside).
  * Per (pid, tid): timestamps are monotonic non-decreasing, and the
    B/E duration events nest like matched parentheses — every "E"
    closes the innermost open "B" and nothing is left open at the end
    (the exporter repairs ring-wraparound imbalance before writing).
  * "B" events carry a non-empty string "name".
  * "C" (counter) events carry numeric args.value.
  * "M" metadata includes a process_name record and a thread_name
    record for every tid that emits duration or counter events.

Usage:
    validate_trace.py trace.json [more.json ...]

Exits 0 when every file validates, 1 on the first violation. Stdlib
only — safe to run anywhere CI has a python3.
"""

import argparse
import json
import sys

KNOWN_PHASES = {"B", "E", "C", "M"}


class ValidationError(Exception):
    pass


def fail(path, message):
    raise ValidationError(f"{path}: {message}")


def validate_trace(path):
    with open(path, encoding="utf-8") as stream:
        try:
            obj = json.load(stream)
        except json.JSONDecodeError as err:
            fail(path, f"invalid JSON: {err}")
    if not isinstance(obj, dict):
        fail(path, "top level must be a JSON object")
    events = obj.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "'traceEvents' must be a non-empty list")

    named_threads = set()
    saw_process_name = False
    # Per-(pid, tid) open-span stack and last timestamp.
    stacks = {}
    last_ts = {}
    emitting_tids = set()
    counters = 0
    durations = 0

    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            fail(path, f"{where}: event must be an object")
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            fail(path, f"{where}: 'ph' must be one of "
                       f"{sorted(KNOWN_PHASES)}, got {phase!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                fail(path, f"{where}: '{key}' must be an integer")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(path, f"{where}: 'ts' must be a non-negative number")

        if phase == "M":
            name = event.get("name")
            args = event.get("args", {})
            if name == "process_name":
                saw_process_name = True
            elif name == "thread_name":
                if not isinstance(args.get("name"), str):
                    fail(path, f"{where}: thread_name metadata must "
                               f"carry a string args.name")
                named_threads.add((event["pid"], event["tid"]))
            continue

        key = (event["pid"], event["tid"])
        emitting_tids.add(key)
        if key in last_ts and ts < last_ts[key]:
            fail(path, f"{where}: timestamps regress on pid/tid "
                       f"{key}: {ts} < {last_ts[key]}")
        last_ts[key] = ts

        if phase == "C":
            counters += 1
            value = event.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                fail(path, f"{where}: counter event must carry "
                           f"numeric args.value")
            continue

        durations += 1
        if phase == "B":
            name = event.get("name")
            if not isinstance(name, str) or not name:
                fail(path, f"{where}: 'B' event must carry a "
                           f"non-empty string name")
            stacks.setdefault(key, []).append(name)
        else:  # "E"
            stack = stacks.get(key)
            if not stack:
                fail(path, f"{where}: 'E' event with no open span on "
                           f"pid/tid {key}")
            stack.pop()

    for key, stack in stacks.items():
        if stack:
            fail(path, f"{len(stack)} span(s) left open on pid/tid "
                       f"{key}: {stack}")
    if durations == 0:
        fail(path, "trace contains no duration (B/E) events")
    if not saw_process_name:
        fail(path, "missing process_name metadata")
    missing = emitting_tids - named_threads
    if missing:
        fail(path, f"tids emitted events but have no thread_name "
                   f"metadata: {sorted(missing)}")
    return durations, counters


def main():
    parser = argparse.ArgumentParser(
        description="Validate confsim --trace-out trace files.")
    parser.add_argument("files", nargs="+",
                        help="trace.json files to validate")
    args = parser.parse_args()
    try:
        for path in args.files:
            durations, counters = validate_trace(path)
            print(f"{path}: OK ({durations} duration event(s), "
                  f"{counters} counter sample(s))")
    except ValidationError as err:
        print(f"FAIL {err}", file=sys.stderr)
        return 1
    except OSError as err:
        print(f"FAIL {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
