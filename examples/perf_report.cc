/**
 * @file
 * Performance-trajectory reporter: times the simulation stack —
 * predictor-only driver loop, then each paper estimator riding the
 * driver, then the full six-estimator configuration — and writes a
 * dated, schema-versioned artifact:
 *
 *   BENCH_<YYYY-MM-DD>.json
 *     { "schema": "confsim-bench-v1", "date": ..., build provenance,
 *       "sweep_speedup_10cfg": <single-pass sweep vs per-config
 *       replay at 10 configurations>,
 *       "sweep_pipeline_speedup": <decode-ahead pipelined sweep vs
 *       the synchronous-refill sweep on the same pass>,
 *       "results": [ { "name", "branches", "wall_ms",
 *                      "ns_per_branch" }, ... ] }
 *
 * CI runs this (with --fast) on every push and uploads the artifact,
 * so ns/branch regressions leave a dated trail that can be diffed
 * across commits. With --telemetry, the same runs also emit the JSONL
 * event stream (driver_run + sampled estimator_update_cost events).
 *
 *   ./build/examples/perf_report --fast --out-dir reports
 */

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "sim/experiment.h"
#include "trace/trace_stats.h"
#include "util/atomic_file.h"
#include "util/cli.h"
#include "util/signal_cancellation.h"
#include "util/status.h"
#include "workload/workload_generator.h"

using namespace confsim;

namespace {

/** One timed configuration. */
struct TimedCase
{
    std::string name;
    std::uint64_t branches = 0;
    double wallMs = 0.0;
    double nsPerBranch = 0.0;
};

/** @return today's local date as YYYY-MM-DD. */
std::string
todayIso()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    localtime_r(&now, &tm);
    char buf[16];
    std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm);
    return buf;
}

/** Run one (predictor, estimator set) configuration and time it. */
TimedCase
timeCase(const std::string &name, const BenchmarkProfile &profile,
         std::uint64_t branches,
         const std::vector<EstimatorConfig> &configs,
         Telemetry *telemetry, const CancellationToken *cancel)
{
    WorkloadGenerator workload(profile, branches);
    const auto predictor = largeGshareFactory()();
    std::vector<std::unique_ptr<ConfidenceEstimator>> estimators;
    std::vector<ConfidenceEstimator *> raw;
    for (const auto &config : configs) {
        estimators.push_back(config.make());
        raw.push_back(estimators.back().get());
    }
    DriverOptions options;
    options.telemetry = telemetry;
    options.telemetryLabel = name;
    options.cancel = cancel;
    SimulationDriver driver(*predictor, raw, options);
    const DriverResult result = driver.run(workload);

    TimedCase timed;
    timed.name = name;
    timed.branches = result.branches;
    timed.wallMs = result.wallMs;
    timed.nsPerBranch =
        result.branches == 0
            ? 0.0
            : result.wallMs * 1e6 / static_cast<double>(result.branches);
    return timed;
}

/** The 10-configuration matrix used for the sweep-vs-replay contest. */
std::vector<SweepConfiguration>
sweepMatrix()
{
    const std::vector<EstimatorConfig> configs = {
        oneLevelIdealConfig(IndexScheme::Pc),
        oneLevelIdealConfig(IndexScheme::Bhr),
        oneLevelIdealConfig(IndexScheme::PcXorBhr),
        oneLevelOnesCountConfig(IndexScheme::PcXorBhr),
        oneLevelCounterConfig(IndexScheme::PcXorBhr,
                              CounterKind::Saturating),
        oneLevelCounterConfig(IndexScheme::PcXorBhr,
                              CounterKind::Resetting),
        oneLevelCounterConfig(IndexScheme::PcXorBhr,
                              CounterKind::HalfReset),
        twoLevelConfig(IndexScheme::PcXorBhr, SecondLevelIndex::Cir),
    };
    std::vector<SweepConfiguration> matrix;
    for (const auto &config : configs) {
        SweepConfiguration entry;
        entry.label = config.label;
        entry.makePredictor = largeGshareFactory();
        entry.makeEstimators = [make = config.make] {
            std::vector<std::unique_ptr<ConfidenceEstimator>> set;
            set.push_back(make());
            return set;
        };
        matrix.push_back(std::move(entry));
    }
    // The native-confidence families carry their own (heavier)
    // predictors, so the contest also tracks TAGE/perceptron
    // ns-per-branch over time.
    const std::vector<std::pair<PredictorFactory, EstimatorConfig>>
        native = {
            {tageFactory(), tageProviderConfig()},
            {perceptronFactory(), perceptronMarginConfig()},
        };
    for (const auto &[factory, config] : native) {
        SweepConfiguration entry;
        entry.label = config.label;
        entry.makePredictor = factory;
        entry.makeEstimators = [make = config.make] {
            std::vector<std::unique_ptr<ConfidenceEstimator>> set;
            set.push_back(make());
            return set;
        };
        matrix.push_back(std::move(entry));
    }
    return matrix;
}

/** The three-way sweep contest rows. */
struct SweepContest
{
    TimedCase replay;    //!< one sequential driver run per config
    TimedCase singlePass; //!< sweep, synchronous refill (decodeAhead 1)
    TimedCase pipelined; //!< sweep with the decode-ahead ring

    /** Pipeline-occupancy summary of the pipelined pass. */
    double shardBusyFrac = 0.0;
    double barrierWaitMs = 0.0;
    double decodeStallMs = 0.0;
};

/**
 * Time the same 10 configurations three ways: decoding the trace once
 * per configuration (the pre-sweep workflow), one broadcast pass with
 * synchronous refill between batches, and one broadcast pass with the
 * decode-ahead ring. replay/single_pass is the headline
 * "sweep_speedup_10cfg"; single_pass/pipelined is
 * "sweep_pipeline_speedup".
 */
SweepContest
timeSweepContest(const BenchmarkProfile &profile,
                 std::uint64_t branches, SpanTracer *spans,
                 const CancellationToken *cancel)
{
    const std::vector<SweepConfiguration> matrix = sweepMatrix();
    SweepContest contest;

    TimedCase &replay = contest.replay;
    replay.name = "sweep/replay_10cfg";
    for (const auto &config : matrix) {
        WorkloadGenerator workload(profile, branches);
        const auto predictor = config.makePredictor();
        auto estimators = config.makeEstimators();
        std::vector<ConfidenceEstimator *> raw;
        for (const auto &estimator : estimators)
            raw.push_back(estimator.get());
        DriverOptions replay_options;
        replay_options.cancel = cancel;
        SimulationDriver driver(*predictor, raw, replay_options);
        const DriverResult result = driver.run(workload);
        replay.branches = result.branches;
        replay.wallMs += result.wallMs;
    }

    const auto time_sweep = [&](const char *name,
                                std::size_t decode_ahead,
                                SpanTracer *pass_spans,
                                SweepContest *occupancy) {
        TimedCase timed;
        timed.name = name;
        WorkloadGenerator workload(profile, branches);
        DriverOptions driver_options;
        driver_options.spans = pass_spans;
        driver_options.cancel = cancel;
        SweepOptions sweep;
        sweep.decodeAhead = decode_ahead;
        SweepEngine engine(matrix, driver_options, sweep);
        const SweepRunResult result = engine.run(workload);
        timed.branches = result.branches;
        timed.wallMs = result.wallMs;
        if (occupancy != nullptr) {
            occupancy->shardBusyFrac = result.shardBusyFrac;
            occupancy->barrierWaitMs = result.barrierWaitMs;
            occupancy->decodeStallMs = result.decodeStallMs;
        }
        return timed;
    };
    contest.singlePass =
        time_sweep("sweep/single_pass_10cfg", 1, nullptr, nullptr);
    // Only the pipelined pass is traced: it is the pass whose
    // producer/shard/barrier interleaving the trace is meant to show.
    contest.pipelined =
        time_sweep("sweep/pipelined_10cfg",
                   SweepOptions::kDefaultDecodeAhead, spans, &contest);

    // ns per branch UPDATE (branches x configs), so the rows are
    // directly comparable per unit of simulation work.
    const double updates =
        static_cast<double>(replay.branches) *
        static_cast<double>(matrix.size());
    if (updates > 0) {
        replay.nsPerBranch = replay.wallMs * 1e6 / updates;
        contest.singlePass.nsPerBranch =
            contest.singlePass.wallMs * 1e6 / updates;
        contest.pipelined.nsPerBranch =
            contest.pipelined.wallMs * 1e6 / updates;
    }
    return contest;
}

/**
 * Time the same 10 configurations replaying a stratified 10% sample
 * with a bounded functional-warming window (sim/sampling_engine.h):
 * non-sampled, non-warming regions fast-forward, so this is the
 * genuine wall-clock lever for long traces. pipelined/sampled is
 * "sampling_speedup".
 */
TimedCase
timeSampledPass(const BenchmarkProfile &profile,
                std::uint64_t branches, const CancellationToken *cancel)
{
    DriverOptions driver_options;
    driver_options.cancel = cancel;
    SamplingOptions sampling;
    sampling.sampleRate = 0.1;
    sampling.regionBranches = std::max<std::uint64_t>(
        1000, branches / 100);
    sampling.warmupRegions = 2;
    SamplingEngine engine(sweepMatrix(), driver_options, sampling);
    const SamplingBenchmarkResult result = engine.runTrace(
        profile.name, [&] {
            return std::make_unique<WorkloadGenerator>(profile,
                                                       branches);
        });

    TimedCase timed;
    timed.name = "sampling/sampled_10cfg";
    timed.branches = result.recordedBranches;
    timed.wallMs = result.prePassMs + result.replayMs;
    const double updates = static_cast<double>(
                               result.recordedBranches) *
                           static_cast<double>(sweepMatrix().size());
    if (updates > 0)
        timed.nsPerBranch = timed.wallMs * 1e6 / updates;
    return timed;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("perf-trajectory report (BENCH_<date>.json)");
    cli.addOption("out-dir", ".",
                  "directory for the BENCH_<date>.json artifact");
    cli.addOption("branches", "2000000",
                  "branches per timed configuration");
    cli.addOption("benchmark", "groff", "IBS workload used for timing");
    cli.addFlag("fast", "short traces (CI smoke run)");
    cli.addOption("telemetry", "",
                  "write JSONL telemetry (manifest + events) here");
    cli.addOption("trace-out", "",
                  "write a Chrome/Perfetto trace-event JSON of the "
                  "pipelined sweep pass here");
    if (!cli.parse(argc, argv))
        return 0;

    std::uint64_t branches = cli.getUnsigned("branches");
    if (cli.getFlag("fast"))
        branches = std::min<std::uint64_t>(branches, 200'000);
    const BenchmarkProfile profile =
        ibsProfile(cli.getString("benchmark"));

    TelemetryOptions telemetry_options;
    telemetry_options.jsonlPath = cli.getString("telemetry");
    const auto telemetry = Telemetry::fromOptions(telemetry_options);

    // Provenance shared by the JSON artifact and the telemetry stream.
    RunManifest manifest = RunManifest::withBuildInfo();
    manifest.tool = "perf_report";
    manifest.suite = "single";
    {
        ManifestBenchmark bench;
        bench.name = profile.name;
        bench.seed = profile.seed;
        bench.branches = branches;
        WorkloadGenerator workload(profile, branches);
        bench.traceChecksum = streamChecksum(workload, 4096);
        manifest.benchmarks.push_back(bench);
    }
    manifest.predictor = largeGshareFactory()()->name();
    if (telemetry)
        telemetry->setManifest(manifest);

    // Ctrl-C / SIGTERM cancel the timing runs cooperatively: the
    // driver unwinds with Error{kCancelled}, telemetry is flushed,
    // and the process exits 128+signo with no partial BENCH artifact
    // (the AtomicFileWriter below never opens).
    CancellationToken root;
    installSignalCancellation(root);

    const std::vector<
        std::pair<std::string, std::vector<EstimatorConfig>>>
        cases = {
            {"driver/predictor_only", {}},
            {"estimator/pc_ideal",
             {oneLevelIdealConfig(IndexScheme::Pc)}},
            {"estimator/pcxorbhr_ideal",
             {oneLevelIdealConfig(IndexScheme::PcXorBhr)}},
            {"estimator/ones_count",
             {oneLevelOnesCountConfig(IndexScheme::PcXorBhr)}},
            {"estimator/saturating",
             {oneLevelCounterConfig(IndexScheme::PcXorBhr,
                                    CounterKind::Saturating)}},
            {"estimator/resetting",
             {oneLevelCounterConfig(IndexScheme::PcXorBhr,
                                    CounterKind::Resetting)}},
            {"estimator/two_level",
             {twoLevelConfig(IndexScheme::PcXorBhr,
                             SecondLevelIndex::Cir)}},
        };

    std::vector<TimedCase> results;
    SpanTracerOptions span_options;
    span_options.path = cli.getString("trace-out");
    const auto spans = SpanTracer::fromOptions(span_options);
    SweepContest contest;
    TimedCase sampled;
    try {
        for (const auto &[name, configs] : cases) {
            results.push_back(timeCase(name, profile, branches,
                                       configs, telemetry.get(),
                                       &root));
            std::printf("%-26s %8.2f ns/branch  (%.1f ms)\n",
                        results.back().name.c_str(),
                        results.back().nsPerBranch,
                        results.back().wallMs);
        }

        // Sweep contest: 10 configurations — per-config replay, one
        // decoded pass (synchronous refill), one pipelined pass.
        contest = timeSweepContest(profile, branches, spans.get(),
                                   &root);
        sampled = timeSampledPass(profile, branches, &root);
    } catch (const Error &e) {
        if (e.category() != ErrorCategory::kCancelled)
            throw;
        if (telemetry)
            telemetry->finish();
        std::fprintf(stderr, "perf_report: %s\n", e.what());
        return exitCodeForSignal(lastCancellationSignal());
    }
    if (spans)
        publishSpanSummary(spans->finish(), telemetry.get());
    const double sweep_speedup =
        contest.singlePass.wallMs > 0.0
            ? contest.replay.wallMs / contest.singlePass.wallMs
            : 0.0;
    const double pipeline_speedup =
        contest.pipelined.wallMs > 0.0
            ? contest.singlePass.wallMs / contest.pipelined.wallMs
            : 0.0;
    const double sampling_speedup =
        sampled.wallMs > 0.0 ? contest.pipelined.wallMs / sampled.wallMs
                             : 0.0;
    for (const TimedCase &row :
         {contest.replay, contest.singlePass, contest.pipelined,
          sampled}) {
        results.push_back(row);
        std::printf("%-26s %8.2f ns/update  (%.1f ms)\n",
                    row.name.c_str(), row.nsPerBranch, row.wallMs);
    }
    std::printf("sweep speedup at 10 configurations: %.2fx\n",
                sweep_speedup);
    std::printf("decode-ahead pipelining speedup: %.2fx\n",
                pipeline_speedup);
    std::printf("10%% stratified sampling speedup: %.2fx\n",
                sampling_speedup);

    const std::string date = todayIso();
    const std::string out_dir = cli.getString("out-dir");
    std::filesystem::create_directories(out_dir);
    const std::string path = out_dir + "/BENCH_" + date + ".json";
    // Crash-safe: build the report in a .tmp sibling and rename it
    // into place, so an interrupted run cannot leave a truncated JSON
    // artifact for the trajectory tooling to choke on.
    AtomicFileWriter writer(path);
    std::ostream &out = writer.stream();
    out << "{" << jsonString("schema") << ":"
        << jsonString("confsim-bench-v1") << ","
        << jsonString("date") << ":" << jsonString(date) << ","
        << jsonString("build_type") << ":"
        << jsonString(manifest.buildType) << ","
        << jsonString("compiler") << ":"
        << jsonString(manifest.compiler) << ","
        << jsonString("cxx_standard") << ":"
        << jsonString(manifest.cxxStandard) << ","
        << jsonString("benchmark") << ":" << jsonString(profile.name)
        << "," << jsonString("branches") << ":" << branches << ","
        << jsonString("sweep_speedup_10cfg") << ":"
        << jsonNumber(sweep_speedup) << ","
        // Pipelined (decode-ahead) engine vs the synchronous-refill
        // engine on the same 10-config pass; ~1.0 on single-core
        // hosts, > 1 wherever decode can hide behind replay.
        << jsonString("sweep_pipeline_speedup") << ":"
        << jsonNumber(pipeline_speedup) << ","
        // Stratified 10% sampled replay (bounded warming window) vs
        // the pipelined exact pass on the same 10 configurations: the
        // orders-of-magnitude lever for long traces.
        << jsonString("sampling_speedup") << ":"
        << jsonNumber(sampling_speedup) << ","
        // Pipeline-occupancy summary of the pipelined pass: how busy
        // the replay shards were (1.0 = fully hidden decode), how long
        // replay waited at checkpoint barriers, and how much decode
        // latency the ring failed to hide.
        << jsonString("sweep_shard_busy_frac") << ":"
        << jsonNumber(contest.shardBusyFrac) << ","
        << jsonString("sweep_barrier_wait_ms") << ":"
        << jsonNumber(contest.barrierWaitMs) << ","
        << jsonString("sweep_decode_stall_ms") << ":"
        << jsonNumber(contest.decodeStallMs) << ","
        // Sweep speedup scales with cores (config sharding) on top of
        // the decode-once saving, so the trajectory tooling needs the
        // host's parallelism to compare artifacts across machines.
        << jsonString("hardware_concurrency") << ":"
        << std::thread::hardware_concurrency() << ","
        << jsonString("results") << ":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const TimedCase &timed = results[i];
        if (i != 0)
            out << ",";
        out << "{" << jsonString("name") << ":"
            << jsonString(timed.name) << "," << jsonString("branches")
            << ":" << timed.branches << "," << jsonString("wall_ms")
            << ":" << jsonNumber(timed.wallMs) << ","
            << jsonString("ns_per_branch") << ":"
            << jsonNumber(timed.nsPerBranch) << "}";
    }
    out << "]}\n";
    writer.commit();
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
