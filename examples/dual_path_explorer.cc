/**
 * @file
 * Dual-path explorer: interactively sweep the selective dual-path
 * execution model (paper application 1) over one benchmark.
 *
 * Exposes the cost model's knobs so a user can find where selective
 * forking pays off:
 *
 *   ./build/examples/dual_path_explorer --benchmark real_gcc \
 *       --penalty 10 --fork-cost 1.0 --window 6
 *
 * prints, per confidence threshold, the fork rate, the fraction of
 * mispredictions covered by a fork, and the modeled speedup over a
 * no-dual-path baseline, plus a blind-forking row for contrast.
 */

#include <cstdio>

#include "apps/dual_path.h"
#include "confidence/one_level.h"
#include "predictor/gshare.h"
#include "util/cli.h"
#include "workload/workload_generator.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    CliParser cli("selective dual-path execution explorer");
    cli.addOption("benchmark", "real_gcc", "IBS workload name");
    cli.addOption("branches", "2000000", "trace length");
    cli.addOption("penalty", "7.0",
                  "full misprediction penalty (cycles)");
    cli.addOption("forked-penalty", "1.0",
                  "penalty when the wrong path was forked (cycles)");
    cli.addOption("fork-cost", "0.5",
                  "resource cost per fork (cycles)");
    cli.addOption("window", "4",
                  "branches until a forked branch resolves");
    if (!cli.parse(argc, argv))
        return 0;

    DualPathConfig config;
    config.mispredictPenalty = cli.getDouble("penalty");
    config.forkedMispredictPenalty = cli.getDouble("forked-penalty");
    config.forkCost = cli.getDouble("fork-cost");
    config.resolutionWindow =
        static_cast<unsigned>(cli.getUnsigned("window"));

    const BenchmarkProfile profile =
        ibsProfile(cli.getString("benchmark"));
    const std::uint64_t branches = cli.getUnsigned("branches");

    std::printf("benchmark %s, %llu branches; penalty %.1f, forked "
                "penalty %.1f, fork cost %.2f, window %u\n\n",
                profile.name.c_str(),
                static_cast<unsigned long long>(branches),
                config.mispredictPenalty,
                config.forkedMispredictPenalty, config.forkCost,
                config.resolutionWindow);
    std::printf("%-12s %10s %10s %10s %9s\n", "policy", "forks",
                "fork-rate", "coverage", "speedup");

    // A policy is the set of low-confidence (fork-triggering) counter
    // values.
    auto run_policy = [&](const char *label,
                          const std::vector<bool> &low_template) {
        WorkloadGenerator gen(profile, branches);
        GsharePredictor pred = GsharePredictor::makeLargePaperConfig();
        OneLevelCounterConfidence est(IndexScheme::PcXorBhr, 1 << 16,
                                      CounterKind::Resetting, 16, 0);
        const auto result =
            runDualPath(gen, pred, est, low_template, config);
        std::printf("%-12s %10llu %9.2f%% %9.1f%% %8.3fx\n", label,
                    static_cast<unsigned long long>(result.forks),
                    100.0 * result.forkRate(),
                    100.0 * result.coverage(), result.speedup());
    };

    const std::size_t buckets = 17; // resetting counter 0..16
    run_policy("never", std::vector<bool>(buckets, false));
    for (std::uint64_t threshold : {0u, 1u, 3u, 7u, 15u}) {
        std::vector<bool> low(buckets, false);
        for (std::uint64_t v = 0; v <= threshold; ++v)
            low[v] = true;
        char label[32];
        std::snprintf(label, sizeof(label), "reset<=%llu",
                      static_cast<unsigned long long>(threshold));
        run_policy(label, low);
    }
    run_policy("blind", std::vector<bool>(buckets, true));
    return 0;
}
