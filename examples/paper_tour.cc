/**
 * @file
 * Paper tour: a guided, single-binary walk through the main results of
 * Jacobsen/Rotenberg/Smith (MICRO-29, 1996), each step computed live
 * on a reduced benchmark subset so the whole tour runs in seconds.
 *
 *   ./build/examples/paper_tour            # reduced suite, fast
 *   ./build/examples/paper_tour --full     # all nine benchmarks
 *
 * For the full-scale reproductions with CSV output, use the per-figure
 * binaries in bench/.
 */

#include <cstdio>

#include "sim/experiment.h"
#include "util/cli.h"

using namespace confsim;

namespace {

void
banner(const char *text)
{
    std::printf("\n=== %s ===\n\n", text);
}

double
at20(const NamedCurve &curve)
{
    return 100.0 * curve.curve.mispredCoverageAt(0.20);
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("guided tour of the paper's results");
    cli.addFlag("full", "run the full nine-benchmark suite");
    cli.addOption("branches", "400000",
                  "conditional branches per benchmark");
    cli.addOption("telemetry", "",
                  "write JSONL telemetry (manifest + events) here");
    cli.addFlag("progress", "stderr heartbeat while the suite runs");
    if (!cli.parse(argc, argv))
        return 0;

    ExperimentEnv env;
    env.fullSuite = cli.getFlag("full");
    env.branchesPerBenchmark = cli.getUnsigned("branches");
    env.tool = "paper_tour";
    env.telemetry.jsonlPath = cli.getString("telemetry");
    env.telemetry.progress = cli.getFlag("progress");
    env.telemetryContext = Telemetry::fromOptions(env.telemetry);

    std::printf("confsim paper tour — 'Assigning Confidence to "
                "Conditional Branch Predictions' (MICRO-29, 1996)\n");
    std::printf("suite: %s, %llu branches per benchmark\n",
                env.fullSuite ? "all nine IBS stand-ins"
                              : "reduced (jpeg, real_gcc, groff)",
                static_cast<unsigned long long>(
                    env.branchesPerBenchmark));

    banner("Step 1 — the setting (Section 1.2)");
    std::printf("A 64K-entry gshare predictor runs over the benchmark "
                "suite.\n");
    const std::vector<EstimatorConfig> configs = {
        oneLevelIdealConfig(IndexScheme::Pc),
        oneLevelIdealConfig(IndexScheme::Bhr),
        oneLevelIdealConfig(IndexScheme::PcXorBhr),
        twoLevelConfig(IndexScheme::PcXorBhr, SecondLevelIndex::Cir),
        oneLevelCounterConfig(IndexScheme::PcXorBhr,
                              CounterKind::Saturating),
        oneLevelCounterConfig(IndexScheme::PcXorBhr,
                              CounterKind::Resetting),
    };
    const auto result =
        runSuiteExperiment(env, largeGshareFactory(), configs);
    printMispredictionRates(result);
    std::printf("(the paper reports 3.85%% composite for this "
                "predictor on the real IBS traces)\n");

    banner("Step 2 — static confidence is a weak baseline (Section 2)");
    const auto static_curve = staticCompositeCurve(result);
    std::printf("Tag whole static branches low-confidence using a "
                "perfect profile:\n  the worst 20%% of dynamic "
                "branches capture %.1f%% of mispredictions\n  (the "
                "paper: ~63%%).\n",
                at20(static_curve));

    banner("Step 3 — dynamic confidence is much better (Sections 3-4)");
    const auto pc = compositeCurve(result, 0, "PC");
    const auto bhr = compositeCurve(result, 1, "BHR");
    const auto both = compositeCurve(result, 2, "PCxorBHR");
    std::printf("One-level CIR tables under the ideal reduction, at "
                "the same 20%% point:\n");
    std::printf("  PC-indexed        %.1f%%   (paper 72%%)\n",
                at20(pc));
    std::printf("  BHR-indexed       %.1f%%   (paper 85%%)\n",
                at20(bhr));
    std::printf("  PCxorBHR-indexed  %.1f%%   (paper 89%%)\n",
                at20(both));
    std::printf("PC and history together pin down the branch context "
                "— the gshare insight, reused for confidence.\n");

    banner("Step 4 — a second table level is not worth it (Fig. 7)");
    const auto two_level = compositeCurve(result, 3, "2lvl");
    std::printf("Best two-level method: %.1f%% vs one-level %.1f%% — "
                "at twice the storage.\n",
                at20(two_level), at20(both));

    banner("Step 5 — practical reductions (Section 5.1, Fig. 8)");
    const auto sat = compositeCurve(result, 4, "sat");
    const auto reset = compositeCurve(result, 5, "reset");
    std::printf("Replace 16-bit CIRs with embedded 0..16 counters "
                "(3.2x cheaper):\n");
    std::printf("  saturating counters  %.1f%% — the max-count bucket "
                "swallows mispredictions\n",
                at20(sat));
    std::printf("  resetting counters   %.1f%% — tracks the ideal "
                "curve; the paper's recommendation\n",
                at20(reset));

    banner("Step 6 — the operating points (Table 1)");
    const auto &stats = result.compositeEstimatorStats[5];
    const double total_refs = stats.totalRefs();
    const double total_miss = stats.totalMispredicts();
    double cum_refs = 0.0;
    double cum_miss = 0.0;
    for (std::uint64_t v = 0; v <= 16; ++v) {
        cum_refs += stats[v].refs;
        cum_miss += stats[v].mispredicts;
        if (v == 0 || v == 1 || v == 15 || v == 16) {
            std::printf("  counter <= %2llu: %5.1f%% of predictions, "
                        "%5.1f%% of mispredictions\n",
                        static_cast<unsigned long long>(v),
                        100.0 * cum_refs / total_refs,
                        100.0 * cum_miss / total_miss);
        }
    }
    std::printf("A designer dials the high/low threshold along these "
                "17 natural operating points.\n");

    banner("Where to go next");
    std::printf("  bench/fig*              full-scale figure "
                "reproductions with CSVs and plots\n");
    std::printf("  bench/app_*             dual-path, SMT fetch, "
                "pipeline gating, reverser, hybrid studies\n");
    std::printf("  bench/ablation_*        design-space, aliasing, "
                "context-switch, robustness studies\n");
    std::printf("  examples/confidence_tuner   pick a threshold from "
                "a design target\n");
    return 0;
}
