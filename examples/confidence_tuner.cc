/**
 * @file
 * Confidence tuner: pick a confidence operating point from data.
 *
 * Given a benchmark and a design target — either a maximum
 * low-confidence set size ("no more than 20% of predictions may
 * fork") or a minimum misprediction coverage ("catch at least 80% of
 * misses") — this example profiles the resetting-counter estimator,
 * reads the operating point off the cumulative curve, and reports the
 * counter threshold to wire into hardware along with its achieved
 * classification metrics (PVN, PVP, sensitivity, specificity).
 *
 *   ./build/examples/confidence_tuner --benchmark sdet --max-low 0.2
 *   ./build/examples/confidence_tuner --min-coverage 0.8
 */

#include <cstdio>

#include "confidence/one_level.h"
#include "confidence/signal_io.h"
#include "metrics/classification_metrics.h"
#include "metrics/confidence_curve.h"
#include "metrics/table_report.h"
#include "predictor/gshare.h"
#include "sim/driver.h"
#include "util/cli.h"
#include "workload/workload_generator.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    CliParser cli("confidence operating-point tuner");
    cli.addOption("benchmark", "sdet", "IBS workload name");
    cli.addOption("branches", "2000000", "trace length");
    cli.addOption("max-low", "0",
                  "target: max fraction of predictions flagged low "
                  "(0 = unset)");
    cli.addOption("min-coverage", "0",
                  "target: min fraction of mispredictions captured "
                  "(0 = unset)");
    cli.addOption("emit-signal", "",
                  "write the chosen rule as a confsim signal image "
                  "to this path");
    if (!cli.parse(argc, argv))
        return 0;

    const double max_low = cli.getDouble("max-low");
    const double min_coverage = cli.getDouble("min-coverage");
    if ((max_low <= 0.0) == (min_coverage <= 0.0)) {
        std::printf("specify exactly one of --max-low or "
                    "--min-coverage\n");
        return 1;
    }

    // Profile the estimator.
    const BenchmarkProfile profile =
        ibsProfile(cli.getString("benchmark"));
    WorkloadGenerator gen(profile, cli.getUnsigned("branches"));
    GsharePredictor pred = GsharePredictor::makeLargePaperConfig();
    OneLevelCounterConfidence est(IndexScheme::PcXorBhr, 1 << 16,
                                  CounterKind::Resetting, 16, 0);
    SimulationDriver driver(pred, {&est});
    const auto result = driver.run(gen);
    const auto &stats = result.estimatorStats[0];

    std::printf("benchmark %s: misprediction rate %.2f%%\n\n",
                profile.name.c_str(), 100.0 * result.mispredictRate());
    std::puts(renderCounterTable(buildCounterTable(stats)).c_str());

    // Walk thresholds 0..16 and choose the one meeting the target.
    // (For a resetting counter the natural low sets are exactly the
    // prefixes "counter <= t" — Section 5.2's threshold granularity.)
    int chosen = -1;
    ClassificationMetrics chosen_metrics;
    const auto keyed = stats.nonEmpty();
    for (int t = 0; t <= 16; ++t) {
        std::vector<bool> low(17, false);
        for (int v = 0; v <= t; ++v)
            low[static_cast<std::size_t>(v)] = true;
        const auto metrics =
            computeMetrics(confusionFromBuckets(keyed, low));
        const bool ok = max_low > 0.0
                            ? metrics.lowFraction <= max_low
                            : metrics.sensitivity >= min_coverage;
        if (max_low > 0.0) {
            // Largest threshold still inside the budget.
            if (ok) {
                chosen = t;
                chosen_metrics = metrics;
            }
        } else if (ok) {
            // Smallest threshold reaching the coverage.
            chosen = t;
            chosen_metrics = metrics;
            break;
        }
    }

    if (chosen < 0) {
        std::printf("no counter threshold meets the target; the "
                    "granularity limit of Section 5.2 applies — use "
                    "a larger counter or full CIRs.\n");
        return 1;
    }

    std::printf("chosen rule      : low confidence iff counter <= %d\n",
                chosen);
    std::printf("low fraction     : %.2f%% of predictions\n",
                100.0 * chosen_metrics.lowFraction);
    std::printf("coverage (SENS)  : %.2f%% of mispredictions\n",
                100.0 * chosen_metrics.sensitivity);
    std::printf("PVN              : %.2f%% of low-flagged predictions "
                "actually miss\n",
                100.0 * chosen_metrics.pvn);
    std::printf("PVP              : %.2f%% of high-flagged predictions "
                "are correct\n",
                100.0 * chosen_metrics.pvp);
    std::printf("specificity      : %.2f%%\n",
                100.0 * chosen_metrics.specificity);

    // Optionally persist the rule as a programming image (the paper's
    // "design logic from benchmark data" hand-off).
    const std::string signal_path = cli.getString("emit-signal");
    if (!signal_path.empty()) {
        std::vector<bool> mask(17, false);
        for (int v = 0; v <= chosen; ++v)
            mask[static_cast<std::size_t>(v)] = true;
        writeSignalImage(signal_path, est.name(), mask);
        std::printf("signal image     : wrote %s\n",
                    signal_path.c_str());
    }
    return 0;
}
