/**
 * @file
 * Quickstart: the smallest complete use of the confsim public API.
 *
 *  1. Create a synthetic benchmark workload (an IBS stand-in).
 *  2. Attach the paper's predictor (gshare) and recommended
 *     confidence estimator (one-level CT of resetting counters,
 *     indexed with PC xor BHR).
 *  3. Run the trace-driven simulation.
 *  4. Read the results: misprediction rate, the cumulative confidence
 *     curve, and a binary high/low confidence operating point.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [--benchmark jpeg] [--branches N]
 */

#include <cstdio>

#include "confidence/binary_signal.h"
#include "confidence/one_level.h"
#include "confidence/perceptron_margin.h"
#include "confidence/tage_confidence.h"
#include "metrics/confidence_curve.h"
#include "obs/branch_profiler.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "predictor/gshare.h"
#include "predictor/perceptron.h"
#include "predictor/tage.h"
#include "sim/driver.h"
#include "trace/trace_stats.h"
#include "util/cli.h"
#include "util/signal_cancellation.h"
#include "workload/workload_generator.h"

using namespace confsim;

int
main(int argc, char **argv)
{
    CliParser cli("confsim quickstart");
    cli.addOption("benchmark", "groff",
                  "IBS workload name (groff, gs, jpeg, mpeg, nroff, "
                  "real_gcc, sdet, verilog, video_play)");
    cli.addOption("branches", "1000000", "trace length");
    cli.addOption("telemetry", "",
                  "write JSONL telemetry (manifest + events) here");
    cli.addOption("trace-out", "",
                  "write a Chrome/Perfetto trace-event JSON here");
    cli.addOption("branch-profile", "",
                  "write the per-branch attribution profile here "
                  "(CSV, or JSONL when the path ends in .jsonl)");
    cli.addFlag("compare-native",
                "also run TAGE and perceptron with their built-in "
                "confidence and compare against the CIR estimator");
    cli.addFlag("progress", "announce the run on stderr");
    if (!cli.parse(argc, argv))
        return 0;

    // 1. Workload.
    const BenchmarkProfile profile =
        ibsProfile(cli.getString("benchmark"));
    WorkloadGenerator workload(profile, cli.getUnsigned("branches"));

    // 2. Predictor + confidence estimator.
    GsharePredictor predictor = GsharePredictor::makeLargePaperConfig();
    OneLevelCounterConfidence confidence(
        IndexScheme::PcXorBhr, 1 << 16, CounterKind::Resetting, 16, 0);

    // Optional telemetry: a single-benchmark manifest plus the
    // driver's own events. Null (and therefore free) by default.
    TelemetryOptions telemetry_options;
    telemetry_options.jsonlPath = cli.getString("telemetry");
    telemetry_options.progress = cli.getFlag("progress");
    const auto telemetry = Telemetry::fromOptions(telemetry_options);

    // Optional span tracing and branch attribution, same null-facade
    // contract as telemetry: off (and free) unless a path is given.
    SpanTracerOptions span_options;
    span_options.path = cli.getString("trace-out");
    const auto spans = SpanTracer::fromOptions(span_options);
    const std::string profile_path = cli.getString("branch-profile");

    // Ctrl-C / SIGTERM cancel the run cooperatively: the driver
    // unwinds with Error{kCancelled}, telemetry and span sinks are
    // flushed, and the process exits 128+signo instead of dying
    // mid-write.
    CancellationToken root;
    installSignalCancellation(root);

    DriverOptions options;
    options.cancel = &root;
    options.spans = spans.get();
    options.profileBranches = !profile_path.empty();
    if (telemetry) {
        RunManifest manifest = RunManifest::withBuildInfo();
        manifest.tool = "quickstart";
        manifest.suite = "single";
        ManifestBenchmark bench;
        bench.name = profile.name;
        bench.seed = profile.seed;
        bench.branches = cli.getUnsigned("branches");
        bench.traceChecksum = streamChecksum(workload, 4096);
        manifest.benchmarks.push_back(bench);
        manifest.predictor = predictor.name();
        manifest.predictorStorageBits = predictor.storageBits();
        manifest.estimators.push_back(confidence.name());
        telemetry->setManifest(manifest);
        options.telemetry = telemetry.get();
        options.telemetryLabel = profile.name;
    }

    // 3. Simulate.
    SimulationDriver driver(predictor, {&confidence}, options);
    DriverResult result;
    try {
        result = driver.run(workload);
    } catch (const Error &e) {
        if (e.category() != ErrorCategory::kCancelled)
            throw;
        if (telemetry)
            telemetry->finish();
        if (spans)
            publishSpanSummary(spans->finish(), telemetry.get());
        std::fprintf(stderr, "quickstart: %s\n", e.what());
        return exitCodeForSignal(lastCancellationSignal());
    }

    publishBranchProfile(result.branchProfile, profile_path, {},
                         telemetry.get());
    if (spans)
        publishSpanSummary(spans->finish(), telemetry.get());

    std::printf("benchmark      : %s\n", profile.name.c_str());
    std::printf("branches       : %llu\n",
                static_cast<unsigned long long>(result.branches));
    std::printf("mispredictions : %llu (%.2f%%)\n",
                static_cast<unsigned long long>(result.mispredicts),
                100.0 * result.mispredictRate());
    std::printf("predictor      : %s (%llu Kbit)\n",
                predictor.name().c_str(),
                static_cast<unsigned long long>(
                    predictor.storageBits() / 1024));
    std::printf("confidence     : %s (%llu Kbit)\n\n",
                confidence.name().c_str(),
                static_cast<unsigned long long>(
                    confidence.storageBits() / 1024));

    // 4a. The paper's cumulative curve.
    const auto curve =
        ConfidenceCurve::fromBucketStats(result.estimatorStats[0]);
    std::printf("misprediction coverage by low-confidence set size:\n");
    for (double frac : {0.05, 0.10, 0.20, 0.30}) {
        std::printf("  %4.0f%% of branches -> %5.1f%% of "
                    "mispredictions\n",
                    100.0 * frac,
                    100.0 * curve.mispredCoverageAt(frac));
    }

    // 4b. A concrete binary signal: everything below the saturated
    // counter is "low confidence" (Table 1's 0..15 operating point).
    const auto signal =
        BinaryConfidenceSignal::fromThreshold(confidence, 15);
    const auto &stats = result.estimatorStats[0];
    double low_refs = 0.0;
    double low_misses = 0.0;
    for (std::uint64_t b = 0; b < stats.numBuckets(); ++b) {
        if (signal.lowBuckets()[b]) {
            low_refs += stats[b].refs;
            low_misses += stats[b].mispredicts;
        }
    }
    std::printf("\noperating point 'counter < 16': %.1f%% of "
                "predictions flagged low, capturing %.1f%% of "
                "mispredictions\n",
                100.0 * low_refs / stats.totalRefs(),
                100.0 * low_misses / stats.totalMispredicts());

    // 5. Optional: the same trace under the modern predictors' native
    // confidence signals, reported at the paper's 20% operating point
    // (cov = mispredictions captured by the 20%-of-branches low set,
    // pvn = P(mispredict | flagged low) at that point).
    if (cli.getFlag("compare-native")) {
        std::printf("\nCIR vs native confidence (20%% low set):\n");
        std::printf("  %-22s %6s %6s %6s\n", "signal", "rate", "cov",
                    "pvn");
        const auto report = [](const char *label,
                               const DriverResult &run) {
            const auto c =
                ConfidenceCurve::fromBucketStats(run.estimatorStats[0]);
            const double cov = c.mispredCoverageAt(0.2);
            const double pvn =
                cov * run.mispredictRate() / 0.2;
            std::printf("  %-22s %5.2f%% %5.1f%% %5.1f%%\n", label,
                        100.0 * run.mispredictRate(), 100.0 * cov,
                        100.0 * pvn);
        };
        report("gshare + CIR counter", result);

        WorkloadGenerator tage_trace(profile,
                                     cli.getUnsigned("branches"));
        TagePredictor tage;
        TageProviderConfidence tage_conf;
        SimulationDriver tage_driver(tage, {&tage_conf});
        report("TAGE provider", tage_driver.run(tage_trace));

        WorkloadGenerator perc_trace(profile,
                                     cli.getUnsigned("branches"));
        PerceptronPredictor perceptron;
        PerceptronMarginConfidence perc_conf;
        SimulationDriver perc_driver(perceptron, {&perc_conf});
        report("perceptron margin", perc_driver.run(perc_trace));
    }
    return 0;
}
