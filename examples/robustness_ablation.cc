/**
 * @file
 * Robustness ablation: how does the paper's recommended confidence
 * estimator (one-level CT of resetting counters, PC xor BHR indexed)
 * degrade when the branch stream itself is corrupted?
 *
 * A FaultInjectingTraceSource corrupts the trace between the workload
 * generator and the simulator at a swept per-record fault probability,
 * separately for three fault classes: direction (taken-bit) flips, PC
 * single-bit flips, and record drops. For each point we report the
 * composite-style metrics the paper argues from — misprediction rate
 * and the fraction of mispredictions concentrated in the lowest-
 * confidence 20% of predictions (Fig. 2's operating point).
 *
 * The punchline mirrors the sampling-methodology literature: moderate
 * stream corruption moves the misprediction rate long before it breaks
 * the confidence *ranking*, so JRS-style estimators fail gracefully —
 * which is what makes continue-on-error compositing (RunPolicy) sound.
 *
 * Build & run:
 *   cmake -B build && cmake --build build
 *   ./build/examples/robustness_ablation [--benchmark groff]
 *                                        [--branches N]
 */

#include <cstdio>
#include <memory>

#include "confidence/one_level.h"
#include "metrics/confidence_curve.h"
#include "predictor/gshare.h"
#include "sim/driver.h"
#include "fault/fault_injection.h"
#include "util/cli.h"
#include "workload/workload_generator.h"

using namespace confsim;

namespace {

struct Point
{
    double mispredictRate;
    double coverageAt20;
    std::uint64_t faults;
};

Point
runPoint(const std::string &benchmark, std::uint64_t branches,
         const FaultSpec &spec)
{
    WorkloadGenerator workload(ibsProfile(benchmark), branches);
    FaultInjectingTraceSource faulty(workload, spec);

    GsharePredictor predictor = GsharePredictor::makeLargePaperConfig();
    OneLevelCounterConfidence confidence(
        IndexScheme::PcXorBhr, 1 << 16, CounterKind::Resetting, 16, 0);

    SimulationDriver driver(predictor, {&confidence});
    const DriverResult result = driver.run(faulty);

    const auto curve =
        ConfidenceCurve::fromBucketStats(result.estimatorStats[0]);
    return {result.mispredictRate(), curve.mispredCoverageAt(0.20),
            faulty.stats().total()};
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("confidence-estimator robustness under a corrupted "
                  "branch stream");
    cli.addOption("benchmark", "groff", "IBS workload name");
    cli.addOption("branches", "500000", "trace length");
    cli.addOption("seed", "1", "fault-injection seed");
    if (!cli.parse(argc, argv))
        return 0;

    const std::string benchmark = cli.getString("benchmark");
    const std::uint64_t branches = cli.getUnsigned("branches");
    const std::uint64_t seed = cli.getUnsigned("seed");

    const double levels[] = {0.0, 1e-5, 1e-4, 1e-3, 1e-2};

    std::printf("benchmark %s, %llu branches; 64K gshare + resetting "
                "0..16 CT\n",
                benchmark.c_str(),
                static_cast<unsigned long long>(branches));
    std::printf("cov@20%% = fraction of mispredictions in the lowest-"
                "confidence 20%% of predictions\n\n");
    std::printf("%10s | %21s | %21s | %21s\n", "fault",
                "taken-bit flips", "pc bit flips", "record drops");
    std::printf("%10s | %10s %10s | %10s %10s | %10s %10s\n", "prob",
                "mispred%", "cov@20%", "mispred%", "cov@20%",
                "mispred%", "cov@20%");

    for (const double p : levels) {
        FaultSpec taken_spec;
        taken_spec.seed = seed;
        taken_spec.takenFlipProb = p;
        FaultSpec pc_spec;
        pc_spec.seed = seed;
        pc_spec.pcBitFlipProb = p;
        FaultSpec drop_spec;
        drop_spec.seed = seed;
        drop_spec.dropProb = p;

        const Point taken = runPoint(benchmark, branches, taken_spec);
        const Point pc = runPoint(benchmark, branches, pc_spec);
        const Point drop = runPoint(benchmark, branches, drop_spec);

        std::printf("%10.0e | %9.3f%% %9.1f%% | %9.3f%% %9.1f%% | "
                    "%9.3f%% %9.1f%%\n",
                    p, 100.0 * taken.mispredictRate,
                    100.0 * taken.coverageAt20,
                    100.0 * pc.mispredictRate,
                    100.0 * pc.coverageAt20,
                    100.0 * drop.mispredictRate,
                    100.0 * drop.coverageAt20);
    }
    return 0;
}
