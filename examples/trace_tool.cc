/**
 * @file
 * Trace tool: generate, inspect, and convert branch trace files.
 *
 * Subcommands (first positional argument):
 *   gen <out.cbt>    generate a synthetic benchmark trace file
 *   stats <in.cbt>   print summary statistics for a trace file
 *   text <in.cbt> <out.txt>   convert to the debug text format
 *   checkpoint inspect <file...>  dump a checkpoint's registry
 *   checkpoint verify <file...>   exit 1 if any file fails its CRCs
 *
 * Examples:
 *   ./build/examples/trace_tool gen /tmp/gcc.cbt --benchmark real_gcc
 *   ./build/examples/trace_tool stats /tmp/gcc.cbt
 *   ./build/examples/trace_tool text /tmp/gcc.cbt /tmp/gcc.txt
 *   ./build/examples/trace_tool checkpoint inspect ckpt/groff.g000003.ckpt
 */

#include <algorithm>
#include <cstdio>

#include "ckpt/checkpoint.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "util/cli.h"
#include "workload/workload_generator.h"

using namespace confsim;

namespace {

int
cmdGen(const CliParser &cli)
{
    if (cli.positional().size() < 2) {
        std::printf("usage: trace_tool gen <out.cbt> [--benchmark B] "
                    "[--branches N]\n");
        return 1;
    }
    const std::string out = cli.positional()[1];
    const std::string format_name = cli.getString("format");
    TraceFormat format;
    if (format_name == "cbt1") {
        format = TraceFormat::kCbt1;
    } else if (format_name == "cbt2") {
        format = TraceFormat::kCbt2;
    } else {
        std::printf("unknown --format '%s' (cbt1|cbt2)\n",
                    format_name.c_str());
        return 1;
    }
    WorkloadGenerator gen(ibsProfile(cli.getString("benchmark")),
                          cli.getUnsigned("branches"));
    const std::uint64_t n = writeTraceFile(gen, out, format);
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(n), out.c_str());
    return 0;
}

int
cmdStats(const CliParser &cli)
{
    if (cli.positional().size() < 2) {
        std::printf("usage: trace_tool stats <in.cbt>\n");
        return 1;
    }
    const RecoveryMode mode = cli.getFlag("recover")
                                  ? RecoveryMode::kSkipCorrupt
                                  : RecoveryMode::kStrict;
    TraceFileReader reader(cli.positional()[1], mode);
    const TraceStats stats = collectTraceStats(reader);
    std::printf("format           : CBT%d\n",
                static_cast<int>(reader.format()));
    std::printf("records          : %llu\n",
                static_cast<unsigned long long>(stats.totalRecords));
    if (reader.droppedRecords() != 0)
        std::printf("dropped (corrupt): %llu\n",
                    static_cast<unsigned long long>(
                        reader.droppedRecords()));
    std::printf("conditional      : %llu\n",
                static_cast<unsigned long long>(
                    stats.conditionalCount));
    std::printf("taken rate       : %.2f%%\n",
                100.0 * stats.takenRate());
    std::printf("static branches  : %llu\n",
                static_cast<unsigned long long>(
                    stats.staticBranchCount));
    std::printf("calls/returns    : %llu / %llu\n",
                static_cast<unsigned long long>(stats.callCount),
                static_cast<unsigned long long>(stats.returnCount));

    // Hottest static branches.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> hot(
        stats.perPcCounts.begin(), stats.perPcCounts.end());
    std::sort(hot.begin(), hot.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    std::printf("hottest branches :\n");
    for (std::size_t i = 0; i < hot.size() && i < 5; ++i) {
        std::printf("  0x%llx  %llu executions (%.1f%%)\n",
                    static_cast<unsigned long long>(hot[i].first),
                    static_cast<unsigned long long>(hot[i].second),
                    100.0 * static_cast<double>(hot[i].second) /
                        static_cast<double>(stats.conditionalCount));
    }
    return 0;
}

int
cmdText(const CliParser &cli)
{
    if (cli.positional().size() < 3) {
        std::printf("usage: trace_tool text <in.cbt> <out.txt>\n");
        return 1;
    }
    TraceFileReader reader(cli.positional()[1]);
    const std::uint64_t n =
        writeTextTrace(reader, cli.positional()[2]);
    std::printf("wrote %llu text records to %s\n",
                static_cast<unsigned long long>(n),
                cli.positional()[2].c_str());
    return 0;
}

/**
 * Inspect one checkpoint file: header, integrity verdicts, and the
 * component registry with per-component CRC status.
 * @return true iff the file is fully valid.
 */
bool
inspectOne(const std::string &path, bool verbose)
{
    CheckpointInspection info;
    try {
        info = inspectCheckpoint(readFileBytes(path));
    } catch (const std::exception &e) {
        std::printf("%s: unreadable (%s)\n", path.c_str(), e.what());
        return false;
    }
    if (!verbose) {
        std::printf("%s: %s\n", path.c_str(),
                    info.valid() ? "OK" : "CORRUPT");
        return info.valid();
    }
    std::printf("%s:\n", path.c_str());
    std::printf("  magic          : %s\n", info.magicOk ? "ok" : "BAD");
    std::printf("  format version : %u%s\n", info.formatVersion,
                info.versionOk ? "" : " (unsupported)");
    std::printf("  structure      : %s\n",
                info.structureOk ? "ok" : "BAD");
    std::printf("  file CRC       : %s\n",
                info.fileCrcOk ? "ok" : "MISMATCH");
    std::printf("  label          : %s\n", info.label.c_str());
    std::printf("  watermark      : %llu records\n",
                static_cast<unsigned long long>(info.watermark));
    std::printf("  branches       : %llu\n",
                static_cast<unsigned long long>(info.branches));
    std::printf("  components     : %zu\n", info.components.size());
    for (const auto &component : info.components) {
        std::printf("    %-40s v%-3u %8llu bytes  crc %s\n",
                    component.name.c_str(), component.version,
                    static_cast<unsigned long long>(component.size),
                    component.crcOk ? "ok" : "MISMATCH");
    }
    std::printf("  verdict        : %s\n",
                info.valid() ? "VALID" : "CORRUPT");
    return info.valid();
}

int
cmdCheckpoint(const CliParser &cli)
{
    const auto &args = cli.positional();
    if (args.size() < 3 ||
        (args[1] != "inspect" && args[1] != "verify")) {
        std::printf(
            "usage: trace_tool checkpoint <inspect|verify> <file...>\n");
        return 1;
    }
    const bool verbose = args[1] == "inspect";
    bool all_valid = true;
    for (std::size_t i = 2; i < args.size(); ++i)
        all_valid = inspectOne(args[i], verbose) && all_valid;
    return all_valid ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("branch trace generation and inspection tool");
    cli.addOption("benchmark", "groff", "IBS workload name (for gen)");
    cli.addOption("branches", "1000000", "trace length (for gen)");
    cli.addOption("format", "cbt2",
                  "output trace format, cbt1|cbt2 (for gen)");
    cli.addFlag("recover",
                "skip corrupt chunks instead of aborting (for stats)");
    if (!cli.parse(argc, argv))
        return 0;
    if (cli.positional().empty()) {
        std::printf(
            "usage: trace_tool <gen|stats|text|checkpoint> ...\n");
        return 1;
    }
    const std::string &command = cli.positional()[0];
    if (command == "gen")
        return cmdGen(cli);
    if (command == "stats")
        return cmdStats(cli);
    if (command == "text")
        return cmdText(cli);
    if (command == "checkpoint")
        return cmdCheckpoint(cli);
    std::printf("unknown command '%s'\n", command.c_str());
    return 1;
}
