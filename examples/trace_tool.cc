/**
 * @file
 * Trace tool: generate, inspect, and convert branch trace files.
 *
 * Subcommands (first positional argument):
 *   gen <out.cbt>    generate a synthetic benchmark trace file
 *   stats <in.cbt>   print summary statistics for a trace file
 *   text <in.cbt> <out.txt>   convert to the debug text format
 *   checkpoint inspect <file...>  dump a checkpoint's registry
 *   checkpoint verify <file...>   exit 1 if any file fails its CRCs
 *   profile <profile.csv>  render a --branch-profile CSV export as
 *                          top-offender and calibration tables
 *
 * Examples:
 *   ./build/examples/trace_tool gen /tmp/gcc.cbt --benchmark real_gcc
 *   ./build/examples/trace_tool stats /tmp/gcc.cbt
 *   ./build/examples/trace_tool text /tmp/gcc.cbt /tmp/gcc.txt
 *   ./build/examples/trace_tool checkpoint inspect ckpt/groff.g000003.ckpt
 *   ./build/examples/trace_tool profile /tmp/profile.csv --top 20
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "ckpt/checkpoint.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "util/cli.h"
#include "workload/workload_generator.h"

using namespace confsim;

namespace {

int
cmdGen(const CliParser &cli)
{
    if (cli.positional().size() < 2) {
        std::printf("usage: trace_tool gen <out.cbt> [--benchmark B] "
                    "[--branches N]\n");
        return 1;
    }
    const std::string out = cli.positional()[1];
    const std::string format_name = cli.getString("format");
    TraceFormat format;
    if (format_name == "cbt1") {
        format = TraceFormat::kCbt1;
    } else if (format_name == "cbt2") {
        format = TraceFormat::kCbt2;
    } else {
        std::printf("unknown --format '%s' (cbt1|cbt2)\n",
                    format_name.c_str());
        return 1;
    }
    WorkloadGenerator gen(ibsProfile(cli.getString("benchmark")),
                          cli.getUnsigned("branches"));
    const std::uint64_t n = writeTraceFile(gen, out, format);
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(n), out.c_str());
    return 0;
}

int
cmdStats(const CliParser &cli)
{
    if (cli.positional().size() < 2) {
        std::printf("usage: trace_tool stats <in.cbt>\n");
        return 1;
    }
    const RecoveryMode mode = cli.getFlag("recover")
                                  ? RecoveryMode::kSkipCorrupt
                                  : RecoveryMode::kStrict;
    TraceFileReader reader(cli.positional()[1], mode);
    const TraceStats stats = collectTraceStats(reader);
    std::printf("format           : CBT%d\n",
                static_cast<int>(reader.format()));
    std::printf("records          : %llu\n",
                static_cast<unsigned long long>(stats.totalRecords));
    if (reader.droppedRecords() != 0)
        std::printf("dropped (corrupt): %llu\n",
                    static_cast<unsigned long long>(
                        reader.droppedRecords()));
    std::printf("conditional      : %llu\n",
                static_cast<unsigned long long>(
                    stats.conditionalCount));
    std::printf("taken rate       : %.2f%%\n",
                100.0 * stats.takenRate());
    std::printf("static branches  : %llu\n",
                static_cast<unsigned long long>(
                    stats.staticBranchCount));
    std::printf("calls/returns    : %llu / %llu\n",
                static_cast<unsigned long long>(stats.callCount),
                static_cast<unsigned long long>(stats.returnCount));

    // Hottest static branches.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> hot(
        stats.perPcCounts.begin(), stats.perPcCounts.end());
    std::sort(hot.begin(), hot.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    std::printf("hottest branches :\n");
    for (std::size_t i = 0; i < hot.size() && i < 5; ++i) {
        std::printf("  0x%llx  %llu executions (%.1f%%)\n",
                    static_cast<unsigned long long>(hot[i].first),
                    static_cast<unsigned long long>(hot[i].second),
                    100.0 * static_cast<double>(hot[i].second) /
                        static_cast<double>(stats.conditionalCount));
    }
    return 0;
}

int
cmdText(const CliParser &cli)
{
    if (cli.positional().size() < 3) {
        std::printf("usage: trace_tool text <in.cbt> <out.txt>\n");
        return 1;
    }
    TraceFileReader reader(cli.positional()[1]);
    const std::uint64_t n =
        writeTextTrace(reader, cli.positional()[2]);
    std::printf("wrote %llu text records to %s\n",
                static_cast<unsigned long long>(n),
                cli.positional()[2].c_str());
    return 0;
}

/**
 * Inspect one checkpoint file: header, integrity verdicts, and the
 * component registry with per-component CRC status.
 * @return true iff the file is fully valid.
 */
bool
inspectOne(const std::string &path, bool verbose)
{
    CheckpointInspection info;
    try {
        info = inspectCheckpoint(readFileBytes(path));
    } catch (const std::exception &e) {
        std::printf("%s: unreadable (%s)\n", path.c_str(), e.what());
        return false;
    }
    if (!verbose) {
        std::printf("%s: %s\n", path.c_str(),
                    info.valid() ? "OK" : "CORRUPT");
        return info.valid();
    }
    std::printf("%s:\n", path.c_str());
    std::printf("  magic          : %s\n", info.magicOk ? "ok" : "BAD");
    std::printf("  format version : %u%s\n", info.formatVersion,
                info.versionOk ? "" : " (unsupported)");
    std::printf("  structure      : %s\n",
                info.structureOk ? "ok" : "BAD");
    std::printf("  file CRC       : %s\n",
                info.fileCrcOk ? "ok" : "MISMATCH");
    std::printf("  label          : %s\n", info.label.c_str());
    std::printf("  watermark      : %llu records\n",
                static_cast<unsigned long long>(info.watermark));
    std::printf("  branches       : %llu\n",
                static_cast<unsigned long long>(info.branches));
    std::printf("  components     : %zu\n", info.components.size());
    for (const auto &component : info.components) {
        std::printf("    %-40s v%-3u %8llu bytes  crc %s\n",
                    component.name.c_str(), component.version,
                    static_cast<unsigned long long>(component.size),
                    component.crcOk ? "ok" : "MISMATCH");
    }
    std::printf("  verdict        : %s\n",
                info.valid() ? "VALID" : "CORRUPT");
    return info.valid();
}

/** One parsed row of a --branch-profile CSV export. */
struct CsvProfileRow
{
    std::string kind;
    std::string benchmark;
    std::string pc;
    std::string estimator;
    std::string bin;
    std::uint64_t executions = 0;
    std::uint64_t mispredictions = 0;
    double mispredictRate = 0.0;
    std::uint64_t lowConfidence = 0;
    double meanConfidence = 0.0;
    std::uint64_t predictions = 0;
    std::uint64_t correct = 0;
    double accuracy = 0.0;
};

constexpr std::size_t kProfileColumns = 13;

/**
 * Split one CSV line into the 13 profile columns. Estimator names may
 * themselves contain commas (e.g. "one_level(PcXorBhr,resetting)"),
 * so surplus fields are folded back into the estimator column — the
 * only free-text column that is not the leading kind/benchmark/pc.
 */
bool
parseProfileLine(const std::string &line, CsvProfileRow *row)
{
    std::vector<std::string> fields;
    std::stringstream stream(line);
    std::string field;
    while (std::getline(stream, field, ','))
        fields.push_back(field);
    if (line.empty() || line.back() == ',')
        fields.push_back("");
    if (fields.size() < kProfileColumns)
        return false;
    while (fields.size() > kProfileColumns) {
        fields[3] += "," + fields[4];
        fields.erase(fields.begin() + 5);
    }
    row->kind = fields[0];
    row->benchmark = fields[1];
    row->pc = fields[2];
    row->estimator = fields[3];
    row->bin = fields[4];
    try {
        row->executions = std::stoull(fields[5]);
        row->mispredictions = std::stoull(fields[6]);
        row->mispredictRate = std::stod(fields[7]);
        row->lowConfidence = std::stoull(fields[8]);
        row->meanConfidence = std::stod(fields[9]);
        row->predictions = std::stoull(fields[10]);
        row->correct = std::stoull(fields[11]);
        row->accuracy = std::stod(fields[12]);
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

int
cmdProfile(const CliParser &cli)
{
    if (cli.positional().size() < 2) {
        std::printf(
            "usage: trace_tool profile <profile.csv> [--top N]\n");
        return 1;
    }
    const std::string &path = cli.positional()[1];
    std::ifstream in(path);
    if (!in) {
        std::printf("%s: cannot open\n", path.c_str());
        return 1;
    }
    std::string line;
    if (!std::getline(in, line) ||
        line.rfind("kind,benchmark,pc,", 0) != 0) {
        std::printf("%s: not a --branch-profile CSV export\n",
                    path.c_str());
        return 1;
    }
    std::vector<CsvProfileRow> branches;
    std::vector<CsvProfileRow> calibration;
    CsvProfileRow evicted;
    CsvProfileRow total;
    bool have_total = false;
    while (std::getline(in, line)) {
        CsvProfileRow row;
        if (!parseProfileLine(line, &row)) {
            std::printf("%s: malformed row '%s'\n", path.c_str(),
                        line.c_str());
            return 1;
        }
        if (row.kind == "branch")
            branches.push_back(std::move(row));
        else if (row.kind == "calibration")
            calibration.push_back(std::move(row));
        else if (row.kind == "evicted")
            evicted = std::move(row);
        else if (row.kind == "total") {
            total = std::move(row);
            have_total = true;
        }
    }
    if (!have_total) {
        std::printf("%s: missing total row\n", path.c_str());
        return 1;
    }

    std::printf("totals: %llu executions, %llu mispredictions "
                "(%.2f%%)\n",
                static_cast<unsigned long long>(total.executions),
                static_cast<unsigned long long>(total.mispredictions),
                100.0 * total.mispredictRate);
    std::printf("tracked branches: %zu", branches.size());
    if (evicted.executions != 0)
        std::printf("  (+%s evicted PCs: %llu exec, %llu mispred)",
                    evicted.pc.c_str(),
                    static_cast<unsigned long long>(evicted.executions),
                    static_cast<unsigned long long>(
                        evicted.mispredictions));
    std::printf("\n\n");

    // Branch rows are exported worst-mispredictor-first, so the top-N
    // table is just the head of the list.
    const std::size_t top =
        std::min<std::size_t>(branches.size(), cli.getUnsigned("top"));
    std::printf("top %zu mispredicting branches:\n", top);
    std::printf("  %-18s %-10s %12s %12s %8s %9s %10s\n", "pc",
                "benchmark", "executions", "mispredicts", "rate",
                "low-conf", "mean-conf");
    for (std::size_t i = 0; i < top; ++i) {
        const CsvProfileRow &row = branches[i];
        std::printf("  %-18s %-10s %12llu %12llu %7.2f%% %8.1f%% "
                    "%10.3f\n",
                    row.pc.c_str(), row.benchmark.c_str(),
                    static_cast<unsigned long long>(row.executions),
                    static_cast<unsigned long long>(row.mispredictions),
                    100.0 * row.mispredictRate,
                    row.executions == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(row.lowConfidence) /
                              static_cast<double>(row.executions),
                    row.meanConfidence);
    }

    // Per-estimator calibration: estimated confidence vs empirical
    // accuracy per reliability bin, plus the |gap| summary.
    std::string current;
    for (std::size_t i = 0; i < calibration.size(); ++i) {
        const CsvProfileRow &row = calibration[i];
        if (row.estimator != current) {
            current = row.estimator;
            std::printf("\ncalibration: %s\n", current.c_str());
            std::printf("  %4s %14s %12s %10s %10s\n", "bin",
                        "predictions", "correct", "est-conf",
                        "accuracy");
        }
        std::printf("  %4s %14llu %12llu %10.3f %10.3f\n",
                    row.bin.c_str(),
                    static_cast<unsigned long long>(row.predictions),
                    static_cast<unsigned long long>(row.correct),
                    row.meanConfidence, row.accuracy);
    }
    return 0;
}

int
cmdCheckpoint(const CliParser &cli)
{
    const auto &args = cli.positional();
    if (args.size() < 3 ||
        (args[1] != "inspect" && args[1] != "verify")) {
        std::printf(
            "usage: trace_tool checkpoint <inspect|verify> <file...>\n");
        return 1;
    }
    const bool verbose = args[1] == "inspect";
    bool all_valid = true;
    for (std::size_t i = 2; i < args.size(); ++i)
        all_valid = inspectOne(args[i], verbose) && all_valid;
    return all_valid ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("branch trace generation and inspection tool");
    cli.addOption("benchmark", "groff", "IBS workload name (for gen)");
    cli.addOption("branches", "1000000", "trace length (for gen)");
    cli.addOption("format", "cbt2",
                  "output trace format, cbt1|cbt2 (for gen)");
    cli.addFlag("recover",
                "skip corrupt chunks instead of aborting (for stats)");
    cli.addOption("top", "10",
                  "number of offender rows to print (for profile)");
    if (!cli.parse(argc, argv))
        return 0;
    if (cli.positional().empty()) {
        std::printf("usage: trace_tool "
                    "<gen|stats|text|checkpoint|profile> ...\n");
        return 1;
    }
    const std::string &command = cli.positional()[0];
    if (command == "gen")
        return cmdGen(cli);
    if (command == "stats")
        return cmdStats(cli);
    if (command == "text")
        return cmdText(cli);
    if (command == "checkpoint")
        return cmdCheckpoint(cli);
    if (command == "profile")
        return cmdProfile(cli);
    std::printf("unknown command '%s'\n", command.c_str());
    return 1;
}
