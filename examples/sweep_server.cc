/**
 * @file
 * The sweep job server: SweepService behind the NDJSON job protocol
 * (serve/job_protocol.h), one request per line in, one response per
 * line out.
 *
 * Transports:
 *   (default)         stdin -> stdout
 *   --requests FILE   read every request from FILE, answer on stdout,
 *                     then drain per --drain-mode and exit (the
 *                     scriptable/CI mode)
 *   --socket PATH     AF_UNIX stream socket; clients are served one
 *                     at a time, each until it disconnects
 *
 * SIGINT/SIGTERM route through a root CancellationToken
 * (util/signal_cancellation.h): the server stops admitting, drains
 * per --drain-mode (in-flight jobs finish, cancel, or checkpoint),
 * flushes telemetry, and exits 0 — the graceful-drain contract the
 * serve-chaos CI job pins. Blocking reads are poll(2)-gated with a
 * short tick so a signal is never waiting behind a quiet socket.
 *
 * Examples:
 *   echo '{"op":"submit","configs":["ones"],"branches":50000}' |
 *       sweep_server --job-dir /tmp/jobs --telemetry /tmp/serve.jsonl
 *   sweep_server --socket /tmp/confsim.sock --job-slots 4 &
 */

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "fault/fault_plan.h"
#include "obs/telemetry.h"
#include "serve/job_protocol.h"
#include "serve/ndjson_reader.h"
#include "serve/sweep_service.h"
#include "util/cli.h"
#include "util/signal_cancellation.h"

using namespace confsim;

namespace {

/** Millisecond tick between cancellation checks on quiet inputs. */
constexpr int kPollTickMs = 100;

/** Write one response line to @p fd (best-effort on EPIPE). */
void
writeLine(int fd, const std::string &response)
{
    std::string line = response + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // client went away; the service keeps running
        }
        off += static_cast<std::size_t>(n);
    }
}

/**
 * Read lines from @p fd until EOF or cancellation, framing them
 * through a bounded NdjsonLineReader and feeding each to @p handle
 * (which returns false to stop, i.e. on "quit").
 * @return false when the loop should stop serving entirely.
 */
template <typename Handler>
bool
serveStream(int fd, const CancellationToken &cancel, Handler &&handle)
{
    NdjsonLineReader reader;
    NdjsonLineReader::Line line;
    char chunk[4096];
    for (;;) {
        if (cancel.cancelled())
            return false;
        struct pollfd pfd = {};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, kPollTickMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue; // signal: loop re-checks the token
            return false;
        }
        if (ready == 0)
            continue;
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return true; // this stream failed; keep serving others
        }
        if (n == 0) {
            // EOF: a trailing unterminated line is still a request.
            reader.finish();
            while (reader.next(line)) {
                if (!handle(line))
                    return false;
            }
            return true;
        }
        reader.feed(chunk, static_cast<std::size_t>(n));
        while (reader.next(line)) {
            if (!handle(line))
                return false;
        }
    }
}

/** Handle one framed request line against @p service; response to
 *  @p fd. @return false when the server should stop ("quit"). */
bool
handleRequest(SweepService &service, DrainMode drainMode,
              const NdjsonLineReader::Line &line, int fd)
{
    if (line.oversize) {
        // The reader consumed the line in constant memory; answer
        // with a structured error instead of parsing the truncated
        // prefix (which would surface a misleading JSON error).
        writeLine(fd,
                  protocolError(
                      "parse",
                      "request line of " + std::to_string(line.bytes) +
                          " bytes exceeds the " +
                          std::to_string(
                              NdjsonLineReader::kDefaultMaxLineBytes) +
                          "-byte limit",
                      ErrorCategory::kConfig));
        return true;
    }
    ProtocolRequest request;
    try {
        request = parseProtocolRequest(line.text);
    } catch (const std::exception &e) {
        writeLine(fd, protocolError("parse", e.what(),
                                    categoryOf(e)));
        return true;
    }
    try {
        switch (request.op) {
        case ProtocolRequest::Op::kSubmit:
            writeLine(fd, protocolSubmitOk(
                              service.submit(std::move(request.spec))));
            return true;
        case ProtocolRequest::Op::kStatus:
            if (request.hasId)
                writeLine(fd, protocolJobStatus(
                                  "status",
                                  service.status(request.id)));
            else
                writeLine(fd, protocolServiceStatus(
                                  service.serviceStatus()));
            return true;
        case ProtocolRequest::Op::kWait:
            writeLine(fd, protocolJobStatus(
                              "wait", service.wait(request.id)));
            return true;
        case ProtocolRequest::Op::kCancel:
            if (!service.cancelJob(request.id)) {
                writeLine(fd,
                          protocolError("cancel",
                                        "job is unknown or already "
                                        "terminal",
                                        ErrorCategory::kConfig));
            } else {
                writeLine(fd, protocolOk("cancel"));
            }
            return true;
        case ProtocolRequest::Op::kDrain:
            service.drain(request.drainMode);
            writeLine(fd, protocolOk("drain"));
            return true;
        case ProtocolRequest::Op::kQuit:
            service.drain(drainMode);
            writeLine(fd, protocolOk("quit"));
            return false;
        }
    } catch (const std::exception &e) {
        writeLine(fd, protocolError(request.opName, e.what(),
                                    categoryOf(e)));
    }
    return true;
}

int
serveSocket(SweepService &service, DrainMode drainMode,
            const CancellationToken &cancel, const std::string &path)
{
    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        std::fprintf(stderr, "sweep_server: socket: %s\n",
                     std::strerror(errno));
        return 1;
    }
    ::unlink(path.c_str());
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        std::fprintf(stderr, "sweep_server: socket path too long\n");
        ::close(listener);
        return 1;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::bind(listener, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listener, 8) != 0) {
        std::fprintf(stderr, "sweep_server: bind/listen %s: %s\n",
                     path.c_str(), std::strerror(errno));
        ::close(listener);
        return 1;
    }
    std::fprintf(stderr, "sweep_server: listening on %s\n",
                 path.c_str());

    bool serving = true;
    while (serving && !cancel.cancelled()) {
        struct pollfd pfd = {};
        pfd.fd = listener;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, kPollTickMs);
        if (ready < 0 && errno != EINTR)
            break;
        if (ready <= 0)
            continue;
        const int client = ::accept(listener, nullptr, nullptr);
        if (client < 0)
            continue;
        serving = serveStream(
            client, cancel,
            [&](const NdjsonLineReader::Line &line) {
                return handleRequest(service, drainMode, line,
                                     client);
            });
        ::close(client);
    }
    ::close(listener);
    ::unlink(path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("confsim sweep job server (NDJSON protocol)");
    cli.addOption("socket", "",
                  "serve on this AF_UNIX socket path instead of stdin");
    cli.addOption("requests", "",
                  "read requests from this file, then drain and exit");
    cli.addOption("job-dir", "",
                  "root for per-job checkpoint/telemetry directories");
    cli.addOption("queue-depth", "16",
                  "max queued jobs before submits shed (resource)");
    cli.addOption("tenant-inflight", "2",
                  "max running jobs per tenant (0 = uncapped)");
    cli.addOption("job-slots", "2", "concurrent job slots");
    cli.addOption("pool-workers", "0",
                  "shared sweep pool threads (0 = hardware)");
    cli.addOption("telemetry", "",
                  "write service JSONL telemetry (serve.* metrics, "
                  "job_* events) here");
    cli.addOption("drain-mode", "wait",
                  "what signal/EOF/quit drain does with admitted "
                  "jobs: wait, cancel, or checkpoint");
    cli.addOption("fault-plan", "",
                  "deterministic fault schedule (fault/fault_plan.h "
                  "grammar) for chaos drills");
    cli.addFlag("progress", "announce service telemetry on stderr");
    if (!cli.parse(argc, argv))
        return 0;

    CancellationToken root;
    installSignalCancellation(root);

    DrainMode drainMode = DrainMode::kWait;
    const std::string drainFlag = cli.getString("drain-mode");
    if (drainFlag == "cancel")
        drainMode = DrainMode::kCancel;
    else if (drainFlag == "checkpoint")
        drainMode = DrainMode::kCheckpoint;
    else if (drainFlag != "wait")
        fatal(ErrorCategory::kConfig,
              "--drain-mode must be wait, cancel, or checkpoint");

    ScopedFaultPlan faults(cli.getString("fault-plan"));

    TelemetryOptions telemetryOptions;
    telemetryOptions.jsonlPath = cli.getString("telemetry");
    telemetryOptions.progress = cli.getFlag("progress");
    const auto telemetry = Telemetry::fromOptions(telemetryOptions);

    ServiceOptions options;
    options.queueDepth = cli.getUnsigned("queue-depth");
    options.tenantMaxInFlight =
        static_cast<unsigned>(cli.getUnsigned("tenant-inflight"));
    options.jobSlots =
        static_cast<unsigned>(cli.getUnsigned("job-slots"));
    options.poolWorkers =
        static_cast<unsigned>(cli.getUnsigned("pool-workers"));
    options.jobDir = cli.getString("job-dir");
    options.telemetry = telemetry.get();
    options.cancel = &root;
    SweepService service(options);

    int exitCode = 0;
    const std::string requestsPath = cli.getString("requests");
    const std::string socketPath = cli.getString("socket");
    if (!requestsPath.empty()) {
        std::FILE *file = std::fopen(requestsPath.c_str(), "r");
        if (file == nullptr) {
            std::fprintf(stderr, "sweep_server: cannot open %s\n",
                         requestsPath.c_str());
            return 1;
        }
        // Frame through the same bounded reader as the stream
        // transports: fgets would silently split an over-long line
        // into several bogus requests.
        NdjsonLineReader reader;
        NdjsonLineReader::Line line;
        char chunk[4096];
        bool serving = true;
        while (serving && !root.cancelled()) {
            const std::size_t n =
                std::fread(chunk, 1, sizeof chunk, file);
            if (n == 0) {
                reader.finish();
            } else {
                reader.feed(chunk, n);
            }
            while (serving && reader.next(line)) {
                serving = handleRequest(service, drainMode, line,
                                        STDOUT_FILENO);
            }
            if (n == 0)
                break;
        }
        std::fclose(file);
    } else if (!socketPath.empty()) {
        exitCode = serveSocket(service, drainMode, root, socketPath);
    } else {
        serveStream(STDIN_FILENO, root,
                    [&](const NdjsonLineReader::Line &line) {
                        return handleRequest(service, drainMode,
                                             line, STDOUT_FILENO);
                    });
    }

    // Whatever ended the serving loop — EOF, quit, SIGTERM, a socket
    // error — the exit path is the same graceful drain. A successful
    // drain exits 0 even on a signal: the contract is "SIGTERM means
    // finish cleanly", not "SIGTERM means report an interruption".
    service.drain(drainMode);
    if (telemetry)
        telemetry->finish();
    return exitCode;
}
